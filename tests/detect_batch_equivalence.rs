//! Golden equivalence for the batched serving engine: verdicts and audit
//! records from `detect_batch` must be byte-identical to the sequential
//! `detect_named` loop at every micro-batch size and thread count.
//!
//! Wall-clock timing fields (`latency_us`, `batch_latency_us`), the
//! batch geometry (`batch_size`) and the minted `trace_id` (derived from
//! a process-global counter, so it differs across runs but never across
//! thread counts within a request) are the only legitimate differences,
//! so they are canonicalized before the serialized records are compared.

use noodle::observe::MemoryAudit;
use noodle::{
    generate_corpus, Benchmark, CorpusConfig, DetectRequest, Detection, MultimodalDataset,
    NoodleConfig, NoodleDetector, PredictionRecord,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone, Copy)]
enum Mode {
    Sequential,
    Batched(usize),
}

/// Fits once and hands out the serialized model: every serving run restores
/// a fresh detector from it, so audit sequence numbers restart at zero.
fn fitted_json() -> String {
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 11 });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let detector = NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).unwrap();
    detector.to_json().unwrap()
}

fn run(
    json: &str,
    probe: &[Benchmark],
    mode: Mode,
    threads: usize,
) -> (Vec<Detection>, Vec<String>) {
    noodle::compute::set_thread_override(Some(threads));
    let mut det = NoodleDetector::from_json(json).unwrap();
    let sink = MemoryAudit::new();
    det.set_audit_sink(Box::new(sink.clone()));
    let detections: Vec<Detection> = match mode {
        Mode::Sequential => probe
            .iter()
            .map(|b| det.detect_named(&b.name, &b.source, Some(b.label.index())).unwrap())
            .collect(),
        Mode::Batched(batch) => {
            let requests: Vec<DetectRequest<'_>> = probe
                .iter()
                .map(|b| DetectRequest {
                    design: &b.name,
                    source: &b.source,
                    label: Some(b.label.index()),
                    trace: None,
                })
                .collect();
            det.detect_batch(&requests, batch, None).unwrap()
        }
    };
    // Every record must carry a trace id (request-scoped tracing is always
    // on), and ids must be unique within a run; the ids themselves come
    // from a process-global counter, so they are canonicalized away before
    // the byte comparison below.
    let mut seen = std::collections::HashSet::new();
    let records: Vec<String> = sink
        .records()
        .into_iter()
        .map(|mut r: PredictionRecord| {
            assert!(!r.trace_id.is_empty(), "record {} is missing a trace id", r.seq);
            assert!(seen.insert(r.trace_id.clone()), "duplicate trace id {}", r.trace_id);
            // Timing and batch geometry legitimately differ between serving
            // modes; every other byte must match.
            r.latency_us = 0.0;
            r.batch_latency_us = 0.0;
            r.batch_size = 0;
            r.trace_id = String::new();
            serde_json::to_string(&r).unwrap()
        })
        .collect();
    (detections, records)
}

#[test]
fn batched_and_sequential_serving_are_bit_identical() {
    let json = fitted_json();
    let probe = generate_corpus(&CorpusConfig { trojan_free: 10, trojan_infected: 6, seed: 2024 });

    let (ref_detections, ref_records) = run(&json, &probe, Mode::Sequential, 1);
    assert_eq!(ref_detections.len(), probe.len());
    assert_eq!(ref_records.len(), probe.len());

    for threads in [1, 4] {
        for mode in [Mode::Sequential, Mode::Batched(1), Mode::Batched(5), Mode::Batched(32)] {
            let (detections, records) = run(&json, &probe, mode, threads);
            assert_eq!(
                detections, ref_detections,
                "{mode:?} at {threads} thread(s) diverges from sequential verdicts"
            );
            assert_eq!(
                records, ref_records,
                "{mode:?} at {threads} thread(s) diverges from sequential audit records"
            );
        }
    }
}
