//! Validity of the conformal machinery on the *real pipeline*: the error
//! rate of prediction regions at significance ε must not (grossly) exceed
//! ε, per class — the Mondrian guarantee the paper relies on for
//! risk-aware decisions on the minority (Trojan-infected) class.

use noodle::conformal::{region_stats, ConformalPrediction};
use noodle::{generate_corpus, CorpusConfig, MultimodalDataset, NoodleConfig, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluation_predictions(seed: u64) -> (Vec<ConformalPrediction>, Vec<usize>) {
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 18, trojan_infected: 9, seed });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = NoodleConfig::fast();
    config.amplify_per_class = 40;
    let detector = NoodleDetector::fit(&dataset, &config, &mut rng).unwrap();
    let eval = detector.evaluation();
    let preds: Vec<ConformalPrediction> =
        eval.late_p_values.iter().map(|pv| ConformalPrediction::new(pv.to_vec())).collect();
    (preds, eval.test_labels.clone())
}

#[test]
fn late_fusion_regions_are_approximately_valid() {
    // Aggregate over several seeds so the test-split sample size is large
    // enough for the long-run guarantee to show.
    let mut all_preds = Vec::new();
    let mut all_labels = Vec::new();
    for seed in [1u64, 2, 3, 4] {
        let (preds, labels) = evaluation_predictions(seed);
        all_preds.extend(preds);
        all_labels.extend(labels);
    }
    let epsilon = 0.2;
    let stats = region_stats(&all_preds, &all_labels, epsilon);
    // Combined p-values are conservative rather than exact, so the error
    // rate should sit below ε with slack for finite-sample noise.
    assert!(
        stats.error_rate <= epsilon + 0.1,
        "error rate {:.3} far exceeds significance {epsilon}",
        stats.error_rate
    );
    assert!(stats.mean_region_size >= stats.singleton_rate);
}

#[test]
fn region_size_shrinks_as_significance_grows() {
    let (preds, labels) = evaluation_predictions(5);
    let loose = region_stats(&preds, &labels, 0.01);
    let tight = region_stats(&preds, &labels, 0.5);
    assert!(
        tight.mean_region_size <= loose.mean_region_size,
        "regions must shrink: eps=0.5 size {} vs eps=0.01 size {}",
        tight.mean_region_size,
        loose.mean_region_size
    );
}

#[test]
fn uncertain_rate_plus_singletons_plus_empties_is_one() {
    let (preds, labels) = evaluation_predictions(6);
    let stats = region_stats(&preds, &labels, 0.1);
    let total = stats.singleton_rate + stats.empty_rate + stats.uncertain_rate;
    assert!((total - 1.0).abs() < 1e-9, "rates sum to {total}");
}
