//! Cross-crate property-based tests: invariants that must hold for *any*
//! generated circuit, any Trojan insertion, and any p-value fusion.

use noodle::bench_gen::{families, insert_trojan, CircuitFamily, TrojanSpec};
use noodle::conformal::{Combiner, MondrianIcp};
use noodle::graph::{build_graph, graph_image, graph_stats};
use noodle::metrics::{brier_score, murphy_decomposition, roc_curve};
use noodle::tabular::extract_features;
use noodle::verilog::{parse, print_module};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family_strategy() -> impl Strategy<Value = CircuitFamily> {
    prop::sample::select(CircuitFamily::ALL.to_vec())
}

fn spec_strategy() -> impl Strategy<Value = TrojanSpec> {
    prop::sample::select(TrojanSpec::all())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Print → parse is a fixpoint for every generated circuit.
    #[test]
    fn print_parse_fixpoint(family in family_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = families::generate(family, "fixpoint_probe", &mut rng);
        let text = print_module(&circuit.module);
        let reparsed = parse(&text).expect("generated Verilog must parse");
        let reprinted = print_module(&reparsed.modules[0]);
        prop_assert_eq!(text, reprinted);
    }

    /// Trojan insertion always yields parseable Verilog whose features and
    /// graph differ from the benign original.
    #[test]
    fn trojan_insertion_invariants(
        family in family_strategy(),
        spec in spec_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut circuit = families::generate(family, "victim", &mut rng);
        let clean_text = print_module(&circuit.module);
        let clean_features = extract_features(&parse(&clean_text).unwrap().modules[0]);
        insert_trojan(&mut circuit, spec, &mut rng);
        let infected_text = print_module(&circuit.module);
        let infected = parse(&infected_text).expect("infected Verilog must parse");
        let infected_features = extract_features(&infected.modules[0]);
        prop_assert_ne!(&clean_features, &infected_features);
        // The payload mux adds at least a ternary or changes expression mass.
        prop_assert!(
            infected_features.expr_nodes > clean_features.expr_nodes,
            "expr nodes did not grow: {} -> {}",
            clean_features.expr_nodes,
            infected_features.expr_nodes
        );
    }

    /// Graph invariants for arbitrary generated circuits.
    #[test]
    fn graph_invariants(family in family_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = families::generate(family, "graph_probe", &mut rng);
        let graph = build_graph(&circuit.module);
        let stats = graph_stats(&graph);
        prop_assert!(stats.nodes > 0.0);
        prop_assert!(stats.density >= 0.0 && stats.density <= 1.0);
        prop_assert_eq!(stats.data_edges + stats.control_edges, stats.edges);
        let image = graph_image(&graph);
        prop_assert!(image.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Degree sums equal edge count.
        let in_sum: usize = graph.in_degrees().iter().sum();
        prop_assert_eq!(in_sum, graph.edge_count());
    }

    /// Tabular features of any generated circuit are finite and
    /// non-negative.
    #[test]
    fn tabular_features_are_sane(family in family_strategy(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = families::generate(family, "tab_probe", &mut rng);
        let features = extract_features(&circuit.module).to_vec();
        prop_assert_eq!(features.len(), noodle::tabular::FEATURE_NAMES.len());
        prop_assert!(features.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    /// Every combiner maps arbitrary valid p-values into (0, 1] and is
    /// monotone under strengthening evidence.
    #[test]
    fn combiner_invariants(
        p1 in 0.001f64..1.0,
        p2 in 0.001f64..1.0,
        shrink in 0.1f64..0.9,
    ) {
        for combiner in Combiner::ALL {
            let combined = combiner.combine(&[p1, p2]);
            prop_assert!(combined > 0.0 && combined <= 1.0, "{}: {combined}", combiner.name());
            // Shrinking one p-value must not increase the combination.
            let stronger = combiner.combine(&[p1 * shrink, p2]);
            prop_assert!(
                stronger <= combined + 1e-9,
                "{}: {stronger} > {combined}",
                combiner.name()
            );
        }
    }

    /// Mondrian p-values are valid and monotone in the score.
    #[test]
    fn icp_p_value_monotonicity(
        scores in prop::collection::vec(0.0f32..1.0, 8..60),
        probe in 0.0f32..1.0,
        delta in 0.01f32..0.5,
    ) {
        let calib: Vec<(f32, usize)> =
            scores.iter().enumerate().map(|(i, &s)| (s, i % 2)).collect();
        let icp = MondrianIcp::fit(&calib, 2).unwrap();
        for class in 0..2 {
            let p_low = icp.p_value(class, probe);
            let p_high = icp.p_value(class, probe + delta);
            prop_assert!(p_low > 0.0 && p_low <= 1.0);
            prop_assert!(p_high <= p_low, "p-value must not grow with the score");
        }
    }

    /// Brier score is bounded and the Murphy identity approximately holds
    /// for random forecasts.
    #[test]
    fn brier_bounds_and_identity(
        pairs in prop::collection::vec((0.0f64..=1.0, prop::bool::ANY), 10..80),
    ) {
        let probs: Vec<f64> = pairs.iter().map(|(p, _)| *p).collect();
        let outcomes: Vec<bool> = pairs.iter().map(|(_, o)| *o).collect();
        let bs = brier_score(&probs, &outcomes);
        prop_assert!((0.0..=1.0).contains(&bs));
        let d = murphy_decomposition(&probs, &outcomes, 10);
        // Binned identity holds to within-bin variance; bound loosely.
        prop_assert!((d.brier() - bs).abs() < 0.05, "identity gap {}", (d.brier() - bs).abs());
    }

    /// AUC is within [0, 1] and label inversion flips it around 0.5.
    #[test]
    fn auc_inversion_symmetry(
        pairs in prop::collection::vec((0.0f64..=1.0, prop::bool::ANY), 8..60),
    ) {
        let probs: Vec<f64> = pairs.iter().map(|(p, _)| *p).collect();
        let mut outcomes: Vec<bool> = pairs.iter().map(|(_, o)| *o).collect();
        outcomes[0] = true;
        outcomes[1] = false;
        let auc = roc_curve(&probs, &outcomes).auc();
        prop_assert!((0.0..=1.0).contains(&auc));
        let flipped: Vec<bool> = outcomes.iter().map(|&o| !o).collect();
        let auc_flipped = roc_curve(&probs, &flipped).auc();
        prop_assert!((auc + auc_flipped - 1.0).abs() < 1e-9);
    }
}
