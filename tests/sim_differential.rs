//! Differential validation of the two simulation backends.
//!
//! The compiled engine (`CompiledSim`) promises cycle-for-cycle identity
//! with the reference interpreter (`Simulator`). This test holds it to
//! that across the entire bench-gen corpus — every clean and every
//! Trojan-infected design — by driving both engines with identical
//! random stimulus for a few hundred cycles and byte-comparing the full
//! visible signal state after every single cycle.
//!
//! Any divergence in scheduling, width semantics, nonblocking commit
//! order or snapshot handling shows up here as a named signal at a
//! named cycle of a named design.

use noodle::bench_gen::{generate_corpus, CorpusConfig, Label};
use noodle::verilog::{compile, parse, PortDirection, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CYCLES_PER_DESIGN: usize = 200;

/// Non-clock input ports of a module as `(name, width)` pairs.
fn stimulus_ports(module: &noodle::verilog::Module) -> Vec<(String, u32)> {
    module
        .resolved_ports()
        .iter()
        .filter(|p| p.direction == PortDirection::Input && p.name != "clk")
        .map(|p| (p.name.clone(), p.range.map(|r| r.width() as u32).unwrap_or(1)))
        .collect()
}

#[test]
fn backends_agree_on_every_corpus_design() {
    let corpus = generate_corpus(&CorpusConfig::default());
    assert!(!corpus.is_empty());
    let mut clean = 0usize;
    let mut infected = 0usize;
    let mut rng = StdRng::seed_from_u64(0xD1FF_5EED);

    for bench in &corpus {
        match bench.label {
            Label::TrojanFree => clean += 1,
            Label::TrojanInfected => infected += 1,
        }
        let file = parse(&bench.source)
            .unwrap_or_else(|e| panic!("{}: corpus source must parse: {e}", bench.name));
        let module = &file.modules[0];
        let mut interp = Simulator::new(module)
            .unwrap_or_else(|e| panic!("{}: interpreter rejects design: {e}", bench.name));
        let mut compiled = compile(module)
            .unwrap_or_else(|e| panic!("{}: compiler rejects design: {e}", bench.name));
        let inputs = stimulus_ports(module);

        for cycle in 0..CYCLES_PER_DESIGN {
            for (name, width) in &inputs {
                let value = rng.random::<u64>() as u128;
                // `set` masks to the declared width in both engines.
                interp
                    .set(name, value)
                    .unwrap_or_else(|e| panic!("{}: interp set {name}: {e}", bench.name));
                compiled
                    .set(name, value)
                    .unwrap_or_else(|e| panic!("{}: compiled set {name}: {e}", bench.name));
                assert!(*width >= 1);
            }
            interp
                .step("clk")
                .unwrap_or_else(|e| panic!("{}: interp step {cycle}: {e}", bench.name));
            compiled
                .step("clk")
                .unwrap_or_else(|e| panic!("{}: compiled step {cycle}: {e}", bench.name));

            // Full visible state, every cycle: every signal the
            // interpreter knows must read back identically.
            for signal in interp.signal_names() {
                assert_eq!(
                    compiled.get(&signal),
                    interp.get(&signal),
                    "design `{}` (label {:?}): signal `{signal}` diverged at cycle {cycle}",
                    bench.name,
                    bench.label,
                );
            }
        }
    }

    // The corpus exercised both label classes.
    assert!(clean > 0 && infected > 0, "corpus must contain both labels");
}
