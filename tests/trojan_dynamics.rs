//! Functional (dynamic) validation of Trojan insertion: simulating the
//! benign and infected variants of each design side by side, the infected
//! design must behave identically while the trigger is dormant and must
//! activate its trigger (and, for corruption payloads, visibly tamper with
//! the hijacked output) once the magic condition occurs.
//!
//! This is the strongest possible check that the corpus's "Trojan-infected"
//! labels mean something *behavioural*, not just structural.

use noodle::bench_gen::{
    families, insert_trojan, CircuitFamily, PayloadKind, TriggerKind, TrojanSpec,
};
use noodle::verilog::{compile, parse, print_module, PortDirection, Simulate, Simulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Clean and infected simulators plus the inserted Trojan's descriptor
/// and the design's driveable input ports.
type TrojanPair =
    (Box<dyn Simulate>, Box<dyn Simulate>, noodle::bench_gen::TrojanDescriptor, Vec<(String, u64)>);

/// Builds simulators for the clean and infected variants of one design
/// (round-tripped through source text, like the real corpus), on either
/// backend — the Trojan semantics must hold regardless of the engine.
fn build_pair(family: CircuitFamily, spec: TrojanSpec, seed: u64, compiled: bool) -> TrojanPair {
    let mut rng = StdRng::seed_from_u64(seed);
    let clean = families::generate(family, "dut", &mut rng);
    let mut infected = clean.clone();
    let descriptor = insert_trojan(&mut infected, spec, &mut rng);

    let clean_file = parse(&print_module(&clean.module)).expect("clean parses");
    let infected_file = parse(&print_module(&infected.module)).expect("infected parses");
    let build = |module| -> Box<dyn Simulate> {
        if compiled {
            Box::new(compile(module).expect("design compiles"))
        } else {
            Box::new(Simulator::new(module).expect("design simulates"))
        }
    };
    let clean_sim = build(&clean_file.modules[0]);
    let infected_sim = build(&infected_file.modules[0]);

    let inputs: Vec<(String, u64)> = clean
        .module
        .resolved_ports()
        .iter()
        .filter(|p| p.direction == PortDirection::Input && p.name != "clk")
        .map(|p| (p.name.clone(), p.range.map(|r| r.width()).unwrap_or(1)))
        .collect();
    (clean_sim, infected_sim, descriptor, inputs)
}

/// Output ports common to both variants (the infected design adds none).
fn output_ports(sim_src: &noodle::bench_gen::GeneratedCircuit) -> Vec<String> {
    sim_src
        .module
        .resolved_ports()
        .iter()
        .filter(|p| p.direction == PortDirection::Output)
        .map(|p| p.name.clone())
        .collect()
}

fn drive_random_cycle(
    clean: &mut dyn Simulate,
    infected: &mut dyn Simulate,
    inputs: &[(String, u64)],
    avoid: Option<(&str, &[u64])>,
    rng: &mut StdRng,
    has_clock: bool,
) {
    for (name, width) in inputs {
        let mut value: u64 = rng.random_range(0..(1u64 << width.min(&63)));
        if let Some((avoid_name, avoid_values)) = avoid {
            while name == avoid_name && avoid_values.contains(&value) {
                value = rng.random_range(0..(1u64 << width.min(&63)));
            }
        }
        clean.set(name, value as u128).unwrap();
        infected.set(name, value as u128).unwrap();
    }
    if has_clock {
        clean.step("clk").unwrap();
        infected.step("clk").unwrap();
    }
}

fn check_trojans_are_dormant_until_triggered(compiled: bool) {
    let mut rng = StdRng::seed_from_u64(2024);
    for (i, spec) in TrojanSpec::all().into_iter().enumerate() {
        let family = CircuitFamily::ALL[(i * 3 + 1) % CircuitFamily::ALL.len()];
        let mut probe_rng = StdRng::seed_from_u64(500 + i as u64);
        let clean_circuit = {
            let mut r = StdRng::seed_from_u64(500 + i as u64);
            families::generate(family, "dut", &mut r)
        };
        let (mut clean, mut infected, descriptor, inputs) =
            build_pair(family, spec, 500 + i as u64, compiled);
        let _ = &mut probe_rng;
        let outputs = output_ports(&clean_circuit);
        let has_clock = clean_circuit.clock.is_some();

        // Reset both.
        if inputs.iter().any(|(n, _)| n == "rst") {
            clean.set("rst", 1).unwrap();
            infected.set("rst", 1).unwrap();
            if has_clock {
                clean.step("clk").unwrap();
                infected.step("clk").unwrap();
            }
            clean.set("rst", 0).unwrap();
            infected.set("rst", 0).unwrap();
        }

        // Dormant phase: inputs never hit the magic value; the time-bomb
        // magic count is >= 4096, far beyond 40 cycles.
        let driven: Vec<(String, u64)> =
            inputs.iter().filter(|(n, _)| n != "rst").cloned().collect();
        let avoid = (descriptor.trigger != TriggerKind::TimeBomb)
            .then_some((descriptor.trigger_source.as_str(), descriptor.trigger_values.as_slice()));
        for cycle in 0..40 {
            drive_random_cycle(&mut *clean, &mut *infected, &driven, avoid, &mut rng, has_clock);
            assert_eq!(
                infected.get("cfg_match"),
                Some(0),
                "{family:?}/{spec:?}: trigger fired during dormancy at cycle {cycle}"
            );
            for out in &outputs {
                assert_eq!(
                    clean.get(out),
                    infected.get(out),
                    "{family:?}/{spec:?}: output `{out}` diverged while dormant (cycle {cycle})"
                );
            }
        }

        // Fire the trigger.
        match descriptor.trigger {
            TriggerKind::MagicValue => {
                let magic = descriptor.trigger_values[0] as u128;
                infected.set(&descriptor.trigger_source, magic).unwrap();
                clean.set(&descriptor.trigger_source, magic).unwrap();
            }
            TriggerKind::TimeBomb => {
                // Fast-forward the bomb counter to one below the magic count
                // and take one clock edge.
                let magic = descriptor.trigger_values[0] as u128;
                infected.set(&descriptor.trigger_source, magic - 1).unwrap();
                infected.step("clk").unwrap();
                clean.step("clk").unwrap();
            }
            TriggerKind::Sequence => {
                for &code in &descriptor.trigger_values {
                    infected.set(&descriptor.trigger_source, code as u128).unwrap();
                    clean.set(&descriptor.trigger_source, code as u128).unwrap();
                    infected.step("clk").unwrap();
                    clean.step("clk").unwrap();
                }
            }
        }
        assert_eq!(
            infected.get("cfg_match"),
            Some(1),
            "{family:?} / {spec:?}: trigger did not fire ({descriptor:?})"
        );

        // A corruption payload must visibly tamper with the hijacked output.
        if descriptor.payload == PayloadKind::Corrupt {
            assert_ne!(
                clean.get(&descriptor.hooked_output),
                infected.get(&descriptor.hooked_output),
                "{family:?}/{spec:?}: corrupt payload fired but output `{}` unchanged",
                descriptor.hooked_output
            );
        }
    }
}

#[test]
fn trojans_are_dormant_until_triggered() {
    check_trojans_are_dormant_until_triggered(false);
}

#[test]
fn trojans_are_dormant_until_triggered_compiled() {
    check_trojans_are_dormant_until_triggered(true);
}

#[test]
fn dos_payload_zeroes_the_output_when_fired() {
    let spec =
        TrojanSpec { trigger: TriggerKind::MagicValue, payload: PayloadKind::DenialOfService };
    for compiled in [false, true] {
        let (mut clean, mut infected, descriptor, _) =
            build_pair(CircuitFamily::Arbiter, spec, 7, compiled);
        // Drive all requests high: the arbiter must grant someone...
        clean.set("req", 0b1111).unwrap();
        infected.set("req", 0b1111).unwrap();
        assert_ne!(clean.get("grant"), Some(0));
        // ...unless the magic request pattern kills the grant output.
        let magic = descriptor.trigger_values[0] as u128;
        clean.set(&descriptor.trigger_source, magic).unwrap();
        infected.set(&descriptor.trigger_source, magic).unwrap();
        if descriptor.hooked_output == "grant" && clean.get("grant") != Some(0) {
            assert_eq!(infected.get("grant"), Some(0), "DoS payload must zero the grant");
        }
    }
}

#[test]
fn leak_payload_exfiltrates_the_secret_bit() {
    let spec = TrojanSpec { trigger: TriggerKind::MagicValue, payload: PayloadKind::Leak };
    for compiled in [false, true] {
        let (mut clean, mut infected, descriptor, _) =
            build_pair(CircuitFamily::CryptoRound, spec, 11, compiled);
        assert_eq!(descriptor.payload, PayloadKind::Leak);
        // Load a known state with an odd low bit, then trigger and compare the
        // hijacked output: the xor-ed difference equals the replicated secret
        // bit, which is exactly what an attacker reads off the bus.
        for sim in [&mut clean, &mut infected] {
            sim.set("rst", 1).unwrap();
            sim.step("clk").unwrap();
            sim.set("rst", 0).unwrap();
            sim.set("key", 0x55).unwrap();
            sim.set("din", 0x01).unwrap();
            sim.set("load", 1).unwrap();
            sim.step("clk").unwrap();
        }
        let magic = descriptor.trigger_values[0] as u128;
        clean.set(&descriptor.trigger_source, magic).unwrap();
        infected.set(&descriptor.trigger_source, magic).unwrap();
        assert_eq!(infected.get("cfg_match"), Some(1));
        let clean_out = clean.get(&descriptor.hooked_output).unwrap();
        let infected_out = infected.get(&descriptor.hooked_output).unwrap();
        let diff = clean_out ^ infected_out;
        // The leak xors a replicated single secret bit: diff is all-zeros or
        // all-ones over the output width.
        let width = infected.width(&descriptor.hooked_output).unwrap();
        let all_ones = if width >= 128 { u128::MAX } else { (1u128 << width) - 1 };
        assert!(
            diff == 0 || diff == all_ones,
            "leak payload must replicate one bit: diff = {diff:#x} (width {width})"
        );
    }
}

#[test]
fn corpus_designs_simulate() {
    // Every design in a (small) generated corpus must build a simulator and
    // survive a handful of cycles — decorations, composition and style
    // rewrites included.
    use noodle::{generate_corpus, CorpusConfig};
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 6, trojan_infected: 3, seed: 9 });
    let mut rng = StdRng::seed_from_u64(1);
    for bench in &corpus {
        let file = parse(&bench.source).expect("corpus parses");
        let mut sim =
            Simulator::new(&file.modules[0]).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let inputs: Vec<(String, u64)> = file.modules[0]
            .resolved_ports()
            .iter()
            .filter(|p| p.direction == PortDirection::Input && p.name != "clk")
            .map(|p| (p.name.clone(), p.range.map(|r| r.width()).unwrap_or(1)))
            .collect();
        for _ in 0..5 {
            for (name, width) in &inputs {
                let v: u64 = rng.random_range(0..(1u64 << width.min(&63)));
                sim.set(name, v as u128).unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            }
            sim.step("clk").unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        }
    }
}
