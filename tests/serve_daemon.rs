//! Integration tests for the `noodle serve` daemon: concurrent clients
//! over real TCP get verdicts byte-identical to the one-shot `detect`
//! path, graceful drain answers every accepted request, and an induced
//! SLO breach takes the full incident path (Alert health + exactly one
//! flight-bundle dump naming the slow trace ids).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use noodle::observe::{
    install_alert_dump, FlightBundle, Health, MemoryAudit, MonitorConfig, PredictionRecord,
    SloConfig, StreamingMonitors,
};
use noodle::{
    generate_corpus, Benchmark, CorpusConfig, Detection, MultimodalDataset, NoodleConfig,
    NoodleDetector, ServeConfig, ServeController, ServeEngine,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fits once per process and hands out the serialized model; every test
/// restores a fresh detector from it, so audit sequence numbers restart.
fn fitted_json() -> &'static str {
    static FITTED: OnceLock<String> = OnceLock::new();
    FITTED.get_or_init(|| {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 11 });
        let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let detector = NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).unwrap();
        detector.to_json().unwrap()
    })
}

/// One submission line (no trailing newline; `writeln!` adds it).
fn request(id: u64, bench: &Benchmark) -> String {
    serde_json::json!({
        "design": bench.name,
        "source": bench.source,
        "label": bench.label.index(),
        "id": id,
    })
    .to_string()
}

/// Reads one response line, panicking on EOF or timeout (a hung or
/// prematurely closed daemon is exactly what these tests must catch).
fn read_response(reader: &mut BufReader<TcpStream>) -> serde_json::Value {
    let mut line = String::new();
    reader.read_line(&mut line).expect("daemon answers within the read timeout");
    assert!(!line.is_empty(), "daemon closed the connection with a response outstanding");
    serde_json::from_str(&line).expect("daemon speaks JSONL")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("daemon accepts connections");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    let writer = stream.try_clone().unwrap();
    (writer, BufReader::new(stream))
}

/// Strips the fields that legitimately differ between serving modes
/// (timing, batch geometry, emission order, the minted trace id) so the
/// remaining bytes must match exactly.
fn canonical(mut r: PredictionRecord) -> String {
    r.seq = 0;
    r.latency_us = 0.0;
    r.batch_latency_us = 0.0;
    r.batch_size = 0;
    r.trace_id = String::new();
    serde_json::to_string(&r).unwrap()
}

/// Eight concurrent clients — four greedy (flood their whole share, then
/// collect) and four paced — must each get verdicts byte-identical to the
/// sequential one-shot `detect` path, and the audit log must join the
/// responses by trace id.
#[test]
fn eight_concurrent_clients_match_one_shot_verdicts() {
    let json = fitted_json();
    let probe = generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 10, seed: 77 });

    // Reference: the sequential one-shot path with its own audit sink.
    let mut reference = NoodleDetector::from_json(json).unwrap();
    let ref_sink = MemoryAudit::new();
    reference.set_audit_sink(Box::new(ref_sink.clone()));
    let ref_detections: Vec<Detection> = probe
        .iter()
        .map(|b| reference.detect_named(&b.name, &b.source, Some(b.label.index())).unwrap())
        .collect();

    let serve_sink = MemoryAudit::new();
    let ctl = ServeController::new();
    let engine = ServeEngine::start(
        NoodleDetector::from_json(json).unwrap(),
        None,
        Some(Box::new(serve_sink.clone())),
        None,
        ServeConfig {
            batch: 8,
            batch_deadline: Duration::from_millis(5),
            queue_cap: 64,
            ..ServeConfig::default()
        },
        ctl.clone(),
    )
    .unwrap();
    let addr = engine.addr();

    let verdicts: Vec<serde_json::Value> = std::thread::scope(|scope| {
        let probe = &probe;
        let handles: Vec<_> = (0..8)
            .map(|c| {
                scope.spawn(move || {
                    let share: Vec<_> = probe.iter().skip(c).step_by(8).collect();
                    let (mut writer, mut reader) = connect(addr);
                    let mut out = Vec::new();
                    if c % 2 == 0 {
                        // Greedy: every request on the wire before the
                        // first read — the fair queue interleaves anyway.
                        for (i, b) in share.iter().enumerate() {
                            writeln!(writer, "{}", request(i as u64, b)).unwrap();
                        }
                        for _ in 0..share.len() {
                            out.push(read_response(&mut reader));
                        }
                    } else {
                        for (i, b) in share.iter().enumerate() {
                            writeln!(writer, "{}", request(i as u64, b)).unwrap();
                            out.push(read_response(&mut reader));
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread panicked")).collect()
    });

    engine.join();
    assert!(ctl.finished());
    let stats = ctl.stats();
    assert_eq!(stats.served, probe.len() as u64);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.inflight, 0);

    // Every served verdict matches the one-shot detection exactly — f64s
    // round-trip through JSONL losslessly, so `==` is byte-identity.
    let expected: HashMap<&str, &Detection> =
        probe.iter().zip(&ref_detections).map(|(b, d)| (b.name.as_str(), d)).collect();
    assert_eq!(verdicts.len(), probe.len());
    let mut trace_by_design: HashMap<String, String> = HashMap::new();
    for v in &verdicts {
        assert_eq!(v["type"], "verdict", "{v}");
        let design = v["design"].as_str().unwrap();
        let d = expected[design];
        assert_eq!(v["infected"].as_bool().unwrap(), d.infected, "{design}");
        assert_eq!(v["probability_infected"].as_f64().unwrap(), d.probability_infected, "{design}");
        let p = d.prediction.p_values();
        assert_eq!(v["p_values"][0].as_f64().unwrap(), p[0], "{design}");
        assert_eq!(v["p_values"][1].as_f64().unwrap(), p[1], "{design}");
        assert_eq!(v["credibility"].as_f64().unwrap(), d.credibility, "{design}");
        assert_eq!(v["confidence"].as_f64().unwrap(), d.confidence, "{design}");
        assert_eq!(v["uncertain"].as_bool().unwrap(), d.uncertain, "{design}");
        let region: Vec<usize> =
            v["region"].as_array().unwrap().iter().map(|x| x.as_u64().unwrap() as usize).collect();
        assert_eq!(region, d.region, "{design}");
        let trace_id = v["trace_id"].as_str().unwrap();
        assert_eq!(trace_id.len(), 16, "{v}");
        trace_by_design.insert(design.to_string(), trace_id.to_string());
    }

    // The daemon's audit header carries its serving provenance...
    let header = serve_sink.header().expect("serve audit emits a header");
    let serve = header.serve.expect("served logs carry the serve block");
    assert_eq!(serve.batch_deadline_ms, 5);
    assert_eq!(serve.queue_cap, 64);
    assert_eq!(serve.addr, addr.to_string());
    assert!(ref_sink.header().unwrap().serve.is_none(), "one-shot logs have no serve block");

    // ...and its records are canonically identical to the one-shot log,
    // joined to the client-visible responses by trace id.
    let serve_records = serve_sink.records();
    assert_eq!(serve_records.len(), probe.len());
    for r in &serve_records {
        assert_eq!(
            trace_by_design[&r.design], r.trace_id,
            "audit record and client response disagree on the trace id of {}",
            r.design
        );
    }
    let mut served: Vec<String> = serve_records.into_iter().map(canonical).collect();
    let mut one_shot: Vec<String> = ref_sink.records().into_iter().map(canonical).collect();
    served.sort();
    one_shot.sort();
    assert_eq!(served, one_shot, "served audit records diverge from the one-shot path");
}

/// Draining with a batch still forming must flush the backlog (verdicts
/// for everything accepted) while shedding new submissions with reason
/// `"draining"` and a retry hint.
#[test]
fn drain_flushes_backlog_and_sheds_new_submissions() {
    let json = fitted_json();
    let probe = generate_corpus(&CorpusConfig { trojan_free: 2, trojan_infected: 1, seed: 31 });
    let ctl = ServeController::new();
    let engine = ServeEngine::start(
        NoodleDetector::from_json(json).unwrap(),
        None,
        None,
        None,
        // A long formation deadline parks the batcher waiting for more
        // work, so the drain demonstrably cuts formation short.
        ServeConfig {
            batch: 64,
            batch_deadline: Duration::from_secs(2),
            queue_cap: 8,
            ..ServeConfig::default()
        },
        ctl.clone(),
    )
    .unwrap();

    let (mut writer, mut reader) = connect(engine.addr());
    writeln!(writer, "{}", request(0, &probe[0])).unwrap();
    writeln!(writer, "{}", request(1, &probe[1])).unwrap();
    // Let both land in the forming batch, then pull the plug and submit a
    // third request the admission gate must refuse.
    std::thread::sleep(Duration::from_millis(100));
    ctl.request_drain();
    writeln!(writer, "{}", request(2, &probe[2])).unwrap();

    let mut verdicts = Vec::new();
    let mut sheds = Vec::new();
    for _ in 0..3 {
        let v = read_response(&mut reader);
        match v["type"].as_str().unwrap() {
            "verdict" => verdicts.push(v),
            "shed" => sheds.push(v),
            other => panic!("unexpected response type {other}: {v}"),
        }
    }
    engine.join();

    let mut answered: Vec<u64> = verdicts.iter().map(|v| v["id"].as_u64().unwrap()).collect();
    answered.sort_unstable();
    assert_eq!(answered, vec![0, 1], "the accepted backlog must be answered, not dropped");
    let [shed] = sheds.as_slice() else { panic!("expected exactly one shed, got {sheds:?}") };
    assert_eq!(shed["id"].as_u64(), Some(2));
    assert_eq!(shed["reason"], "draining");
    assert!(shed["retry_after_ms"].as_u64().unwrap() >= 1);

    assert!(ctl.finished());
    let stats = ctl.stats();
    assert_eq!((stats.served, stats.shed, stats.errors, stats.inflight), (2, 1, 0, 0));
}

/// Drain under sustained multi-client load: the daemon may shed, but every
/// response line pairs with a submission, nothing accepted goes
/// unanswered, and the engine reports finished with zero in flight.
#[test]
fn drain_mid_load_loses_no_accepted_requests() {
    let json = fitted_json();
    let probe = generate_corpus(&CorpusConfig { trojan_free: 4, trojan_infected: 2, seed: 43 });
    let ctl = ServeController::new();
    let engine = ServeEngine::start(
        NoodleDetector::from_json(json).unwrap(),
        None,
        None,
        None,
        ServeConfig {
            batch: 4,
            batch_deadline: Duration::from_millis(5),
            queue_cap: 16,
            ..ServeConfig::default()
        },
        ctl.clone(),
    )
    .unwrap();
    let addr = engine.addr();

    // (responses, verdicts) per client; each client bursts four requests,
    // reads four responses, and stops once it observes the drain (a
    // draining shed, or the daemon closing after completion).
    let tallies: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let probe = &probe;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let (mut writer, mut reader) = connect(addr);
                    let (mut sent, mut responses, mut verdicts) = (0u64, 0usize, 0usize);
                    let mut saw_drain = false;
                    'bursts: while !saw_drain {
                        assert!(sent < 40_000, "drain never reached this client");
                        for _ in 0..4 {
                            let b = &probe[sent as usize % probe.len()];
                            if writeln!(writer, "{}", request(sent, b)).is_err() {
                                break 'bursts;
                            }
                            sent += 1;
                        }
                        for _ in 0..4 {
                            let mut line = String::new();
                            match reader.read_line(&mut line) {
                                // EOF: the engine finished the drain before
                                // reading our latest submissions — those
                                // were never accepted, which is fine.
                                Ok(0) => break 'bursts,
                                Ok(_) => {}
                                Err(e) => panic!("daemon hung mid-drain: {e}"),
                            }
                            responses += 1;
                            let v: serde_json::Value = serde_json::from_str(&line).unwrap();
                            match v["type"].as_str().unwrap() {
                                "verdict" => verdicts += 1,
                                "shed" => saw_drain |= v["reason"] == "draining",
                                other => panic!("unexpected response type {other}: {v}"),
                            }
                        }
                    }
                    (responses, verdicts)
                })
            })
            .collect();

        // Mid-load: wait until requests are demonstrably in flight, then
        // drain under the backlog.
        let gate = Instant::now();
        while ctl.stats().inflight < 8 {
            assert!(gate.elapsed() < Duration::from_secs(30), "load never built up");
            std::thread::sleep(Duration::from_millis(1));
        }
        ctl.request_drain();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    engine.join();

    assert!(ctl.finished());
    let stats = ctl.stats();
    assert_eq!(stats.inflight, 0, "an accepted request went unanswered: {stats:?}");
    assert_eq!(stats.errors, 0, "{stats:?}");
    let responses: usize = tallies.iter().map(|t| t.0).sum();
    let verdicts: usize = tallies.iter().map(|t| t.1).sum();
    assert!(verdicts > 0, "the daemon served nothing before the drain");
    assert_eq!(stats.served as usize, verdicts, "{stats:?}");
    assert_eq!(
        (stats.served + stats.shed) as usize,
        responses,
        "every line the daemon read must be answered exactly once: {stats:?}"
    );
}

/// An induced latency-SLO breach must flip the monitors to Alert, name
/// the slow trace ids in the evidence, and dump exactly one flight bundle.
#[test]
fn slo_breach_alerts_and_dumps_exactly_one_flight_bundle() {
    let json = fitted_json();
    let probe = generate_corpus(&CorpusConfig { trojan_free: 4, trojan_infected: 2, seed: 59 });
    let monitors = StreamingMonitors::new(MonitorConfig::default());
    // A 1µs end-to-end target no real request can meet: every served
    // request lands over 2x target, so the rolling p99 trips Alert as
    // soon as the window has enough samples.
    monitors.set_slo(SloConfig { p99_target_us: 1.0, min_samples: 5, ..SloConfig::default() });
    let dump_dir = std::env::temp_dir().join(format!("noodle-serve-slo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    install_alert_dump(&monitors, &dump_dir);

    let ctl = ServeController::new();
    let engine = ServeEngine::start(
        NoodleDetector::from_json(json).unwrap(),
        None,
        None,
        Some(monitors.clone()),
        ServeConfig {
            batch: 4,
            batch_deadline: Duration::from_millis(5),
            queue_cap: 16,
            ..ServeConfig::default()
        },
        ctl.clone(),
    )
    .unwrap();

    let (mut writer, mut reader) = connect(engine.addr());
    let mut trace_ids = Vec::new();
    for id in 0..12u64 {
        writeln!(writer, "{}", request(id, &probe[id as usize % probe.len()])).unwrap();
        let v = read_response(&mut reader);
        assert_eq!(v["type"], "verdict", "{v}");
        trace_ids.push(v["trace_id"].as_str().unwrap().to_string());
    }
    engine.join();

    assert_eq!(monitors.overall(), Health::Alert, "a blown latency SLO must surface as Alert");
    let statuses = monitors.statuses();
    let latency = statuses.iter().find(|s| s.monitor == "serve.latency_p99").unwrap();
    assert_eq!(latency.health, Health::Alert, "{}", latency.evidence);
    assert!(
        trace_ids.iter().any(|id| latency.evidence.contains(id.as_str())),
        "the alert evidence must name trace ids the clients actually saw: {}",
        latency.evidence
    );

    let bundles: Vec<_> = std::fs::read_dir(&dump_dir)
        .expect("the alert transition creates the dump directory")
        .map(|e| e.unwrap().path())
        .collect();
    let [path] = bundles.as_slice() else {
        panic!("expected exactly one flight bundle per alert transition, got {bundles:?}");
    };
    assert!(path.file_name().unwrap().to_str().unwrap().starts_with("flight-"));
    let bundle = FlightBundle::from_json(&std::fs::read_to_string(path).unwrap()).unwrap();
    assert_eq!(bundle.reason, "alert");
    let slo_verdict =
        bundle.monitor.monitors.iter().find(|s| s.monitor == "serve.latency_p99").unwrap();
    assert_eq!(slo_verdict.health, Health::Alert);
    std::fs::remove_dir_all(&dump_dir).unwrap();
}
