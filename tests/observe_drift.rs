//! End-to-end monitoring tests: a detector fit on a restricted slice of
//! circuit families is screened against an in-distribution stream (conformal
//! coverage must stay inside its binomial tolerance band) and against an
//! induced-drift stream of Trojan-infected designs from the held-out
//! families (at least one monitor must leave `Healthy`).
//!
//! Both streams flow through the real audit pipeline: `detect_named` →
//! [`JsonlAudit`] → [`parse_audit_log`] → [`replay`].

use std::path::PathBuf;

use noodle::bench_gen::{generate_corpus, CircuitFamily, CorpusConfig};
use noodle::observe::{
    parse_audit_log, replay, Health, JsonlAudit, MonitorConfig, MonitorReport, StreamingMonitors,
};
use noodle::{MultimodalDataset, NoodleConfig, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Families withheld from the fit corpus and used to induce drift.
const HELD_OUT: [CircuitFamily; 4] = [
    CircuitFamily::CryptoRound,
    CircuitFamily::Lfsr,
    CircuitFamily::GrayCounter,
    CircuitFamily::CrcGen,
];

fn held_out(family: CircuitFamily) -> bool {
    HELD_OUT.contains(&family)
}

/// Fits a fast-config detector on a corpus restricted to the non-held-out
/// lead families.
fn fit_restricted() -> NoodleDetector {
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 28, trojan_infected: 14, seed: 11 });
    let kept: Vec<_> = corpus.into_iter().filter(|b| !held_out(b.family)).collect();
    assert!(kept.len() >= 25, "family filter left only {} designs", kept.len());
    let dataset = MultimodalDataset::from_benchmarks(&kept).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).unwrap()
}

/// Screens every benchmark through an audited detector, then replays the
/// written JSONL log through the monitor suite.
fn audit_and_replay(
    detector: &mut NoodleDetector,
    stream: &[noodle::Benchmark],
    log_name: &str,
) -> MonitorReport {
    let path = PathBuf::from(std::env::temp_dir())
        .join(format!("noodle_{log_name}_{}.jsonl", std::process::id()));
    let sink = JsonlAudit::create(&path).unwrap();
    detector.set_audit_sink(Box::new(sink));
    for bench in stream {
        detector.detect_named(&bench.name, &bench.source, Some(bench.label.index())).unwrap();
    }
    // Drop the sink so the buffered log flushes.
    drop(detector.take_audit_sink());
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let (header, records) = parse_audit_log(&text).unwrap();
    let header = header.expect("audit log starts with a header");
    assert!(header.baseline.is_some(), "fit detector persists a calibration baseline");
    assert_eq!(records.len(), stream.len());
    let report = replay(Some(&header), &records, MonitorConfig::default());

    // Differential check on a real detector stream: feeding the same log
    // incrementally through the streaming engine must land in exactly the
    // state batch replay reports.
    let streaming = StreamingMonitors::new(MonitorConfig::default());
    streaming.observe_header(&header);
    for record in &records {
        streaming.observe(record);
    }
    assert_eq!(streaming.report(), report, "streaming and batch replay disagree on {log_name}");

    report
}

#[test]
fn in_distribution_coverage_stays_within_binomial_band() {
    let mut detector = fit_restricted();
    // A fresh draw from the same generator and family mix: exchangeable
    // with calibration, so Mondrian coverage must hold per class.
    let probe = generate_corpus(&CorpusConfig { trojan_free: 40, trojan_infected: 40, seed: 99 });
    let stream: Vec<_> = probe.into_iter().filter(|b| !held_out(b.family)).collect();
    let report = audit_and_replay(&mut detector, &stream, "in_dist");

    assert_eq!(report.records, stream.len());
    assert_eq!(report.labeled, stream.len());
    let epsilon = report.epsilon.expect("epsilon known from the audit header");
    for name in ["coverage.trojan_free", "coverage.trojan_infected"] {
        let status = report
            .monitors
            .iter()
            .find(|m| m.monitor == name)
            .unwrap_or_else(|| panic!("missing monitor {name}"));
        assert!(
            status.samples >= 20,
            "{name} underpowered with {} samples; grow the probe",
            status.samples
        );
        // `tolerance` is the 2σ warn half-width; stay within a 4σ binomial
        // band of ε so a single unlucky draw cannot flip the test.
        let sigma = status.tolerance / 2.0;
        assert!(
            status.observed <= epsilon + 4.0 * sigma,
            "{name}: empirical miscoverage {:.3} breaches ε={epsilon:.3} + 4σ ({:.3}): {:#?}",
            status.observed,
            epsilon + 4.0 * sigma,
            report.monitors
        );
    }
    // The baseline-backed monitors all ran against this stream.
    for name in ["brier", "class_balance", "modality.imputed"] {
        assert!(report.monitors.iter().any(|m| m.monitor == name), "missing monitor {name}");
    }
    assert!(
        report.monitors.iter().any(|m| m.monitor.starts_with("drift.")),
        "no drift monitor in {:#?}",
        report.monitors
    );
}

#[test]
fn held_out_family_trojan_stream_trips_a_monitor() {
    let mut detector = fit_restricted();
    // Induced drift: every design is Trojan-infected AND led by a circuit
    // family the detector never saw at fit time. Whatever the detector does
    // with these, some monitor must notice: confident detections shift the
    // predicted class balance far from the calibration prior, missed ones
    // collapse Trojan-infected coverage and inflate the Brier score, and
    // unfamiliar structure moves the nonconformity-score distribution.
    let probe = generate_corpus(&CorpusConfig { trojan_free: 0, trojan_infected: 84, seed: 909 });
    let stream: Vec<_> = probe.into_iter().filter(|b| held_out(b.family)).collect();
    assert!(stream.len() >= 20, "drift stream too small: {}", stream.len());
    let report = audit_and_replay(&mut detector, &stream, "drift");

    assert_eq!(report.records, stream.len());
    assert!(
        report.overall >= Health::Warn,
        "induced drift went unnoticed by every monitor: {:#?}",
        report.monitors
    );
}
