//! Integration tests for the `noodle` command-line tool, driving the real
//! binary end to end: corpus generation → training → detection → inspect.

use std::process::Command;

fn noodle() -> Command {
    Command::new(env!("CARGO_BIN_EXE_noodle"))
}

#[test]
fn cli_full_round_trip() {
    let dir = std::env::temp_dir().join(format!("noodle_cli_{}", std::process::id()));
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");

    // gen-corpus
    let out = noodle()
        .args(["gen-corpus", corpus_dir.to_str().unwrap(), "--tf", "10", "--ti", "5", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let files: Vec<_> = std::fs::read_dir(&corpus_dir).unwrap().collect();
    assert_eq!(files.len(), 15, "one .v file per design");

    // train (fast scale so the test stays quick)
    let out = noodle()
        .args(["train", model.to_str().unwrap(), "--fast", "--corpus-seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // detect on a couple of generated files
    let mut paths: Vec<String> = std::fs::read_dir(&corpus_dir)
        .unwrap()
        .map(|e| e.unwrap().path().to_str().unwrap().to_string())
        .collect();
    paths.sort();
    let out = noodle()
        .args(["detect", model.to_str().unwrap(), &paths[0], &paths[1]])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict"), "{stdout}");
    assert!(stdout.lines().count() >= 3, "{stdout}");

    // inspect
    let out = noodle().args(["inspect", &paths[0]]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tabular features"));
    assert!(stdout.contains("graph image"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_errors_cleanly() {
    // Unknown command.
    let out = noodle().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing model file.
    let out = noodle().args(["detect", "/nonexistent/model.json", "x.v"]).output().unwrap();
    assert!(!out.status.success());

    // Help succeeds.
    let out = noodle().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
