//! Integration tests for the `noodle` command-line tool, driving the real
//! binary end to end: corpus generation → training → detection → inspect.

use std::path::Path;
use std::process::Command;

fn noodle() -> Command {
    Command::new(env!("CARGO_BIN_EXE_noodle"))
}

/// Every span's children must fit inside their parent: child durations sum
/// to no more than the parent's wall-clock time.
fn assert_stage_tree_consistent(span: &serde_json::Value) {
    let duration = span["duration_ns"].as_u64().expect("duration_ns is u64");
    let children = span["children"].as_array().expect("children is an array");
    let child_sum: u64 =
        children.iter().map(|c| c["duration_ns"].as_u64().expect("child duration")).sum();
    assert!(
        child_sum <= duration,
        "children of `{}` sum to {child_sum}ns > parent {duration}ns",
        span["name"]
    );
    for child in children {
        assert_stage_tree_consistent(child);
    }
}

/// Parses a `--report` file and checks the training-run schema: a `train`
/// root stage whose tree is time-consistent, per-stage instrumentation,
/// corpus stats and the fusion evaluation.
fn assert_train_report(path: &Path) {
    let json = std::fs::read_to_string(path).expect("report file exists");
    let report: serde_json::Value = serde_json::from_str(&json).expect("report is valid JSON");
    assert_eq!(report["command"], "train");
    let stages = report["stages"].as_array().expect("stages is an array");
    let root = stages
        .iter()
        .find(|s| s["name"] == "train")
        .expect("report contains the `train` root stage");
    assert_stage_tree_consistent(root);
    let tree = serde_json::to_string(root).unwrap();
    for stage in
        ["dataset.parse", "dataset.extract", "gan.amplify", "cnn.fit", "icp.calibrate", "fusion"]
    {
        assert!(tree.contains(stage), "train stage tree missing `{stage}`");
    }
    // Counters/histograms from the instrumented crates.
    assert!(report["counters"]["verilog.parse_calls"].as_u64().unwrap_or(0) > 0);
    assert!(report["counters"]["nn.epochs"].as_u64().unwrap_or(0) > 0);
    assert!(report["histograms"].get("nn.epoch_loss").is_some());
    // Corpus + evaluation summaries.
    assert!(report["corpus"]["total"].as_u64().unwrap_or(0) > 0);
    let winner = report["evaluation"]["winner"].as_str().expect("winner recorded");
    assert!(report["evaluation"]["brier"][winner].is_number(), "winner has a Brier score");
    // Versioned schema + run context (PR: observability).
    assert_eq!(report["schema_version"], 2);
    let context = &report["context"];
    assert!(context["invocation"].as_str().expect("invocation recorded").contains("train"));
    assert_eq!(context["seed"], 42, "default train seed recorded in context");
    assert!(context["version"].is_string());
    // Exact quantiles are surfaced for every histogram.
    let quantiles = &report["histogram_quantiles"]["nn.epoch_loss"];
    for key in ["p50", "p95", "p99"] {
        assert!(quantiles[key].is_number(), "nn.epoch_loss missing {key}: {quantiles}");
    }
}

#[test]
fn cli_full_round_trip() {
    let dir = std::env::temp_dir().join(format!("noodle_cli_{}", std::process::id()));
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");

    // gen-corpus
    let out = noodle()
        .args([
            "gen-corpus",
            corpus_dir.to_str().unwrap(),
            "--tf",
            "10",
            "--ti",
            "5",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let files: Vec<_> = std::fs::read_dir(&corpus_dir).unwrap().collect();
    assert_eq!(files.len(), 15, "one .v file per design");

    // train (fast scale so the test stays quick) with tracing + run report
    let report = dir.join("train_report.json");
    let out = noodle()
        .args([
            "train",
            model.to_str().unwrap(),
            "--fast",
            "--corpus-seed",
            "3",
            "--trace",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for stage in ["dataset.parse", "dataset.extract", "gan.amplify", "cnn.fit", "icp.calibrate"] {
        assert!(stderr.contains(stage), "trace output missing stage {stage}:\n{stderr}");
    }
    assert_train_report(&report);

    // detect on every generated file, with an audit log and a run report
    let mut paths: Vec<String> = std::fs::read_dir(&corpus_dir)
        .unwrap()
        .map(|e| e.unwrap().path().to_str().unwrap().to_string())
        .collect();
    paths.sort();
    let audit = dir.join("audit.jsonl");
    let detect_report = dir.join("detect_report.json");
    let out = noodle()
        .args(["detect", model.to_str().unwrap()])
        .args(&paths)
        .args(["--audit", audit.to_str().unwrap(), "--report", detect_report.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verdict"), "{stdout}");
    assert!(stdout.lines().count() >= paths.len() + 1, "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("detect latency: p50"), "{stderr}");

    // The audit log is one JSON object per line: a header carrying the
    // calibration baseline, then one prediction per screened file.
    let log = std::fs::read_to_string(&audit).expect("audit log written");
    let lines: Vec<serde_json::Value> = log
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("audit line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), paths.len() + 1, "header + one record per file");
    assert_eq!(lines[0]["type"], "header");
    assert!(lines[0]["baseline"]["sources"].is_object(), "header embeds the baseline");
    for record in &lines[1..] {
        assert_eq!(record["type"], "prediction");
        assert!(record["design"].as_str().unwrap().contains('_'), "{record}");
        assert!(record["label"].is_number(), "corpus file names imply labels: {record}");
        assert!(record["latency_us"].as_f64().unwrap() > 0.0, "{record}");
        assert!(!record["sources"].as_array().unwrap().is_empty(), "{record}");
    }
    // The detect run report carries exact latency quantiles.
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&detect_report).unwrap()).unwrap();
    assert_eq!(report["command"], "detect");
    assert_eq!(report["counters"]["audit.records"], paths.len() as u64);
    assert!(report["histogram_quantiles"]["detect.latency_us"]["p95"].is_number(), "{report}");

    // observe: replay the audit log through the monitor suite
    let monitor_path = dir.join("monitor_report.json");
    let out = noodle()
        .args(["observe", audit.to_str().unwrap(), "--out", monitor_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("overall:"), "{stdout}");
    assert!(stdout.contains("coverage.trojan_free"), "{stdout}");
    let monitor: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&monitor_path).unwrap()).unwrap();
    assert_eq!(monitor["schema_version"], 1);
    assert_eq!(monitor["records"], paths.len());
    assert_eq!(monitor["labeled"], paths.len());
    assert!(monitor["epsilon"].is_number(), "epsilon comes from the audit header");
    assert!(!monitor["monitors"].as_array().unwrap().is_empty());
    // 15 in-distribution records are below every monitor's min-samples
    // gate, so nothing may fire on this healthy stream.
    assert_eq!(monitor["overall"], "healthy", "{monitor}");

    // detect again with size-based audit rotation: small cap so the run
    // rotates several times, keeping at most 2 rotated segments.
    let rotating = dir.join("rotating.jsonl");
    let out = noodle()
        .args(["detect", model.to_str().unwrap()])
        .args(&paths)
        .args([
            "--audit",
            rotating.to_str().unwrap(),
            "--audit-rotate-bytes",
            "2048",
            "--audit-keep",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let seg1 = dir.join("rotating.jsonl.1");
    let seg2 = dir.join("rotating.jsonl.2");
    assert!(rotating.exists() && seg1.exists() && seg2.exists(), "rotation produced segments");
    assert!(!dir.join("rotating.jsonl.3").exists(), "--audit-keep 2 caps rotated segments");
    // Every segment starts with a re-emitted header, so each replays
    // standalone through `noodle observe`.
    for segment in [&rotating, &seg1, &seg2] {
        let text = std::fs::read_to_string(segment).unwrap();
        let first: serde_json::Value =
            serde_json::from_str(text.lines().next().expect("segment is non-empty")).unwrap();
        assert_eq!(first["type"], "header", "{}", segment.display());
        let out =
            noodle().args(["observe", segment.to_str().unwrap()]).output().expect("binary runs");
        assert!(
            out.status.success(),
            "observe {}: {}",
            segment.display(),
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // inspect
    let out = noodle().args(["inspect", &paths[0]]).output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("tabular features"));
    assert!(stdout.contains("graph image"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_observe_empty_audit_log_yields_valid_empty_report() {
    let dir = std::env::temp_dir().join(format!("noodle_cli_empty_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("empty.jsonl");
    std::fs::write(&log, "").unwrap();
    let report_path = dir.join("report.json");
    let out = noodle()
        .args(["observe", log.to_str().unwrap(), "--out", report_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "empty log must be valid, not an error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("overall: healthy"), "{stdout}");
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert_eq!(report["schema_version"], 1);
    assert_eq!(report["records"], 0);
    assert_eq!(report["labeled"], 0);
    assert_eq!(report["overall"], "healthy");
    std::fs::remove_dir_all(&dir).ok();
}

/// A hand-written audit header line matching the v2 schema.
fn audit_header_line() -> String {
    serde_json::json!({
        "type": "header", "schema_version": 2, "tool_version": "0.1.0",
        "significance": 0.1, "strategy": "LateFusion", "baseline": null,
    })
    .to_string()
}

/// A hand-written healthy prediction line (clean verdict, covered label).
fn audit_prediction_line(seq: u64) -> String {
    serde_json::json!({
        "type": "prediction", "seq": seq, "design": format!("uart_tf_{seq:03}"),
        "strategy": "LateFusion", "infected": false, "probability_infected": 0.1,
        "p_values": [0.9, 0.1], "region": [0], "credibility": 0.9, "confidence": 0.9,
        "uncertain": false, "significance": 0.1, "graph_present": true,
        "tabular_present": true, "imputed_modality": false, "label": 0,
        "latency_us": 80.0, "batch_latency_us": 80.0, "batch_size": 1,
        "sources": [{"source": "graph", "p_values": [0.9, 0.1], "scores": [0.05, 0.4]}],
    })
    .to_string()
}

/// One raw HTTP/1.1 exchange against the exposition server; returns
/// (status line, body).
fn http_get(addr: &str, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to export server");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn cli_observe_follow_tails_growing_and_rotated_logs() {
    use std::io::{BufRead, Write};

    let dir = std::env::temp_dir().join(format!("noodle_cli_follow_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("audit.jsonl");
    std::fs::write(&log, format!("{}\n", audit_header_line())).unwrap();

    let mut child = noodle()
        .args([
            "observe",
            log.to_str().unwrap(),
            "--follow",
            "--poll-ms",
            "40",
            "--idle-exit-ms",
            "3000",
            "--observe-addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");

    // The exporter echoes its ephemeral address on stderr; grab it.
    let mut stderr = std::io::BufReader::new(child.stderr.take().unwrap());
    let mut addr = None;
    let mut line = String::new();
    while stderr.read_line(&mut line).unwrap() > 0 {
        if let Some(rest) = line.trim().strip_prefix("observability endpoints at http://") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("exporter address echoed on stderr");

    // Grow the log; the follower should pick the records up live.
    {
        let mut file = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        for seq in 0..5 {
            writeln!(file, "{}", audit_prediction_line(seq)).unwrap();
        }
    }
    // The shared engine behind /monitor must converge on the 5 records.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let (status, body) = http_get(&addr, "/monitor");
        assert!(status.contains("200"), "{status}");
        let report: serde_json::Value = serde_json::from_str(&body).expect("monitor JSON");
        if report["records"] == 5 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "follower never saw the records: {report}");
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // While it runs, /metrics and /healthz serve live data.
    let (status, body) = http_get(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("noodle_observe_records_total 5"), "{body}");
    let (status, _) = http_get(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");

    // Simulate a rotation: live log renamed away, fresh one re-starts with
    // a header. The follower must reset to offset 0 and keep counting.
    std::fs::rename(&log, dir.join("audit.jsonl.1")).unwrap();
    {
        let mut file = std::fs::File::create(&log).unwrap();
        writeln!(file, "{}", audit_header_line()).unwrap();
        for seq in 5..8 {
            writeln!(file, "{}", audit_prediction_line(seq)).unwrap();
        }
    }

    // After --idle-exit-ms of quiet the follower exits with a summary.
    let out = child.wait_with_output().expect("follower exits");
    assert!(out.status.success(), "follow run failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("replayed 8 predictions"),
        "5 pre-rotation + 3 post-rotation records: {stdout}"
    );
    assert!(stdout.contains("overall:"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_gen_corpus_report_is_parseable_json() {
    let dir = std::env::temp_dir().join(format!("noodle_cli_gc_{}", std::process::id()));
    let corpus_dir = dir.join("corpus");
    let report = dir.join("corpus_report.json");
    let out = noodle()
        .args([
            "gen-corpus",
            corpus_dir.to_str().unwrap(),
            "--tf",
            "6",
            "--ti",
            "4",
            "--seed",
            "7",
            "--quiet",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // --quiet suppresses the progress line.
    assert!(out.stdout.is_empty(), "{}", String::from_utf8_lossy(&out.stdout));

    let json = std::fs::read_to_string(&report).expect("report written");
    let value: serde_json::Value = serde_json::from_str(&json).expect("report is valid JSON");
    assert_eq!(value["command"], "gen-corpus");
    assert_eq!(value["corpus"]["total"], 10);
    assert_eq!(value["corpus"]["trojan_free"], 6);
    assert_eq!(value["corpus"]["trojan_infected"], 4);
    assert_eq!(value["counters"]["corpus.designs"], 10);
    let root = value["stages"]
        .as_array()
        .and_then(|s| s.iter().find(|s| s["name"] == "gen_corpus"))
        .expect("gen_corpus root stage");
    assert_stage_tree_consistent(root);

    std::fs::remove_dir_all(&dir).ok();
}

/// Parses a Chrome trace file and returns (metadata events, complete
/// events) — the two `ph` kinds the profiler emits.
fn split_trace_events(path: &Path) -> (Vec<serde_json::Value>, Vec<serde_json::Value>) {
    let json = std::fs::read_to_string(path).expect("trace file exists");
    let trace: serde_json::Value = serde_json::from_str(&json).expect("trace is valid JSON");
    let events = trace["traceEvents"].as_array().expect("traceEvents is an array");
    let meta = events.iter().filter(|e| e["ph"] == "M").cloned().collect();
    let complete = events.iter().filter(|e| e["ph"] == "X").cloned().collect();
    (meta, complete)
}

#[test]
fn cli_profile_round_trip() {
    let dir = std::env::temp_dir().join(format!("noodle_cli_prof_{}", std::process::id()));
    let corpus_dir = dir.join("corpus");
    let model = dir.join("model.json");

    let out = noodle()
        .args(["gen-corpus", corpus_dir.to_str().unwrap(), "--tf", "8", "--ti", "4", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // train with profiling + memory accounting + run report, on a 2-thread pool
    let trace = dir.join("train_trace.json");
    let report = dir.join("train_report.json");
    let out = noodle()
        .args([
            "train",
            model.to_str().unwrap(),
            "--fast",
            "--corpus-seed",
            "5",
            "--threads",
            "2",
            "--profile",
            trace.to_str().unwrap(),
            "--profile-mem",
            "--report",
            report.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace written to"), "{stderr}");

    // The trace names every timeline row and carries per-thread kernel
    // events with FLOP payloads.
    let (meta, complete) = split_trace_events(&trace);
    assert!(meta.iter().any(|e| e["name"] == "thread_name"), "trace has thread_name metadata rows");
    let tids: std::collections::BTreeSet<u64> =
        complete.iter().map(|e| e["tid"].as_u64().expect("tid is u64")).collect();
    // A 2-thread pool spawns one worker; the submitting (main) thread is
    // the second lane, so the trace has at least two timeline rows.
    let pool_rows = meta
        .iter()
        .filter(|e| e["args"]["name"].as_str().is_some_and(|n| n.starts_with("noodle-compute")))
        .count();
    assert!(pool_rows >= 1, "pool workers get named timeline rows: {meta:?}");
    assert!(tids.len() >= 2, "events from more than one thread: {tids:?}");
    assert!(
        complete
            .iter()
            .any(|e| e["cat"] == "kernel" && e["args"]["flops"].as_u64().unwrap_or(0) > 0),
        "kernel events carry FLOP payloads"
    );

    // The run report embeds the profile summary: per-thread utilization,
    // top spans, kernel roofline rows and (via --profile-mem) memory.
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
    let profile = &report["profile"];
    assert!(profile.is_object(), "report embeds a profile block: {report}");
    assert!(profile["peak_gflops"].as_f64().unwrap() > 0.0, "{profile}");
    assert!(!profile["threads"].as_array().unwrap().is_empty(), "{profile}");
    assert!(!profile["kernels"].as_array().unwrap().is_empty(), "{profile}");
    assert!(profile["mem"]["allocations"].as_u64().unwrap() > 0, "{profile}");
    assert!(report["gauges"]["compute.pool_utilization"].is_number(), "{report}");
    assert!(report["gauges"]["compute.queue_wait_frac"].is_number(), "{report}");
    assert!(report["histograms"].get("profile.kernel.gemm_us").is_some(), "{report}");

    // detect with --audit and --profile in the same invocation: each sink
    // writes through its own file handle, so both must come out intact.
    let mut paths: Vec<String> = std::fs::read_dir(&corpus_dir)
        .unwrap()
        .map(|e| e.unwrap().path().to_str().unwrap().to_string())
        .collect();
    paths.sort();
    let audit = dir.join("audit.jsonl");
    let detect_trace = dir.join("detect_trace.json");
    let out = noodle()
        .args(["detect", model.to_str().unwrap()])
        .args(&paths)
        .args(["--audit", audit.to_str().unwrap(), "--profile", detect_trace.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let log = std::fs::read_to_string(&audit).expect("audit log written");
    let lines: Vec<serde_json::Value> = log
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("audit line is valid JSON"))
        .collect();
    assert_eq!(lines.len(), paths.len() + 1, "header + one audit record per file");
    let (_, complete) = split_trace_events(&detect_trace);
    assert!(
        complete.iter().any(|e| e["name"] == "batch_infer"),
        "detect trace records micro-batch inference events"
    );

    // `noodle profile` re-renders the summary offline from the trace alone.
    let out = noodle().args(["profile", trace.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("thread"), "{stdout}");
    assert!(stdout.contains("gemm"), "{stdout}");
    assert!(stdout.contains("peak"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_profile_mem_requires_profile() {
    let out = noodle().args(["inspect", "x.v", "--profile-mem"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile-mem requires --profile"));
}

#[test]
fn cli_version_prints_workspace_version() {
    let out = noodle().arg("version").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim(), format!("noodle {}", env!("CARGO_PKG_VERSION")));
}

#[test]
fn cli_rejects_bad_trace_mode() {
    let out = noodle().args(["inspect", "x.v", "--trace=xml"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace expects"));
}

#[test]
fn cli_reports_errors_cleanly() {
    // Unknown command.
    let out = noodle().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing model file.
    let out = noodle().args(["detect", "/nonexistent/model.json", "x.v"]).output().unwrap();
    assert!(!out.status.success());

    // A pipeline failure prints its full cause chain.
    let bad = std::env::temp_dir().join(format!("noodle_bad_{}.v", std::process::id()));
    std::fs::write(&bad, "module broken(; endmodule").unwrap();
    let out = noodle().args(["inspect", bad.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error: cannot inspect"), "{stderr}");
    assert!(stderr.contains("caused by:"), "{stderr}");
    std::fs::remove_file(&bad).ok();

    // Help succeeds.
    let out = noodle().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
