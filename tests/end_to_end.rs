//! End-to-end integration tests spanning every crate: corpus generation →
//! parsing → modality extraction → GAN amplification → CNN training →
//! conformal fusion → detection.

use noodle::{
    generate_corpus, CorpusConfig, FusionStrategy, Label, MultimodalDataset, NoodleConfig,
    NoodleDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_corpus(seed: u64) -> Vec<noodle::Benchmark> {
    generate_corpus(&CorpusConfig { trojan_free: 16, trojan_infected: 8, seed })
}

fn fit(seed: u64) -> NoodleDetector {
    let dataset = MultimodalDataset::from_benchmarks(&small_corpus(seed)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).unwrap()
}

#[test]
fn pipeline_runs_end_to_end() {
    let det = fit(1);
    let eval = det.evaluation();
    assert!(eval.test_labels.len() >= 4);
    for strategy in FusionStrategy::ALL {
        let b = eval.brier_of(strategy);
        assert!((0.0..=1.0).contains(&b), "{strategy:?} brier {b}");
        assert_eq!(eval.probs_of(strategy).len(), eval.test_labels.len());
    }
}

#[test]
fn pipeline_is_deterministic_under_fixed_seed() {
    let a = fit(7);
    let b = fit(7);
    assert_eq!(a.evaluation().brier, b.evaluation().brier);
    assert_eq!(a.evaluation().late_probs, b.evaluation().late_probs);
    assert_eq!(a.winner(), b.winner());
}

#[test]
fn pipeline_varies_across_seeds() {
    let a = fit(1);
    let b = fit(2);
    assert_ne!(a.evaluation().late_probs, b.evaluation().late_probs);
}

#[test]
fn detector_beats_coin_flipping() {
    // The fast config is deliberately tiny, so only require clearly-better-
    // than-chance Brier on the winner (a coin flip scores 0.25).
    let det = fit(3);
    let winner_brier = det.evaluation().brier_of(det.winner());
    assert!(winner_brier < 0.25, "winner Brier {winner_brier} not better than chance");
}

#[test]
fn detection_probabilities_track_labels_on_average() {
    let mut det = fit(4);
    let probes = generate_corpus(&CorpusConfig { trojan_free: 6, trojan_infected: 6, seed: 555 });
    let mut infected_mean = 0.0;
    let mut clean_mean = 0.0;
    for bench in &probes {
        let p = det.detect(&bench.source).unwrap().probability_infected;
        if bench.label == Label::TrojanInfected {
            infected_mean += p / 6.0;
        } else {
            clean_mean += p / 6.0;
        }
    }
    assert!(
        infected_mean > clean_mean,
        "mean p(TI): infected {infected_mean:.3} vs clean {clean_mean:.3}"
    );
}

#[test]
fn late_fusion_p_values_are_valid() {
    let det = fit(5);
    for pv in &det.evaluation().late_p_values {
        for &p in pv {
            assert!(p > 0.0 && p <= 1.0, "p-value {p} outside (0, 1]");
        }
    }
}

#[test]
fn every_trojan_spec_flows_through_detection() {
    let mut det = fit(6);
    let mut rng = StdRng::seed_from_u64(88);
    for (i, spec) in noodle::TrojanSpec::all().into_iter().enumerate() {
        let family =
            noodle::bench_gen::CircuitFamily::ALL[i % noodle::bench_gen::CircuitFamily::ALL.len()];
        let mut circuit =
            noodle::bench_gen::families::generate(family, &format!("spec_{i}"), &mut rng);
        noodle::bench_gen::insert_trojan(&mut circuit, spec, &mut rng);
        let source = noodle::verilog::print_module(&circuit.module);
        let verdict = det.detect(&source).unwrap();
        assert_eq!(verdict.prediction.p_values().len(), 2);
    }
}
