//! Missing-modality detection: classify designs for which only one
//! modality is available, imputing the other with the conditional GAN
//! (Algorithm 2, step 3 of the paper).
//!
//! A practical scenario: a vendor ships only the pre-extracted
//! code-branching feature CSV (tabular modality) without the RTL, so no
//! graph can be built — or conversely, only a netlist-derived graph is
//! available. The detector imputes the missing modality and still produces
//! a calibrated late-fusion decision; this example compares its accuracy
//! against full-multimodal detection on the same designs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example missing_modality
//! ```

use noodle::{
    extract_modalities, generate_corpus, CorpusConfig, Label, MultimodalDataset, NoodleConfig,
    NoodleDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = generate_corpus(&CorpusConfig::default());
    let dataset = MultimodalDataset::from_benchmarks(&corpus)?;
    let mut rng = StdRng::seed_from_u64(3);
    // `train_imputers` is on by default: the fit also trains graph→tabular
    // and tabular→graph conditional GANs on the training split.
    let config = NoodleConfig { train_imputers: true, ..NoodleConfig::default() };
    let mut detector = NoodleDetector::fit(&dataset, &config, &mut rng)?;
    println!("detector fitted (winner = {:?})\n", detector.winner());

    let probes = generate_corpus(&CorpusConfig { trojan_free: 10, trojan_infected: 5, seed: 1234 });

    let mut correct = [0usize; 3]; // full, graph-only, tabular-only
    println!(
        "{:<24} {:<9} {:<14} {:<16} {:<16}",
        "design", "truth", "full", "graph-only", "tabular-only"
    );
    for bench in &probes {
        let (graph, tabular) = extract_modalities(&bench.source)?;
        let truth = bench.label == Label::TrojanInfected;

        let full = detector.detect_features(Some(&graph), Some(&tabular))?;
        let graph_only = detector.detect_features(Some(&graph), None)?;
        let tabular_only = detector.detect_features(None, Some(&tabular))?;
        assert!(graph_only.imputed_modality && tabular_only.imputed_modality);

        for (slot, d) in [&full, &graph_only, &tabular_only].iter().enumerate() {
            if d.infected == truth {
                correct[slot] += 1;
            }
        }
        let show = |d: &noodle::Detection| {
            format!(
                "{} ({:.2})",
                if d.infected { "infected" } else { "clean" },
                d.probability_infected
            )
        };
        println!(
            "{:<24} {:<9} {:<14} {:<16} {:<16}",
            bench.name,
            if truth { "INFECTED" } else { "clean" },
            show(&full),
            show(&graph_only),
            show(&tabular_only),
        );
    }

    let n = probes.len();
    println!("\naccuracy with both modalities : {}/{n}", correct[0]);
    println!("accuracy, tabular imputed     : {}/{n}", correct[1]);
    println!("accuracy, graph imputed       : {}/{n}", correct[2]);
    println!(
        "\nimputation degrades gracefully: the GAN reconstruction preserves the \
         joint structure well enough for the late fusion to stay usable."
    );
    Ok(())
}
