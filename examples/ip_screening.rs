//! IP-vendor screening: a risk-aware acceptance gate for third-party IP.
//!
//! This models the paper's motivating scenario — a fabless integrator
//! receiving IP cores from untrusted vendors. Every incoming design is
//! classified with conformal uncertainty; designs whose prediction region
//! is uncertain (or empty) at the chosen significance are routed to manual
//! review rather than silently accepted or rejected, and the gate reports
//! its triage statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ip_screening
//! ```

use noodle::{
    generate_corpus, CorpusConfig, Label, MultimodalDataset, NoodleConfig, NoodleDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Default)]
struct Triage {
    accepted: usize,
    rejected: usize,
    manual_review: usize,
    missed_trojans: usize,
    false_alarms: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the gate on the in-house corpus.
    let train_corpus = generate_corpus(&CorpusConfig::default());
    let dataset = MultimodalDataset::from_benchmarks(&train_corpus)?;
    let mut rng = StdRng::seed_from_u64(7);
    let config = NoodleConfig { significance: 0.15, ..NoodleConfig::default() };
    let mut detector = NoodleDetector::fit(&dataset, &config, &mut rng)?;
    println!(
        "gate trained; winner = {:?}, late-fusion Brier = {:.4}\n",
        detector.winner(),
        detector.evaluation().brier_of(noodle::FusionStrategy::LateFusion)
    );

    // A delivery of 30 vendor IP cores, 20% secretly Trojan-infected.
    let delivery =
        generate_corpus(&CorpusConfig { trojan_free: 24, trojan_infected: 6, seed: 20_260_704 });

    let mut triage = Triage::default();
    println!("{:<24} {:<10} {:<9} {:>6}  action", "design", "truth", "verdict", "p(TI)");
    for bench in &delivery {
        let verdict = detector.detect(&bench.source)?;
        let truly_infected = bench.label == Label::TrojanInfected;
        let action = if verdict.uncertain || verdict.region.is_empty() {
            triage.manual_review += 1;
            "MANUAL REVIEW"
        } else if verdict.infected {
            triage.rejected += 1;
            if !truly_infected {
                triage.false_alarms += 1;
            }
            "reject"
        } else {
            triage.accepted += 1;
            if truly_infected {
                triage.missed_trojans += 1;
            }
            "accept"
        };
        println!(
            "{:<24} {:<10} {:<9} {:>6.3}  {action}",
            bench.name,
            if truly_infected { "INFECTED" } else { "clean" },
            if verdict.infected { "infected" } else { "clean" },
            verdict.probability_infected,
        );
    }

    println!("\ntriage summary over {} deliveries:", delivery.len());
    println!("  accepted automatically : {}", triage.accepted);
    println!("  rejected automatically : {}", triage.rejected);
    println!("  routed to manual review: {}", triage.manual_review);
    println!("  missed Trojans (auto-accepted): {}", triage.missed_trojans);
    println!("  false alarms (auto-rejected clean): {}", triage.false_alarms);
    println!(
        "\nthe conformal region turns low-confidence calls into manual reviews \
         instead of silent errors — the paper's risk-aware decision-making."
    );
    Ok(())
}
