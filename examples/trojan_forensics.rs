//! Trojan forensics: after NOODLE flags a suspicious design, confirm the
//! verdict *dynamically* with the built-in RTL simulator — differential
//! testing against a known-good reference plus a brute-force hunt for the
//! trigger condition.
//!
//! This mirrors how a real incident response would proceed: the ML verdict
//! is probabilistic; taping out (or rejecting a vendor) wants concrete
//! evidence. The uncertainty-aware detector tells you *where to spend
//! simulation effort*.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example trojan_forensics
//! ```

use noodle::bench_gen::{
    families, insert_trojan, CircuitFamily, PayloadKind, TriggerKind, TrojanSpec,
};
use noodle::verilog::{parse, print_module, PortDirection, Simulator};
use noodle::{generate_corpus, CorpusConfig, MultimodalDataset, NoodleConfig, NoodleDetector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the detector as usual.
    let corpus = generate_corpus(&CorpusConfig::default());
    let dataset = MultimodalDataset::from_benchmarks(&corpus)?;
    let mut rng = StdRng::seed_from_u64(5);
    let mut detector = NoodleDetector::fit(&dataset, &NoodleConfig::default(), &mut rng)?;

    // 2. A vendor delivers a "UART transmitter" that secretly leaks its
    //    shift register when a magic byte appears on the data bus.
    let mut gen_rng = StdRng::seed_from_u64(31_415);
    let golden = families::generate(CircuitFamily::UartTx, "vendor_uart", &mut gen_rng);
    let mut delivered = golden.clone();
    let spec = TrojanSpec { trigger: TriggerKind::MagicValue, payload: PayloadKind::Corrupt };
    let secret_descriptor = insert_trojan(&mut delivered, spec, &mut gen_rng);
    let delivered_src = print_module(&delivered.module);
    let golden_src = print_module(&golden.module);

    // 3. Static verdict.
    let verdict = detector.detect(&delivered_src)?;
    println!(
        "NOODLE verdict: {} (p(TI) = {:.3}, credibility = {:.2}{})",
        if verdict.infected { "TROJAN SUSPECTED" } else { "clean" },
        verdict.probability_infected,
        verdict.credibility,
        if verdict.uncertain { ", UNCERTAIN" } else { "" },
    );

    // 4. Dynamic confirmation: differential simulation against the golden
    //    model while sweeping the 8-bit data bus for a trigger.
    println!("\ndifferential trigger hunt over the data bus:");
    let golden_file = parse(&golden_src)?;
    let delivered_file = parse(&delivered_src)?;
    let inputs: Vec<String> = golden_file.modules[0]
        .resolved_ports()
        .iter()
        .filter(|p| p.direction == PortDirection::Input && p.name != "clk")
        .map(|p| p.name.clone())
        .collect();

    let mut found = Vec::new();
    for candidate in 0u128..256 {
        let mut reference = Simulator::new(&golden_file.modules[0])?;
        let mut suspect = Simulator::new(&delivered_file.modules[0])?;
        for sim in [&mut reference, &mut suspect] {
            sim.set("rst", 1)?;
            sim.step("clk")?;
            sim.set("rst", 0)?;
        }
        let mut probe_rng = StdRng::seed_from_u64(candidate as u64);
        for _ in 0..6 {
            for input in &inputs {
                let value = if input == "data" {
                    candidate
                } else if input == "rst" {
                    0
                } else {
                    probe_rng.random_range(0..2u128)
                };
                reference.set(input, value)?;
                suspect.set(input, value)?;
            }
            reference.step("clk")?;
            suspect.step("clk")?;
            if reference.get("tx") != suspect.get("tx")
                || reference.get("busy") != suspect.get("busy")
            {
                found.push(candidate);
                break;
            }
        }
    }

    match found.as_slice() {
        [] => println!("  no divergence found in 256 × 6 cycles — verdict unconfirmed"),
        values => {
            println!("  divergence confirmed for data values: {values:?}");
            println!(
                "  ground truth: trigger on `{}` == {:?} hijacking `{}`",
                secret_descriptor.trigger_source,
                secret_descriptor.trigger_values,
                secret_descriptor.hooked_output,
            );
        }
    }
    println!(
        "\nworkflow: the uncertainty-aware static detector prioritizes suspects; \
         differential simulation produces the actionable proof."
    );
    Ok(())
}
