//! Quickstart: generate a TrustHub-like corpus, fit NOODLE, and classify a
//! handful of unseen designs with calibrated uncertainty.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noodle::{
    generate_corpus, CorpusConfig, Label, MultimodalDataset, NoodleConfig, NoodleDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small, imbalanced corpus mirroring the TrustHub RTL data regime.
    let corpus = generate_corpus(&CorpusConfig::default());
    println!(
        "corpus: {} designs ({} Trojan-free, {} Trojan-infected)",
        corpus.len(),
        corpus.iter().filter(|b| b.label == Label::TrojanFree).count(),
        corpus.iter().filter(|b| b.label == Label::TrojanInfected).count(),
    );

    // 2. Extract both modalities from every design.
    let dataset = MultimodalDataset::from_benchmarks(&corpus)?;

    // 3. Fit the full pipeline: GAN amplification, three CNNs, Mondrian ICP
    //    calibration, early/late fusion, winner selection by Brier score.
    let mut rng = StdRng::seed_from_u64(42);
    let mut detector = NoodleDetector::fit(&dataset, &NoodleConfig::default(), &mut rng)?;

    let eval = detector.evaluation();
    println!("\nBrier scores on the held-out split:");
    for (strategy, brier) in noodle::FusionStrategy::ALL.iter().zip(&eval.brier) {
        println!("  {:<45} {brier:.4}", strategy.label());
    }
    println!("winning fusion strategy: {:?}", detector.winner());

    // 4. Classify unseen designs (fresh seed => disjoint from training).
    let probes = generate_corpus(&CorpusConfig { trojan_free: 3, trojan_infected: 3, seed: 777 });
    println!("\nscreening {} unseen designs:", probes.len());
    for bench in &probes {
        let verdict = detector.detect(&bench.source)?;
        let flag = if verdict.uncertain {
            "[UNCERTAIN — inspect manually]"
        } else if verdict.region.is_empty() {
            // Every class rejected at the significance level: the design is
            // unlike anything in the calibration set — treat as anomalous.
            "[ANOMALOUS — outside calibration distribution]"
        } else {
            ""
        };
        println!(
            "  {:<22} truth={:<15?} verdict={:<8} p(TI)={:.3} credibility={:.2} {flag}",
            bench.name,
            bench.label,
            if verdict.infected { "INFECTED" } else { "clean" },
            verdict.probability_infected,
            verdict.credibility,
        );
    }
    Ok(())
}
