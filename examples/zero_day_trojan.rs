//! Zero-day Trojan study: train with one Trojan *payload family held out
//! entirely*, then test on designs infected with the unseen payload.
//!
//! The paper motivates GAN amplification and uncertainty quantification by
//! the difficulty of detecting *zero-day* Trojans that are absent from the
//! training distribution. This example measures (a) how often the detector
//! still flags the unseen family and (b) whether the conformal machinery
//! does its job: unseen-family designs should show depressed credibility /
//! more uncertain regions than in-distribution designs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example zero_day_trojan
//! ```

use noodle::bench_gen::{
    generate_corpus, insert_trojan, CircuitFamily, CorpusConfig, PayloadKind, TriggerKind,
    TrojanSpec,
};
use noodle::verilog::print_module;
use noodle::{Label, MultimodalDataset, NoodleConfig, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Training corpus: clean designs + Trojans *without* leakage
    //    payloads (leakage is our zero-day family).
    let mut rng = StdRng::seed_from_u64(99);
    let clean = generate_corpus(&CorpusConfig { trojan_free: 28, trojan_infected: 0, seed: 1 });
    let mut sources: Vec<(String, String, usize)> =
        clean.iter().map(|b| (b.name.clone(), b.source.clone(), b.label.index())).collect();

    let known_specs: Vec<TrojanSpec> =
        TrojanSpec::all().into_iter().filter(|s| s.payload != PayloadKind::Leak).collect();
    for (i, spec) in known_specs.iter().cycle().take(12).enumerate() {
        let family = CircuitFamily::ALL[(i * 7 + 3) % CircuitFamily::ALL.len()];
        let name = format!("known_ti_{i:02}");
        let mut circuit = noodle::bench_gen::families::generate(family, &name, &mut rng);
        insert_trojan(&mut circuit, *spec, &mut rng);
        sources.push((name, print_module(&circuit.module), 1));
    }

    let triples: Vec<(&str, &str, usize)> =
        sources.iter().map(|(n, s, l)| (n.as_str(), s.as_str(), *l)).collect();
    let dataset = MultimodalDataset::from_sources(&triples)?;
    let mut detector = NoodleDetector::fit(&dataset, &NoodleConfig::default(), &mut rng)?;
    println!("trained without any leakage-payload Trojan (the zero-day family)\n");

    // 2. Zero-day test set: leakage Trojans on circuits with secrets.
    let zero_day_specs = [
        TrojanSpec { trigger: TriggerKind::MagicValue, payload: PayloadKind::Leak },
        TrojanSpec { trigger: TriggerKind::TimeBomb, payload: PayloadKind::Leak },
        TrojanSpec { trigger: TriggerKind::Sequence, payload: PayloadKind::Leak },
    ];
    let victim_families = [
        CircuitFamily::CryptoRound,
        CircuitFamily::UartTx,
        CircuitFamily::Lfsr,
        CircuitFamily::SpiShift,
    ];
    let mut flagged = 0usize;
    let mut uncertain = 0usize;
    let mut zero_day_credibility = Vec::new();
    println!("{:<26} {:<28} verdict  credibility", "victim", "zero-day spec");
    let mut n_zero_day = 0usize;
    for (i, family) in victim_families.iter().cycle().take(12).enumerate() {
        let spec = zero_day_specs[i % zero_day_specs.len()];
        let name = format!("zeroday_{i:02}");
        let mut circuit = noodle::bench_gen::families::generate(*family, &name, &mut rng);
        let desc = insert_trojan(&mut circuit, spec, &mut rng);
        if desc.payload != PayloadKind::Leak {
            continue; // family had no secret to leak; skip
        }
        n_zero_day += 1;
        let verdict = detector.detect(&print_module(&circuit.module))?;
        if verdict.infected {
            flagged += 1;
        }
        if verdict.uncertain {
            uncertain += 1;
        }
        zero_day_credibility.push(verdict.credibility);
        println!(
            "{:<26} {:<28} {:<8} {:.3}{}",
            name,
            format!("{:?}+{:?}", desc.trigger, desc.payload),
            if verdict.infected { "INFECTED" } else { "clean" },
            verdict.credibility,
            if verdict.uncertain { "  [uncertain]" } else { "" },
        );
    }

    // 3. Baseline: in-distribution clean designs for comparison.
    let control =
        generate_corpus(&CorpusConfig { trojan_free: 12, trojan_infected: 0, seed: 31_337 });
    let mut control_credibility = Vec::new();
    for bench in control.iter().filter(|b| b.label == Label::TrojanFree) {
        let verdict = detector.detect(&bench.source)?;
        control_credibility.push(verdict.credibility);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    println!("\nzero-day detection rate : {flagged}/{n_zero_day}");
    println!("uncertain regions       : {uncertain}/{n_zero_day}");
    println!(
        "mean credibility  zero-day={:.3}  in-distribution clean={:.3}",
        mean(&zero_day_credibility),
        mean(&control_credibility)
    );
    println!(
        "\nlower credibility on the unseen family is the uncertainty signal a \
         risk-aware flow uses to escalate zero-day suspects."
    );
    Ok(())
}
