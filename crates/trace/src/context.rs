//! Trace-context minting and the ambient (thread-local) context slot.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A request-scoped causal identity: `trace_id` names the whole request
/// (one `detect` call, or one design inside `detect_batch`), `span_id`
/// names its root span. `Copy` and two words wide, so it can ride inside
/// pool jobs and fixed-size ring slots for free.
///
/// Ids are never zero — zero is the "no context" sentinel in compact
/// encodings (profiler events, flight slots).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the request end to end; rendered as 16 lowercase hex
    /// digits in audit records, Chrome traces and `/debug/trace/<id>`.
    pub trace_id: u64,
    /// Identifies the request's root span within the trace.
    pub span_id: u64,
}

/// SplitMix64 finalizer: a cheap, high-quality bijective mix. Used to
/// turn a sequential counter into well-spread ids without any RNG state.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

static NEXT: AtomicU64 = AtomicU64::new(1);
static SEED: OnceLock<u64> = OnceLock::new();

fn seed() -> u64 {
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        splitmix64(nanos ^ (u64::from(std::process::id()) << 32))
    })
}

impl TraceContext {
    /// Mints a fresh process-unique context: one relaxed `fetch_add` plus
    /// a SplitMix64 finalize — allocation-free and safe on any thread.
    pub fn mint() -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let trace_id = splitmix64(seed() ^ n) | 1;
        TraceContext { trace_id, span_id: splitmix64(trace_id) | 1 }
    }

    /// Deterministically derives the context for sub-request `index`
    /// (e.g. design *i* of a `detect_batch` call): a pure function of
    /// `(self, index)`, so every pipeline stage that knows the batch base
    /// and the design's position computes the *same* id — regardless of
    /// which pool thread runs the stage or how many threads exist.
    pub fn derived(self, index: u64) -> Self {
        let trace_id = splitmix64(self.trace_id ^ splitmix64(index.wrapping_add(1))) | 1;
        TraceContext { trace_id, span_id: splitmix64(trace_id) | 1 }
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context active on this thread, if any. One thread-local read.
#[inline]
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Replaces the ambient context, returning the previous one. The
/// compute-pool worker loop uses this pair directly (install the job's
/// context, run, restore); everyone else should prefer the RAII
/// [`set_current`].
#[inline]
pub fn swap_current(ctx: Option<TraceContext>) -> Option<TraceContext> {
    CURRENT.with(|c| c.replace(ctx))
}

/// Installs `ctx` as the ambient context until the returned guard drops,
/// then restores whatever was active before (contexts nest).
#[must_use = "dropping the guard immediately restores the previous context"]
pub fn set_current(ctx: TraceContext) -> ContextGuard {
    ContextGuard { prev: swap_current(Some(ctx)), _not_send: PhantomData }
}

/// RAII restorer for [`set_current`]. Not `Send`: the guard must drop on
/// the thread whose slot it patched.
pub struct ContextGuard {
    prev: Option<TraceContext>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        swap_current(self.prev.take());
    }
}

/// Renders a trace (or span) id as 16 lowercase hex digits — the form
/// audit records, Chrome traces and `/debug/trace/<id>` all use, so a
/// single grep joins them.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses the 16-hex-digit form back to an id. Lenient about length
/// (1–16 digits) so hand-typed ids work; returns `None` for empty,
/// overlong or non-hex input.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let ctx = TraceContext::mint();
            assert_ne!(ctx.trace_id, 0);
            assert_ne!(ctx.span_id, 0);
            assert!(seen.insert(ctx.trace_id), "duplicate trace id");
        }
    }

    #[test]
    fn derived_is_deterministic_and_index_sensitive() {
        let base = TraceContext::mint();
        assert_eq!(base.derived(3), base.derived(3));
        assert_ne!(base.derived(3).trace_id, base.derived(4).trace_id);
        assert_ne!(base.derived(0).trace_id, base.trace_id);
    }

    #[test]
    fn ambient_slot_nests_and_restores() {
        assert_eq!(current(), None);
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        {
            let _ga = set_current(a);
            assert_eq!(current(), Some(a));
            {
                let _gb = set_current(b);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn hex_form_round_trips() {
        let ctx = TraceContext::mint();
        let s = format_trace_id(ctx.trace_id);
        assert_eq!(s.len(), 16);
        assert_eq!(parse_trace_id(&s), Some(ctx.trace_id));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zzzz"), None);
        assert_eq!(parse_trace_id("ff"), Some(0xff));
    }
}
