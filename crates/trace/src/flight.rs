//! The flight recorder: a bounded, lock-free, always-on ring of recent
//! structured events.
//!
//! Think of it as a black box for the detector: span opens/closes,
//! monitor health transitions and per-request summaries are written into
//! a fixed-capacity ring as fixed-size `Copy` slots. Writers never block
//! and never allocate (after the one-time lazy ring allocation); readers
//! ([`flight_snapshot`]) reconstruct the most recent events in order.
//! When `StreamingMonitors` trips into Alert — or on demand via
//! `GET /debug/flight` — the ring is snapshotted into a self-contained
//! diagnostics bundle.
//!
//! Concurrency model: a global atomic head assigns each write a unique
//! monotone sequence number `n`; the writer publishes into slot
//! `n % capacity` under a per-slot seqlock (`2n+1` while writing,
//! `2n+2` when done). Readers copy the slot and accept it only if the
//! sequence was even and unchanged across the copy, so torn slots are
//! skipped, never surfaced. Two writers can only collide on one slot if
//! the ring wraps completely during a single ~80-byte write — accepted
//! as diagnostic-grade.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::{format_trace_id, now_ns};

/// Maximum bytes of an event name retained in a ring slot; longer names
/// are truncated (the ring stores fixed-size `Copy` slots only).
pub const FLIGHT_NAME_CAP: usize = 40;

const DEFAULT_CAPACITY: usize = 4096;

/// What kind of moment a flight event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FlightKind {
    /// A telemetry span opened (`name` = span name).
    SpanOpen,
    /// A telemetry span closed (`a` = duration in ns).
    SpanClose,
    /// The streaming monitors' overall health changed
    /// (`a` = from, `b` = to; 0 healthy, 1 warn, 2 alert).
    MonitorTransition,
    /// A detect request completed (`name` = design, `a` = request index
    /// within the call, `b` = 1 if flagged infected).
    Request,
}

#[derive(Clone, Copy)]
struct RawEvent {
    kind: FlightKind,
    trace_id: u64,
    span_id: u64,
    t_ns: u64,
    a: u64,
    b: u64,
    name: [u8; FLIGHT_NAME_CAP],
    name_len: u8,
}

const EMPTY_RAW: RawEvent = RawEvent {
    kind: FlightKind::SpanOpen,
    trace_id: 0,
    span_id: 0,
    t_ns: 0,
    a: 0,
    b: 0,
    name: [0; FLIGHT_NAME_CAP],
    name_len: 0,
};

struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<RawEvent>,
}

// The UnsafeCell is guarded by the per-slot seqlock protocol above.
unsafe impl Sync for Slot {}

struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

static RING: OnceLock<Ring> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(true);

fn ring() -> &'static Ring {
    RING.get_or_init(|| {
        let capacity = std::env::var("NOODLE_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        let slots = (0..capacity)
            .map(|_| Slot { seq: AtomicU64::new(0), data: UnsafeCell::new(EMPTY_RAW) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring { slots, head: AtomicU64::new(0) }
    })
}

/// Whether the flight recorder is collecting. On by default — the whole
/// point is to already have the history when something goes wrong.
#[inline]
pub fn flight_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off (the ring itself is retained either way).
pub fn set_flight_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Records one event into the ring. Never blocks; after the ring's
/// one-time lazy allocation this is allocation-free: one `fetch_add`,
/// two release stores and a fixed-size slot write. `name` is truncated
/// to [`FLIGHT_NAME_CAP`] bytes.
pub fn flight_record(kind: FlightKind, trace_id: u64, span_id: u64, a: u64, b: u64, name: &str) {
    if !flight_enabled() {
        return;
    }
    let ring = ring();
    let n = ring.head.fetch_add(1, Ordering::Relaxed);
    let slot = &ring.slots[(n % ring.slots.len() as u64) as usize];
    let mut raw = RawEvent {
        kind,
        trace_id,
        span_id,
        t_ns: now_ns(),
        a,
        b,
        name: [0; FLIGHT_NAME_CAP],
        name_len: 0,
    };
    let bytes = name.as_bytes();
    let take = bytes.len().min(FLIGHT_NAME_CAP);
    raw.name[..take].copy_from_slice(&bytes[..take]);
    raw.name_len = take as u8;
    slot.seq.store(2 * n + 1, Ordering::Release);
    // SAFETY: the odd seq marks the slot as being written; readers that
    // observe an odd or changed seq discard their copy.
    unsafe { *slot.data.get() = raw };
    slot.seq.store(2 * n + 2, Ordering::Release);
}

/// One event as drained from the ring: the serializable, human-readable
/// form used in flight bundles and `/debug/trace/<id>`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightRecordEvent {
    /// Global write sequence number (monotone; gaps mean overwritten).
    pub seq: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Owning trace id as 16 hex digits; empty if the event had no
    /// ambient context.
    #[serde(default)]
    pub trace_id: String,
    /// Root span id as 16 hex digits; empty if none.
    #[serde(default)]
    pub span_id: String,
    /// Nanoseconds since the process [`crate::epoch`].
    pub t_ns: u64,
    /// Event name (span name, design name, monitor name...).
    pub name: String,
    /// Kind-specific payload (see [`FlightKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`FlightKind`]).
    pub b: u64,
}

/// Snapshots the ring: the most recent events, oldest first. Torn or
/// never-written slots are skipped. Safe to call concurrently with
/// writers; the result is a consistent set of fully-written events.
pub fn flight_snapshot() -> Vec<FlightRecordEvent> {
    let Some(ring) = RING.get() else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(ring.slots.len());
    for slot in ring.slots.iter() {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            continue;
        }
        // SAFETY: we copy the slot and then re-check the seqlock; a torn
        // copy is detected by the seq having moved and is discarded.
        let raw = unsafe { *slot.data.get() };
        if slot.seq.load(Ordering::Acquire) != s1 {
            continue;
        }
        let n = s1 / 2 - 1;
        let name =
            std::str::from_utf8(&raw.name[..raw.name_len as usize]).unwrap_or("").to_string();
        out.push(FlightRecordEvent {
            seq: n,
            kind: raw.kind,
            trace_id: if raw.trace_id == 0 { String::new() } else { format_trace_id(raw.trace_id) },
            span_id: if raw.span_id == 0 { String::new() } else { format_trace_id(raw.span_id) },
            t_ns: raw.t_ns,
            name,
            a: raw.a,
            b: raw.b,
        });
    }
    out.sort_by_key(|e| e.seq);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global, so these tests share it; they only
    // assert properties that hold regardless of interleaving.

    #[test]
    fn recorded_events_come_back_in_order_with_payloads() {
        let ctx = crate::TraceContext::mint();
        flight_record(FlightKind::Request, ctx.trace_id, ctx.span_id, 7, 1, "uart_007");
        flight_record(FlightKind::SpanClose, ctx.trace_id, ctx.span_id, 123, 0, "detect");
        let snap = flight_snapshot();
        let mine: Vec<_> =
            snap.iter().filter(|e| e.trace_id == format_trace_id(ctx.trace_id)).collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].seq < mine[1].seq);
        assert_eq!(mine[0].kind, FlightKind::Request);
        assert_eq!(mine[0].name, "uart_007");
        assert_eq!(mine[0].a, 7);
        assert_eq!(mine[1].kind, FlightKind::SpanClose);
        assert_eq!(mine[1].a, 123);
    }

    #[test]
    fn long_names_are_truncated_not_dropped() {
        let ctx = crate::TraceContext::mint();
        let long = "x".repeat(FLIGHT_NAME_CAP + 50);
        flight_record(FlightKind::SpanOpen, ctx.trace_id, 0, 0, 0, &long);
        let snap = flight_snapshot();
        let mine =
            snap.iter().find(|e| e.trace_id == format_trace_id(ctx.trace_id)).expect("recorded");
        assert_eq!(mine.name.len(), FLIGHT_NAME_CAP);
    }

    #[test]
    fn disabling_suppresses_writes() {
        let ctx = crate::TraceContext::mint();
        set_flight_enabled(false);
        flight_record(FlightKind::SpanOpen, ctx.trace_id, 0, 0, 0, "hidden");
        set_flight_enabled(true);
        let snap = flight_snapshot();
        assert!(!snap.iter().any(|e| e.trace_id == format_trace_id(ctx.trace_id)));
    }

    #[test]
    fn events_serialize_round_trip() {
        let ctx = crate::TraceContext::mint();
        flight_record(FlightKind::MonitorTransition, ctx.trace_id, 0, 0, 2, "overall");
        let snap = flight_snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Vec<FlightRecordEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert!(json.contains("monitor_transition"));
    }
}
