//! # noodle-trace
//!
//! Request-scoped causal tracing for the NOODLE pipeline, plus an
//! always-on **flight recorder**.
//!
//! * [`TraceContext`] — a cheap `Copy` pair of (trace id, span id) minted
//!   once per detect request (or derived per design inside a batch) and
//!   carried through every layer: telemetry spans, profiler kernel
//!   events, audit records and compute-pool child jobs all stamp the
//!   ambient context, so one 16-hex-digit id joins a design's audit
//!   record, its spans and its kernels across every output.
//! * **Ambient slot** — [`current`] / [`set_current`] expose the active
//!   context through a thread-local `Cell`. The `noodle-compute` pool
//!   captures the submitter's context at job submission and installs it
//!   on workers around each chunk, so causality survives the pool
//!   boundary without touching chunk geometry (the determinism contract
//!   is untouched: contexts ride alongside chunks, they never influence
//!   them).
//! * **Flight recorder** — a bounded lock-free ring of recent structured
//!   events ([`flight_record`] / [`flight_snapshot`]): span open/close,
//!   monitor transitions, per-request summaries. Writers pay two atomic
//!   stores and a fixed-size `Copy` slot write — no locks, no allocation
//!   after the ring exists — so it can stay on for the life of the
//!   process and be dumped the moment something goes wrong.
//!
//! This crate is a leaf: every other noodle crate may depend on it. It
//! also owns the process-wide monotonic [`epoch`] that `noodle-profile`
//! and `noodle-telemetry` share, so flight events, profiler events and
//! spans all live on one timeline.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod context;
mod flight;

pub use context::{
    current, format_trace_id, parse_trace_id, set_current, swap_current, ContextGuard, TraceContext,
};
pub use flight::{
    flight_enabled, flight_record, flight_snapshot, set_flight_enabled, FlightKind,
    FlightRecordEvent, FLIGHT_NAME_CAP,
};

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process-wide monotonic time origin. First touch pins it;
/// `noodle-profile::epoch` delegates here so spans, kernel events and
/// flight events share one timeline.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the [`epoch`]. Allocation-free.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}
