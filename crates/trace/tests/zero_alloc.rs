//! Proves the flight recorder's overhead budget: after the one-time lazy
//! ring allocation, recording events, minting contexts and swapping the
//! ambient slot perform zero heap allocations — and the disabled path is
//! likewise free. This is what lets the recorder stay always-on.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use noodle_trace::{flight_record, set_flight_enabled, FlightKind, TraceContext};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn warm_and_disabled_flight_paths_allocate_nothing() {
    // Warm up: allocate the ring, pin the epoch, seed the id generator.
    let warm = TraceContext::mint();
    flight_record(FlightKind::SpanOpen, warm.trace_id, warm.span_id, 0, 0, "warmup");

    // Warm (enabled) path: mint + ambient swap + record, all alloc-free.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1000u64 {
        let ctx = TraceContext::mint();
        let child = ctx.derived(i);
        let _guard = noodle_trace::set_current(child);
        debug_assert_eq!(noodle_trace::current(), Some(child));
        flight_record(
            FlightKind::Request,
            child.trace_id,
            child.span_id,
            i,
            0,
            "design_under_test",
        );
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "warm flight-recorder path must not allocate");

    // Disabled path: one relaxed load, nothing else.
    set_flight_enabled(false);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..1000u64 {
        flight_record(FlightKind::SpanOpen, i, 0, 0, 0, "suppressed");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    set_flight_enabled(true);
    assert_eq!(after - before, 0, "disabled flight-recorder path must not allocate");
}
