//! Integration tests exercising the global collector: span nesting and
//! timing, concurrent metric updates, sinks, and the disabled fast path.
//!
//! The collector is process-global and `cargo test` runs tests in parallel
//! threads, so every test here serializes on [`lock`] and resets the
//! registry before running. Span trees stay per-thread (the span stack is
//! thread-local), so only the shared registry/sink need the discipline.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use noodle_telemetry as telemetry;
use noodle_telemetry::span;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    telemetry::set_sink(Box::new(telemetry::NullSink));
    telemetry::set_enabled(true);
    telemetry::reset();
    guard
}

#[test]
fn spans_nest_and_durations_are_monotonic() {
    let _guard = lock();
    {
        let _root = span!("root", run = 1);
        std::thread::sleep(Duration::from_millis(2));
        {
            let _child = span!("child");
            std::thread::sleep(Duration::from_millis(2));
            let _grandchild = span!("grandchild");
            std::thread::sleep(Duration::from_millis(1));
        }
        {
            let _sibling = span!("sibling");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let snapshot = telemetry::snapshot();
    assert_eq!(snapshot.spans.len(), 1, "one root span");
    let root = &snapshot.spans[0];
    assert_eq!(root.name, "root");
    assert_eq!(root.attrs, vec![("run".to_string(), "1".to_string())]);
    assert_eq!(root.children.len(), 2);
    assert_eq!(root.children[0].name, "child");
    assert_eq!(root.children[0].children[0].name, "grandchild");
    assert_eq!(root.children[1].name, "sibling");

    // Timing monotonicity: every child starts no earlier than its parent,
    // fits inside it, and siblings' summed time never exceeds the parent.
    fn check(span: &telemetry::SpanRecord) {
        assert!(span.duration_ns > 0, "{} has zero duration", span.name);
        for child in &span.children {
            assert!(child.start_ns >= span.start_ns, "{} starts before parent", child.name);
            assert!(
                child.start_ns + child.duration_ns <= span.start_ns + span.duration_ns,
                "{} ends after parent {}",
                child.name,
                span.name
            );
            check(child);
        }
        assert!(
            span.child_time_ns() <= span.duration_ns,
            "children of {} sum past the parent",
            span.name
        );
    }
    check(root);
    assert!(root.duration_ns >= Duration::from_millis(6).as_nanos() as u64);
}

#[test]
fn sibling_start_times_are_ordered() {
    let _guard = lock();
    {
        let _root = span!("root");
        for _ in 0..3 {
            let _child = span!("step");
        }
    }
    let snapshot = telemetry::snapshot();
    let starts: Vec<u64> = snapshot.spans[0].children.iter().map(|c| c.start_ns).collect();
    assert_eq!(starts.len(), 3);
    assert!(starts.windows(2).all(|w| w[0] <= w[1]), "starts not monotonic: {starts:?}");
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = lock();
    const THREADS: usize = 8;
    const INCREMENTS: usize = 1_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..INCREMENTS {
                    telemetry::counter_add("stress.count", 1);
                    telemetry::histogram_record("stress.value", 1.0);
                }
            });
        }
    });
    let snapshot = telemetry::snapshot();
    assert_eq!(snapshot.counters["stress.count"], (THREADS * INCREMENTS) as u64);
    assert_eq!(snapshot.histograms["stress.value"].count, (THREADS * INCREMENTS) as u64);
}

#[test]
fn disabled_telemetry_records_nothing() {
    let _guard = lock();
    telemetry::set_enabled(false);
    fn expensive_attr() -> String {
        panic!("attribute evaluated while disabled")
    }
    {
        // Attribute expressions must not even be evaluated when disabled.
        let _span = span!("ghost", expensive = expensive_attr());
        telemetry::counter_add("ghost.count", 1);
        telemetry::gauge_set("ghost.gauge", 1.0);
        telemetry::histogram_record("ghost.hist", 1.0);
        let _timer = telemetry::time_histogram("ghost.timer_us");
    }
    let snapshot = telemetry::snapshot();
    assert!(snapshot.spans.is_empty());
    assert!(snapshot.counters.is_empty());
    assert!(snapshot.gauges.is_empty());
    assert!(snapshot.histograms.is_empty());
    telemetry::set_enabled(true);
}

#[test]
fn memory_sink_sees_every_close_with_depth() {
    let _guard = lock();
    let sink = telemetry::MemorySink::new();
    telemetry::set_sink(Box::new(sink.clone()));
    {
        let _root = span!("outer");
        let _child = span!("inner");
    }
    let records = sink.records();
    telemetry::set_sink(Box::new(telemetry::NullSink));
    // Children close first.
    assert_eq!(records.len(), 2);
    assert_eq!((records[0].0, records[0].1.name.as_str()), (1, "inner"));
    assert_eq!((records[1].0, records[1].1.name.as_str()), (0, "outer"));
    // The root record carries its child tree.
    assert_eq!(records[1].1.children.len(), 1);
}

#[test]
fn gauges_keep_the_last_value_and_reject_nan() {
    let _guard = lock();
    telemetry::gauge_set("loss", 0.9);
    telemetry::gauge_set("loss", 0.4);
    telemetry::gauge_set("loss", f64::NAN);
    let snapshot = telemetry::snapshot();
    assert_eq!(snapshot.gauges["loss"], 0.4);
}

#[test]
fn timer_guard_records_microseconds() {
    let _guard = lock();
    {
        let _timer = telemetry::time_histogram("sleep_us");
        std::thread::sleep(Duration::from_millis(2));
    }
    let snapshot = telemetry::snapshot();
    let hist = &snapshot.histograms["sleep_us"];
    assert_eq!(hist.count, 1);
    assert!(hist.min.unwrap() >= 2_000.0, "expected >= 2000us, got {:?}", hist.min);
}

#[test]
fn run_report_reflects_the_snapshot() {
    let _guard = lock();
    {
        let _root = span!("train", corpus_seed = 3);
        telemetry::counter_add("verilog.parse_calls", 15);
    }
    let mut report = telemetry::RunReport::from_snapshot("train", telemetry::snapshot());
    report.evaluation = Some(telemetry::EvaluationSummary {
        winner: "LateFusion".into(),
        brier: [("LateFusion".to_string(), 0.1)].into_iter().collect(),
    });
    let json = report.to_json().unwrap();
    let restored = telemetry::RunReport::from_json(&json).unwrap();
    assert_eq!(restored, report);
    assert_eq!(restored.stages[0].name, "train");
    assert_eq!(restored.counters["verilog.parse_calls"], 15);
    assert_eq!(restored.total_duration_ns(), restored.stages[0].duration_ns);
}
