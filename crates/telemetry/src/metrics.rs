//! Metrics: monotonic counters, last-value gauges and fixed-bucket
//! histograms, all keyed by name in a global registry.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{enabled, registry};

/// Exact quantiles of a histogram's retained observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One traced observation retained per histogram bucket: the most recent
/// value recorded into that bucket while a request context was ambient.
/// Surfaced on `/metrics` as an OpenMetrics exemplar, so a latency
/// outlier in a bucket links straight to the request that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// Trace id of the request that recorded it (never 0).
    pub trace_id: u64,
}

/// A point-in-time summary of one histogram: everything a scrape or report
/// needs (bucket counts, totals, extrema, exact quantiles) without the raw
/// observation vector.
///
/// Produced by [`Histogram::snapshot`], which sorts the retained
/// observations **once** to derive all three quantiles — unlike calling
/// [`Histogram::quantile`] three times, which would clone and sort per
/// call. The snapshot is what the `/metrics` exporter renders and what
/// `RunReport` embeds as `histogram_quantiles`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (one more than `bounds` for overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation, if any.
    pub min: Option<f64>,
    /// Largest observation, if any.
    pub max: Option<f64>,
    /// Exact p50/p95/p99, when at least one observation was retained.
    pub quantiles: Option<Quantiles>,
    /// Per-bucket trace-id exemplars (empty when no traced observation
    /// was ever recorded; absent in snapshots written before exemplars).
    #[serde(default)]
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Cumulative `(upper_bound, count)` pairs in Prometheus `le` order,
    /// ending with the `+Inf` bucket (whose count equals `count`).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut running = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            running += c;
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, running));
        }
        out
    }
}

/// A fixed-bucket histogram with `len(bounds) + 1` buckets.
///
/// Bucket `i` counts values `v` with `v <= bounds[i]` (and
/// `v > bounds[i - 1]` for `i > 0`); the final bucket counts values above
/// every bound. Bounds are sorted ascending at construction. Raw
/// observations are additionally retained for exact quantile queries —
/// run-scoped metric volumes are small enough that exactness beats a
/// sketch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket (one more than `bounds` for overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation, if any.
    pub min: Option<f64>,
    /// Largest observation, if any.
    pub max: Option<f64>,
    /// Raw finite observations in arrival order (absent in reports written
    /// before quantile support).
    #[serde(default)]
    pub values: Vec<f64>,
    /// Per-bucket trace-id exemplars: the most recent traced observation
    /// that landed in each bucket (absent in reports written before
    /// exemplar support; kept empty until the first traced observation).
    #[serde(default)]
    pub exemplars: Vec<Option<Exemplar>>,
}

impl Histogram {
    /// Creates an empty histogram with the given bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
            values: Vec::new(),
            exemplars: Vec::new(),
        }
    }

    /// Default bounds: a 1–2–5 logarithmic ladder from 1e-6 to 1e9, wide
    /// enough for losses, probabilities and microsecond latencies alike.
    pub fn default_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(48);
        let mut decade = 1e-6;
        while decade < 1e10 {
            for mult in [1.0, 2.0, 5.0] {
                bounds.push(decade * mult);
            }
            decade *= 10.0;
        }
        bounds
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
        self.values.push(value);
        if let Some(ctx) = noodle_trace::current() {
            // Keep the latest traced observation per bucket as its
            // exemplar. The vector stays empty until the first traced
            // observation, so untraced histograms pay nothing.
            if self.exemplars.len() != self.counts.len() {
                self.exemplars.resize(self.counts.len(), None);
            }
            self.exemplars[idx] = Some(Exemplar { value, trace_id: ctx.trace_id });
        }
    }

    /// Mean of the observations, or `None` before the first one.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Exact nearest-rank quantile of the retained observations:
    /// the `ceil(q·n)`-th smallest value.
    ///
    /// Returns `None` when empty or `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() || !(q > 0.0 && q <= 1.0) {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (q * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// The standard p50/p95/p99 summary, or `None` before the first
    /// observation (including histograms restored from pre-quantile
    /// reports, which carry no raw values).
    ///
    /// Sorts the retained observations once and reads all three ranks from
    /// the sorted copy.
    pub fn quantiles(&self) -> Option<Quantiles> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let at = |q: f64| {
            let rank = (q * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(Quantiles { p50: at(0.5), p95: at(0.95), p99: at(0.99) })
    }

    /// A point-in-time [`HistogramSnapshot`]: bucket counts, totals,
    /// extrema and quantiles, computed with a single sort and no retained
    /// raw values — the form served by `/metrics` scrapes and embedded in
    /// run reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            quantiles: self.quantiles(),
            exemplars: self.exemplars.clone(),
        }
    }

    /// Folds `other` into `self`: bucket counts add elementwise, totals
    /// and extrema combine, and the retained observations concatenate —
    /// so quantiles of the merged histogram equal quantiles of recording
    /// every observation into one histogram. Used to fold per-thread
    /// kernel histograms into the global registry.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket bounds.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "Histogram::merge requires identical bucket bounds");
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.values.extend_from_slice(&other.values);
        if other.exemplars.iter().any(Option::is_some) {
            if self.exemplars.len() != self.counts.len() {
                self.exemplars.resize(self.counts.len(), None);
            }
            for (i, ex) in other.exemplars.iter().enumerate() {
                if ex.is_some() {
                    self.exemplars[i] = *ex;
                }
            }
        }
    }
}

/// A scrape-oriented copy of every metric: counters, gauges and
/// [`HistogramSnapshot`]s — no spans and no raw observation vectors.
///
/// Produced by [`crate::metrics_snapshot`], which holds the registry lock
/// only long enough to copy the raw maps and computes the histogram
/// summaries (the O(n log n) part) after releasing it, so a concurrent
/// scrape never stalls instrumented hot paths.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A point-in-time copy of every metric and finished root span.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Finished root spans (each the root of a stage-timing tree).
    pub spans: Vec<crate::SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Adds `delta` to the named monotonic counter. No-op when telemetry is
/// disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg.counters.entry(name.to_string()).or_insert(0) += delta;
}

/// Sets the named gauge to `value`. Non-finite values are ignored; no-op
/// when telemetry is disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() || !value.is_finite() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    reg.gauges.insert(name.to_string(), value);
}

/// Records `value` into the named histogram, creating it with
/// [`Histogram::default_bounds`] on first use. No-op when telemetry is
/// disabled.
pub fn histogram_record(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    reg.histograms
        .entry(name.to_string())
        .or_insert_with(|| Histogram::new(&Histogram::default_bounds()))
        .record(value);
}

/// Merges `hist` into the named registry histogram, creating it with the
/// same bounds on first use (so the merge never panics on a fresh name).
/// No-op when telemetry is disabled.
pub fn merge_histogram(name: &str, hist: &Histogram) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    reg.histograms
        .entry(name.to_string())
        .or_insert_with(|| Histogram::new(&hist.bounds))
        .merge(hist);
}

/// Creates (or replaces) the named histogram with explicit bucket bounds.
/// No-op when telemetry is disabled.
pub fn register_histogram(name: &str, bounds: &[f64]) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    reg.histograms.insert(name.to_string(), Histogram::new(bounds));
}

/// RAII timer: on drop, records the elapsed wall-clock time in
/// **microseconds** into the named histogram. Created disarmed (zero cost)
/// when telemetry is disabled.
#[must_use = "a timer measures the scope that holds it"]
pub struct TimerGuard {
    inner: Option<(std::time::Instant, &'static str)>,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some((start, name)) = self.inner.take() {
            histogram_record(name, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

/// Starts a [`TimerGuard`] recording into histogram `name` (microseconds).
pub fn time_histogram(name: &'static str) -> TimerGuard {
    if !enabled() {
        return TimerGuard { inner: None };
    }
    TimerGuard { inner: Some((std::time::Instant::now(), name)) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        h.record(0.5); // <= 1.0        -> bucket 0
        h.record(1.0); // == bound      -> bucket 0 (inclusive)
        h.record(1.5); // (1, 2]        -> bucket 1
        h.record(2.0); // == bound      -> bucket 1
        h.record(5.0); // == last bound -> bucket 2
        h.record(9.0); // above all     -> overflow bucket
        assert_eq!(h.counts, vec![2, 2, 1, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.min, Some(0.5));
        assert_eq!(h.max, Some(9.0));
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count, 0);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn bounds_are_sorted_and_deduped() {
        let h = Histogram::new(&[5.0, 1.0, 5.0, f64::INFINITY]);
        assert_eq!(h.bounds, vec![1.0, 5.0]);
        assert_eq!(h.counts.len(), 3);
    }

    #[test]
    fn default_bounds_are_ascending() {
        let bounds = Histogram::default_bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds.first().unwrap() <= &1e-6);
        assert!(bounds.last().unwrap() >= &1e9);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = Histogram::new(&[10.0]);
        h.record(2.0);
        h.record(4.0);
        assert_eq!(h.mean(), Some(3.0));
    }

    #[test]
    fn quantiles_are_exact_nearest_rank() {
        let mut h = Histogram::new(&Histogram::default_bounds());
        // 1..=100 in shuffled-ish order; nearest-rank quantiles are exact.
        for i in 0..100u32 {
            h.record(((i * 37) % 100 + 1) as f64);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        let q = h.quantiles().unwrap();
        assert_eq!((q.p50, q.p95, q.p99), (50.0, 95.0, 99.0));
    }

    #[test]
    fn quantiles_of_small_samples_clamp_ranks() {
        let mut h = Histogram::new(&[10.0]);
        h.record(7.0);
        assert_eq!(h.quantile(0.5), Some(7.0));
        assert_eq!(h.quantile(0.99), Some(7.0));
    }

    #[test]
    fn quantiles_need_observations_and_valid_q() {
        let mut h = Histogram::new(&[10.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantiles(), None);
        h.record(1.0);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn merged_quantiles_match_single_histogram_recording() {
        let bounds = Histogram::default_bounds();
        // Record 1..=300 split across three per-thread histograms (strided
        // so each shard sees a different value range) and into one
        // reference histogram.
        let mut reference = Histogram::new(&bounds);
        let mut shards: Vec<Histogram> = (0..3).map(|_| Histogram::new(&bounds)).collect();
        for i in 0..300u32 {
            let v = ((i * 101) % 300 + 1) as f64;
            reference.record(v);
            shards[(i % 3) as usize].record(v);
        }
        let mut merged = shards.remove(0);
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged.count, reference.count);
        assert_eq!(merged.counts, reference.counts);
        assert_eq!(merged.sum, reference.sum);
        assert_eq!(merged.min, reference.min);
        assert_eq!(merged.max, reference.max);
        let (m, r) = (merged.quantiles().unwrap(), reference.quantiles().unwrap());
        assert_eq!((m.p50, m.p95, m.p99), (r.p50, r.p95, r.p99));
    }

    #[test]
    fn merge_into_empty_adopts_the_other() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        b.record(1.5);
        a.merge(&b);
        assert_eq!(a.count, 1);
        assert_eq!(a.min, Some(1.5));
        assert_eq!(a.max, Some(1.5));
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn snapshot_mirrors_the_histogram_with_one_sort() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 2.0, 42.0] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.bounds, h.bounds);
        assert_eq!(snap.counts, h.counts);
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 44.5);
        assert_eq!(snap.min, Some(0.5));
        assert_eq!(snap.max, Some(42.0));
        let q = snap.quantiles.unwrap();
        assert_eq!((q.p50, q.p95, q.p99), (2.0, 42.0, 42.0));
        assert_eq!(q, h.quantiles().unwrap());
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let snap = Histogram::new(&[1.0]).snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantiles, None);
        assert_eq!(snap.cumulative_buckets(), vec![(1.0, 0), (f64::INFINITY, 0)]);
    }

    #[test]
    fn cumulative_buckets_end_at_inf_with_the_total() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 5.0, 9.0] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative_buckets();
        assert_eq!(cum, vec![(1.0, 2), (2.0, 4), (5.0, 5), (f64::INFINITY, 6)]);
    }

    #[test]
    fn pre_quantile_reports_deserialize_with_empty_values() {
        // A histogram serialized before the `values` field existed.
        let legacy = r#"{"bounds":[1.0],"counts":[1,0],"count":1,"sum":0.5,"min":0.5,"max":0.5}"#;
        let h: Histogram = serde_json::from_str(legacy).unwrap();
        assert_eq!(h.count, 1);
        assert!(h.values.is_empty());
        assert_eq!(h.quantiles(), None);
    }

    #[test]
    fn traced_observations_leave_bucket_exemplars() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5); // untraced: no exemplar storage allocated
        assert!(h.exemplars.is_empty());

        let ctx = noodle_trace::TraceContext::mint();
        {
            let _guard = noodle_trace::set_current(ctx);
            h.record(2.0); // bucket 1
            h.record(5.0); // bucket 1 again: exemplar replaced
        }
        h.record(42.0); // untraced: overflow bucket keeps no exemplar
        assert_eq!(h.exemplars.len(), h.counts.len());
        assert_eq!(h.exemplars[0], None);
        assert_eq!(h.exemplars[1], Some(Exemplar { value: 5.0, trace_id: ctx.trace_id }));
        assert_eq!(h.exemplars[2], None);

        // Merge adopts the other shard's exemplars where present.
        let mut empty = Histogram::new(&[1.0, 10.0]);
        empty.merge(&h);
        assert_eq!(empty.exemplars[1], Some(Exemplar { value: 5.0, trace_id: ctx.trace_id }));

        // Snapshot carries them through to scrape rendering.
        let snap = h.snapshot();
        assert_eq!(snap.exemplars, h.exemplars);

        // Legacy-deserialized histograms (no exemplar vector) still record.
        let legacy = r#"{"bounds":[1.0],"counts":[0,0],"count":0,"sum":0.0,"min":null,"max":null}"#;
        let mut old: Histogram = serde_json::from_str(legacy).unwrap();
        let _guard = noodle_trace::set_current(ctx);
        old.record(0.5);
        assert_eq!(old.exemplars[0], Some(Exemplar { value: 0.5, trace_id: ctx.trace_id }));
    }
}
