//! # noodle-telemetry
//!
//! A lightweight (`serde`/`serde_json` + `noodle-profile` only) tracing
//! and metrics layer for the NOODLE pipeline:
//!
//! * [`span!`] — hierarchical spans with wall-clock timing and key/value
//!   attributes, streamed live to a pluggable [`Sink`] (stderr
//!   pretty-printer, JSON lines, in-memory for tests);
//! * [`counter_add`] / [`gauge_set`] / [`histogram_record`] — monotonic
//!   counters, gauges and fixed-bucket histograms;
//! * [`RunReport`] — a serde-serializable end-of-run summary (stage-timing
//!   trees, metric snapshots, corpus stats, fusion winner).
//!
//! Telemetry is **disabled by default** and every entry point is a no-op
//! until [`set_enabled`]`(true)` — the `span!` macro does not even format
//! its attributes, so instrumented hot paths (e.g. `detect`) cost one
//! relaxed atomic load and allocate nothing when tracing is off.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_telemetry as telemetry;
//!
//! telemetry::set_enabled(true);
//! {
//!     let _stage = telemetry::span!("gan.amplify", class = "TI");
//!     telemetry::counter_add("gan.synthetic_samples", 38);
//!     telemetry::histogram_record("gan.d_loss", 0.7);
//! }
//! let snapshot = telemetry::snapshot();
//! assert_eq!(snapshot.counters["gan.synthetic_samples"], 38);
//! assert_eq!(snapshot.spans.last().unwrap().name, "gan.amplify");
//! telemetry::reset();
//! telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod report;
mod sink;
mod span;

pub use metrics::{
    counter_add, gauge_set, histogram_record, merge_histogram, register_histogram, time_histogram,
    Exemplar, Histogram, HistogramSnapshot, MetricsSnapshot, Quantiles, TelemetrySnapshot,
    TimerGuard,
};
pub use report::{
    CorpusSummary, EvaluationSummary, ReportError, RunContext, RunReport, SCHEMA_VERSION,
};
pub use sink::{JsonLines, MemorySink, NullSink, Sink, StderrPretty};
pub use span::{format_duration_ns, start_span, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
static SINK: OnceLock<Mutex<Box<dyn Sink>>> = OnceLock::new();

/// Everything the collector accumulates between [`reset`] calls.
#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) spans: Vec<SpanRecord>,
    pub(crate) counters: std::collections::BTreeMap<String, u64>,
    pub(crate) gauges: std::collections::BTreeMap<String, f64>,
    pub(crate) histograms: std::collections::BTreeMap<String, Histogram>,
}

/// Whether telemetry is currently collecting. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables telemetry collection.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so offsets stay positive.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The common time origin for span `start_ns` offsets.
///
/// Delegates to the profiler's epoch so spans and profiler events from one
/// run share a single timeline (a span at `start_ns = t` lines up with the
/// kernel events it contains in the Chrome trace).
pub(crate) fn epoch() -> Instant {
    noodle_profile::epoch()
}

pub(crate) fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Replaces the global sink. The default sink is [`NullSink`].
pub fn set_sink(sink: Box<dyn Sink>) {
    let slot = SINK.get_or_init(|| Mutex::new(Box::new(NullSink)));
    *slot.lock().expect("telemetry sink poisoned") = sink;
}

pub(crate) fn with_sink(f: impl FnOnce(&mut dyn Sink)) {
    let slot = SINK.get_or_init(|| Mutex::new(Box::new(NullSink)));
    let mut sink = slot.lock().expect("telemetry sink poisoned");
    f(sink.as_mut());
}

/// A scrape-oriented copy of the metric registry: counters, gauges and
/// per-histogram [`HistogramSnapshot`]s.
///
/// The registry lock is held only for the raw map copies; the histogram
/// summaries (which sort retained observations) are computed after the
/// lock is released, so repeated `/metrics` scrapes cannot stall the
/// instrumented hot paths that share the registry mutex.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let (counters, gauges, histograms) = {
        let reg = registry().lock().expect("telemetry registry poisoned");
        (reg.counters.clone(), reg.gauges.clone(), reg.histograms.clone())
    };
    MetricsSnapshot {
        counters,
        gauges,
        histograms: histograms.iter().map(|(name, h)| (name.clone(), h.snapshot())).collect(),
    }
}

/// A point-in-time copy of every finished root span and metric.
pub fn snapshot() -> TelemetrySnapshot {
    let reg = registry().lock().expect("telemetry registry poisoned");
    TelemetrySnapshot {
        spans: reg.spans.clone(),
        counters: reg.counters.clone(),
        gauges: reg.gauges.clone(),
        histograms: reg.histograms.clone(),
    }
}

/// Clears all collected spans and metrics (the enabled flag and sink are
/// untouched).
pub fn reset() {
    let mut reg = registry().lock().expect("telemetry registry poisoned");
    *reg = Registry::default();
}

/// Opens a timed span for the enclosing scope, optionally with key/value
/// attributes: `span!("gan.amplify", class = "TI")`.
///
/// Binds to a [`SpanGuard`]; the span closes (and is recorded) when the
/// guard drops. When telemetry is disabled the attribute expressions are
/// not evaluated and nothing allocates.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::start_span($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::start_span(
                $name,
                ::std::vec![$(
                    (
                        ::std::string::String::from(::core::stringify!($key)),
                        ::std::string::ToString::to_string(&$value),
                    )
                ),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}
