//! The end-of-run report: a serde-serializable summary of one pipeline run
//! (stage-timing tree, metric snapshots, corpus stats, winner strategy),
//! written to a JSON file by `noodle --report <path>`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, Quantiles, TelemetrySnapshot};
use crate::span::SpanRecord;

/// Version of the [`RunReport`] JSON schema. Bump when a field is renamed
/// or changes meaning; readers reject reports from the future.
pub const SCHEMA_VERSION: u32 = 2;

/// Schema version assumed for reports written before the field existed.
fn legacy_schema_version() -> u32 {
    1
}

/// Failure to parse a [`RunReport`].
#[derive(Debug)]
pub enum ReportError {
    /// The JSON was malformed or did not match the report shape.
    Json(serde_json::Error),
    /// The report was written by a newer schema than this build reads.
    UnsupportedVersion {
        /// Schema version found in the report.
        found: u32,
        /// Highest schema version this build supports.
        supported: u32,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Json(e) => write!(f, "run report: {e}"),
            ReportError::UnsupportedVersion { found, supported } => write!(
                f,
                "run report has schema version {found} but this build reads at most \
                 {supported}; upgrade the reader"
            ),
        }
    }
}

impl std::error::Error for ReportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReportError::Json(e) => Some(e),
            ReportError::UnsupportedVersion { .. } => None,
        }
    }
}

impl From<serde_json::Error> for ReportError {
    fn from(e: serde_json::Error) -> Self {
        ReportError::Json(e)
    }
}

/// How the run was invoked: enough to reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunContext {
    /// The full command line, program name included.
    pub invocation: String,
    /// The dominant RNG seed of the run, when one was in play.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Version of the crate that ran the command.
    pub version: String,
    /// The observability HTTP endpoint actually bound by
    /// `--observe-addr`, with any ephemeral port resolved
    /// (`"127.0.0.1:43817"`), so scripts can discover the live endpoints
    /// from `--report` output instead of scraping stderr.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub observe_addr: Option<String>,
    /// SIMD instruction set the compute kernels dispatched to
    /// (`"avx2+fma"`, `"neon"` or `"scalar"`). Kernel numerics may
    /// legally differ between ISAs, so reproducing a run exactly needs
    /// the dispatch choice on record; reports predating the field read
    /// back as `None`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub simd: Option<String>,
}

/// Corpus composition statistics, mirrored from `bench_gen::CorpusStats`
/// (redeclared here so the telemetry crate stays a leaf dependency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Total number of designs.
    pub total: usize,
    /// Number of Trojan-free designs.
    pub trojan_free: usize,
    /// Number of Trojan-infected designs.
    pub trojan_infected: usize,
    /// Mean source length in lines.
    pub mean_lines: f64,
    /// Number of distinct (trigger, payload) combinations present.
    pub distinct_trojans: usize,
}

/// Outcome of the fusion-strategy competition captured during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationSummary {
    /// The winning fusion strategy, e.g. `"LateFusion"`.
    pub winner: String,
    /// Brier score per strategy.
    pub brier: BTreeMap<String, f64>,
}

/// A complete end-of-run summary, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Report schema version ([`SCHEMA_VERSION`] at write time; reports
    /// predating the field read back as version 1).
    #[serde(default = "legacy_schema_version")]
    pub schema_version: u32,
    /// Version of the noodle workspace that produced the report.
    pub tool_version: String,
    /// The command that ran (`"train"`, `"gen-corpus"`, ...).
    pub command: String,
    /// Invocation details (full command line, seed, crate version).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub context: Option<RunContext>,
    /// Stage-timing trees, one per root span, in completion order.
    pub stages: Vec<SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Exact p50/p95/p99 per histogram that recorded at least one value.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub histogram_quantiles: BTreeMap<String, Quantiles>,
    /// Corpus composition, when the run generated or consumed a corpus.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub corpus: Option<CorpusSummary>,
    /// Fusion competition outcome, when the run trained a detector.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub evaluation: Option<EvaluationSummary>,
    /// Execution profile (top spans by self-time, per-thread utilization,
    /// kernel roofline), when the run was profiled with `--profile`.
    /// Additive and optional, so no schema bump.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<noodle_profile::ProfileSummary>,
}

impl RunReport {
    /// Builds a report from a telemetry snapshot. Quantiles come from
    /// [`Histogram::snapshot`], which sorts each histogram's observations
    /// once instead of once per quantile.
    pub fn from_snapshot(command: &str, snapshot: TelemetrySnapshot) -> Self {
        let histogram_quantiles = snapshot
            .histograms
            .iter()
            .filter_map(|(name, h)| Some((name.clone(), h.snapshot().quantiles?)))
            .collect();
        Self {
            schema_version: SCHEMA_VERSION,
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            command: command.to_string(),
            context: None,
            stages: snapshot.spans,
            counters: snapshot.counters,
            gauges: snapshot.gauges,
            histograms: snapshot.histograms,
            histogram_quantiles,
            corpus: None,
            evaluation: None,
            profile: None,
        }
    }

    /// Total wall-clock time across the root stages, in nanoseconds.
    pub fn total_duration_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.duration_ns).sum()
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a report previously produced by [`RunReport::to_json`].
    ///
    /// Reports without a `schema_version` field are treated as version 1
    /// (pre-versioning) and accepted.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError`] if `json` is not a valid report or was
    /// written by a newer schema version than this build supports.
    pub fn from_json(json: &str) -> Result<Self, ReportError> {
        let report: Self = serde_json::from_str(json)?;
        if report.schema_version > SCHEMA_VERSION {
            return Err(ReportError::UnsupportedVersion {
                found: report.schema_version,
                supported: SCHEMA_VERSION,
            });
        }
        Ok(report)
    }

    /// Writes the report as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if serialization or the write fails.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut histograms = BTreeMap::new();
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(42.0);
        histograms.insert("nn.epoch_loss".to_string(), h);
        let histogram_quantiles = histograms
            .iter()
            .filter_map(|(name, h)| Some((name.clone(), h.quantiles()?)))
            .collect();
        RunReport {
            schema_version: SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            command: "train".into(),
            context: Some(RunContext {
                invocation: "noodle train --fast --corpus-seed 3".into(),
                seed: Some(3),
                version: "0.1.0".into(),
                observe_addr: Some("127.0.0.1:43817".into()),
                simd: Some("avx2+fma".into()),
            }),
            stages: vec![SpanRecord {
                name: "train".into(),
                attrs: vec![("corpus_seed".into(), "3".into())],
                start_ns: 10,
                duration_ns: 5_000,
                children: vec![SpanRecord {
                    name: "cnn.fit".into(),
                    attrs: vec![("modality".into(), "graph".into())],
                    start_ns: 20,
                    duration_ns: 3_000,
                    children: Vec::new(),
                    trace_id: String::new(),
                }],
                trace_id: "00c0ffee00c0ffee".into(),
            }],
            counters: BTreeMap::from([("verilog.parse_calls".to_string(), 15)]),
            gauges: BTreeMap::from([("brier.late".to_string(), 0.08)]),
            histograms,
            histogram_quantiles,
            corpus: Some(CorpusSummary {
                total: 15,
                trojan_free: 10,
                trojan_infected: 5,
                mean_lines: 80.5,
                distinct_trojans: 4,
            }),
            evaluation: Some(EvaluationSummary {
                winner: "LateFusion".into(),
                brier: BTreeMap::from([("LateFusion".to_string(), 0.08)]),
            }),
            profile: None,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let json = report.to_json().unwrap();
        let restored = RunReport::from_json(&json).unwrap();
        assert_eq!(report, restored);
    }

    #[test]
    fn golden_schema_keys_are_stable() {
        // Downstream tooling parses these field names; changing them is a
        // breaking schema change and must update this test deliberately.
        let json = sample_report().to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        for key in [
            "schema_version",
            "tool_version",
            "command",
            "context",
            "stages",
            "counters",
            "gauges",
            "histograms",
            "histogram_quantiles",
            "corpus",
            "evaluation",
        ] {
            assert!(value.get(key).is_some(), "missing top-level key `{key}`");
        }
        let stage = &value["stages"][0];
        for key in ["name", "attrs", "start_ns", "duration_ns", "children"] {
            assert!(stage.get(key).is_some(), "missing span key `{key}`");
        }
        let hist = &value["histograms"]["nn.epoch_loss"];
        for key in ["bounds", "counts", "count", "sum", "min", "max", "values"] {
            assert!(hist.get(key).is_some(), "missing histogram key `{key}`");
        }
        let quantiles = &value["histogram_quantiles"]["nn.epoch_loss"];
        for key in ["p50", "p95", "p99"] {
            assert!(quantiles.get(key).is_some(), "missing quantile key `{key}`");
        }
        let context = &value["context"];
        for key in ["invocation", "seed", "version", "observe_addr"] {
            assert!(context.get(key).is_some(), "missing context key `{key}`");
        }
        assert_eq!(value["schema_version"], SCHEMA_VERSION);
        assert_eq!(value["evaluation"]["winner"], "LateFusion");
        assert_eq!(value["corpus"]["total"], 15);
    }

    #[test]
    fn optional_sections_are_omitted_when_absent() {
        let report = RunReport::from_snapshot("detect", TelemetrySnapshot::default());
        let json = report.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("corpus").is_none());
        assert!(value.get("evaluation").is_none());
        // And they default to None on the way back in.
        let restored = RunReport::from_json(&json).unwrap();
        assert_eq!(restored.corpus, None);
    }

    #[test]
    fn total_duration_sums_roots() {
        let report = sample_report();
        assert_eq!(report.total_duration_ns(), 5_000);
    }

    #[test]
    fn from_json_rejects_future_schema_versions() {
        let mut report = sample_report();
        report.schema_version = SCHEMA_VERSION + 1;
        let json = report.to_json().unwrap();
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(matches!(
            err,
            ReportError::UnsupportedVersion { found, supported }
                if found == SCHEMA_VERSION + 1 && supported == SCHEMA_VERSION
        ));
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn pre_versioning_reports_read_back_as_version_one() {
        let mut report = sample_report();
        report.context = None;
        let json = report.to_json().unwrap();
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value.as_object_mut().unwrap().remove("schema_version");
        let restored = RunReport::from_json(&value.to_string()).unwrap();
        assert_eq!(restored.schema_version, 1);
        assert_eq!(restored.context, None);
    }

    #[test]
    fn snapshot_quantiles_are_surfaced() {
        let mut snapshot = TelemetrySnapshot::default();
        let mut h = Histogram::new(&Histogram::default_bounds());
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        snapshot.histograms.insert("detect.latency_us".to_string(), h);
        let report = RunReport::from_snapshot("detect", snapshot);
        let q = report.histogram_quantiles.get("detect.latency_us").unwrap();
        assert_eq!(q.p50, 2.0);
        assert_eq!(q.p99, 4.0);
    }
}
