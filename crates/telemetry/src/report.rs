//! The end-of-run report: a serde-serializable summary of one pipeline run
//! (stage-timing tree, metric snapshots, corpus stats, winner strategy),
//! written to a JSON file by `noodle --report <path>`.

use std::collections::BTreeMap;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::metrics::{Histogram, TelemetrySnapshot};
use crate::span::SpanRecord;

/// Corpus composition statistics, mirrored from `bench_gen::CorpusStats`
/// (redeclared here so the telemetry crate stays a leaf dependency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Total number of designs.
    pub total: usize,
    /// Number of Trojan-free designs.
    pub trojan_free: usize,
    /// Number of Trojan-infected designs.
    pub trojan_infected: usize,
    /// Mean source length in lines.
    pub mean_lines: f64,
    /// Number of distinct (trigger, payload) combinations present.
    pub distinct_trojans: usize,
}

/// Outcome of the fusion-strategy competition captured during training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationSummary {
    /// The winning fusion strategy, e.g. `"LateFusion"`.
    pub winner: String,
    /// Brier score per strategy.
    pub brier: BTreeMap<String, f64>,
}

/// A complete end-of-run summary, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Version of the noodle workspace that produced the report.
    pub tool_version: String,
    /// The command that ran (`"train"`, `"gen-corpus"`, ...).
    pub command: String,
    /// Stage-timing trees, one per root span, in completion order.
    pub stages: Vec<SpanRecord>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Corpus composition, when the run generated or consumed a corpus.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub corpus: Option<CorpusSummary>,
    /// Fusion competition outcome, when the run trained a detector.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub evaluation: Option<EvaluationSummary>,
}

impl RunReport {
    /// Builds a report from a telemetry snapshot.
    pub fn from_snapshot(command: &str, snapshot: TelemetrySnapshot) -> Self {
        Self {
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            command: command.to_string(),
            stages: snapshot.spans,
            counters: snapshot.counters,
            gauges: snapshot.gauges,
            histograms: snapshot.histograms,
            corpus: None,
            evaluation: None,
        }
    }

    /// Total wall-clock time across the root stages, in nanoseconds.
    pub fn total_duration_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.duration_ns).sum()
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Restores a report previously produced by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if `json` is not a valid report.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the report as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if serialization or the write fails.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let json = self.to_json().map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut histograms = BTreeMap::new();
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.record(0.5);
        h.record(42.0);
        histograms.insert("nn.epoch_loss".to_string(), h);
        RunReport {
            tool_version: "0.1.0".into(),
            command: "train".into(),
            stages: vec![SpanRecord {
                name: "train".into(),
                attrs: vec![("corpus_seed".into(), "3".into())],
                start_ns: 10,
                duration_ns: 5_000,
                children: vec![SpanRecord {
                    name: "cnn.fit".into(),
                    attrs: vec![("modality".into(), "graph".into())],
                    start_ns: 20,
                    duration_ns: 3_000,
                    children: Vec::new(),
                }],
            }],
            counters: BTreeMap::from([("verilog.parse_calls".to_string(), 15)]),
            gauges: BTreeMap::from([("brier.late".to_string(), 0.08)]),
            histograms,
            corpus: Some(CorpusSummary {
                total: 15,
                trojan_free: 10,
                trojan_infected: 5,
                mean_lines: 80.5,
                distinct_trojans: 4,
            }),
            evaluation: Some(EvaluationSummary {
                winner: "LateFusion".into(),
                brier: BTreeMap::from([("LateFusion".to_string(), 0.08)]),
            }),
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample_report();
        let json = report.to_json().unwrap();
        let restored = RunReport::from_json(&json).unwrap();
        assert_eq!(report, restored);
    }

    #[test]
    fn golden_schema_keys_are_stable() {
        // Downstream tooling parses these field names; changing them is a
        // breaking schema change and must update this test deliberately.
        let json = sample_report().to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        for key in [
            "tool_version",
            "command",
            "stages",
            "counters",
            "gauges",
            "histograms",
            "corpus",
            "evaluation",
        ] {
            assert!(value.get(key).is_some(), "missing top-level key `{key}`");
        }
        let stage = &value["stages"][0];
        for key in ["name", "attrs", "start_ns", "duration_ns", "children"] {
            assert!(stage.get(key).is_some(), "missing span key `{key}`");
        }
        let hist = &value["histograms"]["nn.epoch_loss"];
        for key in ["bounds", "counts", "count", "sum", "min", "max"] {
            assert!(hist.get(key).is_some(), "missing histogram key `{key}`");
        }
        assert_eq!(value["evaluation"]["winner"], "LateFusion");
        assert_eq!(value["corpus"]["total"], 15);
    }

    #[test]
    fn optional_sections_are_omitted_when_absent() {
        let report = RunReport::from_snapshot("detect", TelemetrySnapshot::default());
        let json = report.to_json().unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("corpus").is_none());
        assert!(value.get("evaluation").is_none());
        // And they default to None on the way back in.
        let restored = RunReport::from_json(&json).unwrap();
        assert_eq!(restored.corpus, None);
    }

    #[test]
    fn total_duration_sums_roots() {
        let report = sample_report();
        assert_eq!(report.total_duration_ns(), 5_000);
    }
}
