//! Pluggable span sinks: where closed spans are streamed as they finish.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::span::{format_duration_ns, SpanRecord};

/// Receives every closed span as it finishes.
///
/// `depth` is the nesting depth at close time (0 = root). Children close
/// before their parents, so a sink sees a stage's sub-steps stream in live
/// and then the enclosing stage's total.
pub trait Sink: Send {
    /// Called once per closed span.
    fn span_closed(&mut self, span: &SpanRecord, depth: usize);
}

/// Discards everything. The default sink: metrics and spans still
/// accumulate in the registry for [`crate::snapshot`], nothing is printed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn span_closed(&mut self, _span: &SpanRecord, _depth: usize) {}
}

/// Pretty-prints closed spans to stderr, indented by depth — the live
/// progress view behind `noodle train --trace`.
#[derive(Debug, Clone, Copy)]
pub struct StderrPretty {
    /// Spans deeper than this are suppressed to keep the stream readable.
    pub max_depth: usize,
}

impl Default for StderrPretty {
    fn default() -> Self {
        Self { max_depth: 3 }
    }
}

impl Sink for StderrPretty {
    fn span_closed(&mut self, span: &SpanRecord, depth: usize) {
        if depth > self.max_depth {
            return;
        }
        let indent = "  ".repeat(depth);
        let mut attrs = String::new();
        for (k, v) in &span.attrs {
            attrs.push_str(&format!(" {k}={v}"));
        }
        eprintln!(
            "[trace] {indent}{name}{attrs} ... {dur}",
            name = span.name,
            dur = format_duration_ns(span.duration_ns),
        );
    }
}

/// Streams one JSON object per closed span to a writer (stderr by default):
/// `{"type":"span","depth":N,"span":{...}}`. Root spans (`depth == 0`)
/// embed their full child tree; filter on `depth` to deduplicate.
pub struct JsonLines {
    writer: Box<dyn Write + Send>,
}

impl JsonLines {
    /// A JSON-lines sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { writer }
    }

    /// A JSON-lines sink over stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }
}

impl Sink for JsonLines {
    fn span_closed(&mut self, span: &SpanRecord, depth: usize) {
        #[derive(serde::Serialize)]
        struct Line<'a> {
            r#type: &'static str,
            depth: usize,
            span: &'a SpanRecord,
        }
        if let Ok(line) = serde_json::to_string(&Line { r#type: "span", depth, span }) {
            let _ = writeln!(self.writer, "{line}");
        }
    }
}

/// Collects closed spans in memory, for tests. Clones share storage, so a
/// test can keep one handle and install the other with [`crate::set_sink`].
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<(usize, SpanRecord)>>>,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything recorded so far, as `(depth, span)` pairs in close order.
    pub fn records(&self) -> Vec<(usize, SpanRecord)> {
        self.records.lock().expect("memory sink poisoned").clone()
    }
}

impl Sink for MemorySink {
    fn span_closed(&mut self, span: &SpanRecord, depth: usize) {
        self.records.lock().expect("memory sink poisoned").push((depth, span.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            attrs: vec![("k".into(), "v".into())],
            start_ns: 0,
            duration_ns: 1_500,
            children: Vec::new(),
            trace_id: String::new(),
        }
    }

    #[test]
    fn memory_sink_shares_storage_across_clones() {
        let sink = MemorySink::new();
        let mut installed = sink.clone();
        installed.span_closed(&span("a"), 1);
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.records()[0].0, 1);
        assert_eq!(sink.records()[0].1.name, "a");
    }

    #[test]
    fn json_lines_writes_one_line_per_span() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLines::new(Box::new(Shared(buf.clone())));
        sink.span_closed(&span("x"), 0);
        sink.span_closed(&span("y"), 2);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let parsed: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(parsed["type"], "span");
        assert_eq!(parsed["span"]["name"], "x");
        assert_eq!(parsed["depth"], 0);
    }

    #[test]
    fn null_sink_is_silent() {
        NullSink.span_closed(&span("a"), 0);
    }
}
