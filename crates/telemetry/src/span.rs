//! Hierarchical spans with wall-clock timing and key/value attributes.
//!
//! Spans nest through a per-thread stack: opening a span while another is
//! active makes it a child of the active one. When a span closes its record
//! is attached to its parent (or, for root spans, submitted to the global
//! collector) and streamed to the configured [`crate::Sink`].

use std::cell::RefCell;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::{enabled, epoch, registry, with_sink};

/// A finished span: name, attributes, timing and nested children.
///
/// Durations are wall-clock nanoseconds; `start_ns` is the offset from the
/// telemetry epoch (the first instant the telemetry layer was touched), so
/// records from one run share a common timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, dotted by convention (`"cnn.fit"`).
    pub name: String,
    /// Key/value attributes attached at open time.
    pub attrs: Vec<(String, String)>,
    /// Start offset from the telemetry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub duration_ns: u64,
    /// Child spans, in completion order.
    pub children: Vec<SpanRecord>,
    /// Trace id (16 hex digits) of the request active when the span
    /// opened; empty when no request context was ambient. Joins the span
    /// to its audit record and profiler events.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub trace_id: String,
}

impl SpanRecord {
    /// Total duration of the direct children, in nanoseconds.
    ///
    /// Children run strictly inside their parent, so this never exceeds
    /// [`SpanRecord::duration_ns`] beyond clock granularity.
    pub fn child_time_ns(&self) -> u64 {
        self.children.iter().map(|c| c.duration_ns).sum()
    }

    /// Time spent in this span but not in any direct child, in nanoseconds.
    pub fn self_time_ns(&self) -> u64 {
        self.duration_ns.saturating_sub(self.child_time_ns())
    }

    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// A span that has been opened but not yet closed.
struct PendingSpan {
    name: String,
    attrs: Vec<(String, String)>,
    start: Instant,
    start_ns: u64,
    children: Vec<SpanRecord>,
    /// Ambient trace context at open time (0 = none), kept numeric until
    /// close so the pending span stays cheap.
    trace: u64,
    span: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<PendingSpan>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`crate::span!`] / [`start_span`]; closing (by
/// drop) records the span.
///
/// Guards must be dropped in reverse open order (the natural scoping
/// behaviour); interleaved drops would attach children to the wrong parent.
#[must_use = "a span measures the scope that holds its guard"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// A guard that does nothing on drop, used when telemetry is disabled.
    pub fn disabled() -> Self {
        Self { armed: false }
    }
}

/// Opens a span. Prefer the [`crate::span!`] macro, which skips attribute
/// formatting entirely when telemetry is disabled.
pub fn start_span(name: &str, attrs: Vec<(String, String)>) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let start = Instant::now();
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    let (trace, span) = noodle_trace::current().map_or((0, 0), |c| (c.trace_id, c.span_id));
    noodle_trace::flight_record(noodle_trace::FlightKind::SpanOpen, trace, span, 0, 0, name);
    SPAN_STACK.with(|stack| {
        stack.borrow_mut().push(PendingSpan {
            name: name.to_string(),
            attrs,
            start,
            start_ns,
            children: Vec::new(),
            trace,
            span,
        });
    });
    SpanGuard { armed: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let closed = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let pending = stack.pop()?;
            let trace = pending.trace;
            let span = pending.span;
            let record = SpanRecord {
                duration_ns: pending.start.elapsed().as_nanos() as u64,
                name: pending.name,
                attrs: pending.attrs,
                start_ns: pending.start_ns,
                children: pending.children,
                trace_id: if trace == 0 {
                    String::new()
                } else {
                    noodle_trace::format_trace_id(trace)
                },
            };
            let depth = stack.len();
            if let Some(parent) = stack.last_mut() {
                parent.children.push(record.clone());
            }
            Some((record, depth, trace, span))
        });
        if let Some((record, depth, trace, span)) = closed {
            noodle_trace::flight_record(
                noodle_trace::FlightKind::SpanClose,
                trace,
                span,
                record.duration_ns,
                0,
                &record.name,
            );
            // Mirror the closed span onto the profiler timeline (no-op
            // unless `--profile` enabled event collection).
            noodle_profile::record_span(&record.name, record.start_ns, record.duration_ns);
            if depth == 0 {
                registry().lock().expect("telemetry registry poisoned").spans.push(record.clone());
            }
            with_sink(|sink| sink.span_closed(&record, depth));
        }
    }
}

/// Formats a nanosecond duration for humans (`412ns`, `3.1us`, `27ms`,
/// `1.42s`).
pub fn format_duration_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(name: &str, duration_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            attrs: Vec::new(),
            start_ns: 0,
            duration_ns,
            children: Vec::new(),
            trace_id: String::new(),
        }
    }

    #[test]
    fn child_and_self_time() {
        let mut root = leaf("root", 100);
        root.children.push(leaf("a", 30));
        root.children.push(leaf("b", 50));
        assert_eq!(root.child_time_ns(), 80);
        assert_eq!(root.self_time_ns(), 20);
    }

    #[test]
    fn self_time_saturates() {
        let mut root = leaf("root", 10);
        root.children.push(leaf("a", 30));
        assert_eq!(root.self_time_ns(), 0);
    }

    #[test]
    fn find_walks_the_tree() {
        let mut root = leaf("root", 100);
        let mut mid = leaf("mid", 60);
        mid.children.push(leaf("deep", 20));
        root.children.push(mid);
        assert_eq!(root.find("deep").unwrap().duration_ns, 20);
        assert!(root.find("missing").is_none());
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration_ns(412), "412ns");
        assert_eq!(format_duration_ns(3_100), "3.1us");
        assert_eq!(format_duration_ns(27_000_000), "27.0ms");
        assert_eq!(format_duration_ns(1_420_000_000), "1.42s");
    }
}
