//! Proves the inference arena's allocation discipline: after one warmup
//! call, `Sequential::infer_proba` performs zero heap allocations — the
//! activation buffers and im2col scratch reach steady-state capacity and
//! are reused verbatim on every subsequent call.
//!
//! Threads are pinned to 1 for the measured region: single-threaded
//! `par_for` regions run inline with no task handles, so the whole
//! forward pass touches no allocator. (At higher thread counts the only
//! allocations are the compute pool's per-region task headers — nothing
//! per-tensor.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use noodle_nn::{
    Activation, Conv2d, Dense, Dropout, Flatten, InferArena, MaxPool2d, Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The graph-modality CNN architecture used by the detector.
fn graph_cnn(rng: &mut StdRng) -> Sequential {
    Sequential::new(vec![
        Conv2d::new(2, 8, 3, 1, rng).into(),
        Activation::relu().into(),
        MaxPool2d::new(2).into(),
        Conv2d::new(8, 16, 3, 1, rng).into(),
        Activation::relu().into(),
        MaxPool2d::new(2).into(),
        Flatten::new().into(),
        Dropout::new(0.2, 17).into(),
        Dense::new(16 * 3 * 3, 32, rng).into(),
        Activation::relu().into(),
        Dense::new(32, 2, rng).into(),
    ])
}

#[test]
fn warm_infer_allocates_nothing() {
    // Integration tests do not inherit noodle-compute's cfg(test) default,
    // so pin the pool explicitly: inline par_for regions are allocation-free.
    noodle_compute::set_thread_override(Some(1));
    let mut rng = StdRng::seed_from_u64(21);
    let net = graph_cnn(&mut rng);
    let x = Tensor::rand_uniform(&[32, 2, 12, 12], -1.0, 1.0, &mut rng);
    let mut arena = InferArena::new();

    // Warmup: buffers grow to steady-state capacity.
    for _ in 0..2 {
        let _ = net.infer_proba(&x, &mut arena);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        let p = net.infer_proba(&x, &mut arena);
        assert_eq!(p.shape(), &[32, 2]);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "warm infer_proba must not touch the allocator");
}

#[test]
fn smaller_batches_reuse_the_warm_arena() {
    noodle_compute::set_thread_override(Some(1));
    let mut rng = StdRng::seed_from_u64(22);
    let net = graph_cnn(&mut rng);
    let full = Tensor::rand_uniform(&[32, 2, 12, 12], -1.0, 1.0, &mut rng);
    let tail = Tensor::rand_uniform(&[5, 2, 12, 12], -1.0, 1.0, &mut rng);
    let mut arena = InferArena::new();
    let _ = net.infer_proba(&full, &mut arena);

    // A final ragged micro-batch must fit inside the warmed buffers.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let p = net.infer_proba(&tail, &mut arena);
    assert_eq!(p.shape(), &[5, 2]);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "shrinking the batch must not reallocate");
}
