//! Finite-difference gradient checks for every trainable layer type.
//!
//! For a scalar loss L(θ), backprop gradients must match
//! (L(θ + h) − L(θ − h)) / 2h to a few decimal places. This is the strongest
//! correctness test a hand-written backward pass can get.

use noodle_nn::loss::{binary_cross_entropy_with_logits, cross_entropy, mse};
use noodle_nn::{
    Activation, Conv1d, Conv2d, Dense, Flatten, MaxPool1d, MaxPool2d, Mode, Sequential, Tensor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const H: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Loss used by the checks: cross-entropy against fixed labels.
fn loss_of(net: &mut Sequential, x: &Tensor, labels: &[usize]) -> f32 {
    let logits = net.forward(x, Mode::Train);
    cross_entropy(&logits, labels).loss
}

/// Checks every parameter of `net` by central differences.
fn check_param_grads(net: &mut Sequential, x: &Tensor, labels: &[usize]) {
    net.zero_grad();
    let logits = net.forward(x, Mode::Train);
    let out = cross_entropy(&logits, labels);
    net.backward(&out.grad);

    // Snapshot analytic gradients.
    let analytic: Vec<Vec<f32>> = net.params_mut().iter().map(|p| p.grad.data().to_vec()).collect();

    for (pi, grads) in analytic.iter().enumerate() {
        for j in 0..grads.len() {
            let orig = {
                let mut params = net.params_mut();
                let v = params[pi].value.data_mut();
                let orig = v[j];
                v[j] = orig + H;
                orig
            };
            let plus = loss_of(net, x, labels);
            {
                let mut params = net.params_mut();
                params[pi].value.data_mut()[j] = orig - H;
            }
            let minus = loss_of(net, x, labels);
            {
                let mut params = net.params_mut();
                params[pi].value.data_mut()[j] = orig;
            }
            let numeric = (plus - minus) / (2.0 * H);
            let diff = (numeric - grads[j]).abs();
            let scale = numeric.abs().max(grads[j].abs()).max(1.0);
            assert!(
                diff / scale < TOL,
                "param {pi} element {j}: analytic {} vs numeric {numeric}",
                grads[j]
            );
        }
    }
}

/// Checks the gradient with respect to the *input* by central differences.
fn check_input_grads(net: &mut Sequential, x: &Tensor, labels: &[usize]) {
    net.zero_grad();
    let logits = net.forward(x, Mode::Train);
    let out = cross_entropy(&logits, labels);
    let gx = net.backward(&out.grad);
    for j in 0..x.len() {
        let mut xp = x.clone();
        xp.data_mut()[j] += H;
        let plus = loss_of(net, &xp, labels);
        let mut xm = x.clone();
        xm.data_mut()[j] -= H;
        let minus = loss_of(net, &xm, labels);
        let numeric = (plus - minus) / (2.0 * H);
        let diff = (numeric - gx.data()[j]).abs();
        let scale = numeric.abs().max(gx.data()[j].abs()).max(1.0);
        assert!(
            diff / scale < TOL,
            "input element {j}: analytic {} vs numeric {numeric}",
            gx.data()[j]
        );
    }
}

#[test]
fn dense_relu_dense_gradients() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut net = Sequential::new(vec![
        Dense::new(3, 5, &mut rng).into(),
        Activation::relu().into(),
        Dense::new(5, 2, &mut rng).into(),
    ]);
    let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
    check_param_grads(&mut net, &x, &[0, 1, 0, 1]);
    check_input_grads(&mut net, &x, &[0, 1, 0, 1]);
}

#[test]
fn tanh_and_sigmoid_gradients() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut net = Sequential::new(vec![
        Dense::new(2, 4, &mut rng).into(),
        Activation::tanh().into(),
        Dense::new(4, 4, &mut rng).into(),
        Activation::sigmoid().into(),
        Dense::new(4, 2, &mut rng).into(),
    ]);
    let x = Tensor::rand_uniform(&[3, 2], -1.0, 1.0, &mut rng);
    check_param_grads(&mut net, &x, &[1, 0, 1]);
}

#[test]
fn conv1d_pipeline_gradients() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = Sequential::new(vec![
        Conv1d::new(1, 3, 3, 1, &mut rng).into(),
        Activation::relu().into(),
        MaxPool1d::new(2).into(),
        Flatten::new().into(),
        Dense::new(3 * 3, 2, &mut rng).into(),
    ]);
    let x = Tensor::rand_uniform(&[2, 1, 6], -1.0, 1.0, &mut rng);
    check_param_grads(&mut net, &x, &[0, 1]);
    check_input_grads(&mut net, &x, &[0, 1]);
}

#[test]
fn conv2d_pipeline_gradients() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut net = Sequential::new(vec![
        Conv2d::new(1, 2, 3, 1, &mut rng).into(),
        Activation::leaky_relu().into(),
        MaxPool2d::new(2).into(),
        Flatten::new().into(),
        Dense::new(2 * 2 * 2, 2, &mut rng).into(),
    ]);
    let x = Tensor::rand_uniform(&[2, 1, 4, 4], -1.0, 1.0, &mut rng);
    check_param_grads(&mut net, &x, &[1, 0]);
    check_input_grads(&mut net, &x, &[1, 0]);
}

#[test]
fn bce_gradient_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(5);
    let logits = Tensor::rand_uniform(&[4, 1], -2.0, 2.0, &mut rng);
    let targets = [1.0, 0.0, 1.0, 0.0];
    let out = binary_cross_entropy_with_logits(&logits, &targets);
    for j in 0..4 {
        let mut lp = logits.clone();
        lp.data_mut()[j] += H;
        let plus = binary_cross_entropy_with_logits(&lp, &targets).loss;
        let mut lm = logits.clone();
        lm.data_mut()[j] -= H;
        let minus = binary_cross_entropy_with_logits(&lm, &targets).loss;
        let numeric = (plus - minus) / (2.0 * H);
        assert!((numeric - out.grad.data()[j]).abs() < TOL);
    }
}

#[test]
fn mse_gradient_matches_finite_difference() {
    let mut rng = StdRng::seed_from_u64(6);
    let pred = Tensor::rand_uniform(&[3, 2], -1.0, 1.0, &mut rng);
    let target = Tensor::rand_uniform(&[3, 2], -1.0, 1.0, &mut rng);
    let out = mse(&pred, &target);
    for j in 0..pred.len() {
        let mut pp = pred.clone();
        pp.data_mut()[j] += H;
        let plus = mse(&pp, &target).loss;
        let mut pm = pred.clone();
        pm.data_mut()[j] -= H;
        let minus = mse(&pm, &target).loss;
        let numeric = (plus - minus) / (2.0 * H);
        assert!((numeric - out.grad.data()[j]).abs() < TOL);
    }
}

#[test]
fn batchnorm_pipeline_gradients() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut net = Sequential::new(vec![
        Dense::new(3, 6, &mut rng).into(),
        noodle_nn::BatchNorm1d::new(6).into(),
        Activation::relu().into(),
        Dense::new(6, 2, &mut rng).into(),
    ]);
    let x = Tensor::rand_uniform(&[5, 3], -1.0, 1.0, &mut rng);
    check_param_grads(&mut net, &x, &[0, 1, 0, 1, 1]);
    check_input_grads(&mut net, &x, &[0, 1, 0, 1, 1]);
}
