//! Property-based tests for the tensor algebra and network invariants.

use noodle_nn::{softmax_rows, Activation, Dense, Mode, Sequential, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Matrix multiplication is associative (within float tolerance).
    #[test]
    fn matmul_associative(a in small_matrix(3, 4), b in small_matrix(4, 2), c in small_matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// `(A B)^T = B^T A^T`.
    #[test]
    fn transpose_of_product(a in small_matrix(3, 4), b in small_matrix(4, 2)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Elementwise addition commutes and `sub` undoes `add`.
    #[test]
    fn add_sub_inverse(a in small_matrix(4, 4), b in small_matrix(4, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        let restored = a.add(&b).sub(&b);
        for (x, y) in restored.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability vectors, invariant to per-row shifts.
    #[test]
    fn softmax_invariances(a in small_matrix(3, 5), shift in -50.0f32..50.0) {
        let p = softmax_rows(&a);
        for r in 0..3 {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        let shifted = softmax_rows(&a.add_scalar(shift));
        for (x, y) in p.data().iter().zip(shifted.data()) {
            prop_assert!((x - y).abs() < 1e-4, "softmax must be shift-invariant");
        }
    }

    /// Reshape preserves data; select_rows matches row views.
    #[test]
    fn reshape_and_select(a in small_matrix(4, 6)) {
        let r = a.reshape(&[6, 4]).unwrap();
        prop_assert_eq!(r.data(), a.data());
        let s = a.select_rows(&[2, 0]);
        prop_assert_eq!(&s.row(0), &a.row(2));
        prop_assert_eq!(&s.row(1), &a.row(0));
    }

    /// A network's eval-mode output is deterministic, and JSON round-trips
    /// preserve it exactly.
    #[test]
    fn network_eval_deterministic(seed in 0u64..500, input in small_matrix(2, 6)) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new(vec![
            Dense::new(6, 5, &mut rng).into(),
            Activation::relu().into(),
            Dense::new(5, 2, &mut rng).into(),
        ]);
        let a = net.forward(&input, Mode::Eval);
        let b = net.forward(&input, Mode::Eval);
        prop_assert_eq!(&a, &b);
        let mut restored = Sequential::from_json(&net.to_json().unwrap()).unwrap();
        let c = restored.forward(&input, Mode::Eval);
        prop_assert_eq!(&a, &c);
    }
}
