//! Sequential model container and a minibatch trainer.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layers::{softmax_rows, Layer, Mode, ParamMut};
use crate::loss::cross_entropy;
use crate::optim::Adam;
use crate::tensor::Tensor;

/// A feed-forward stack of [`Layer`]s applied in order.
///
/// # Examples
///
/// ```
/// use noodle_nn::{Activation, Dense, Mode, Sequential, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new(vec![
///     Dense::new(4, 8, &mut rng).into(),
///     Activation::relu().into(),
///     Dense::new(8, 2, &mut rng).into(),
/// ]);
/// let logits = net.forward(&Tensor::zeros(&[1, 4]), Mode::Eval);
/// assert_eq!(logits.shape(), &[1, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates a model from an ordered list of layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Appends a layer to the end of the stack.
    pub fn push(&mut self, layer: impl Into<Layer>) {
        self.layers.push(layer.into());
    }

    /// Runs the network forward.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode);
        }
        x
    }

    /// Backpropagates `grad_output` through every layer, accumulating
    /// parameter gradients, and returns the gradient at the input.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Mutable views of every parameter/gradient pair, in a stable order.
    pub fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.param_count()).sum()
    }

    /// Serializes the model (architecture and weights) to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes a model previously produced by [`Sequential::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if `json` is not a valid model.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Softmax class probabilities for a batch, in inference mode.
    pub fn predict_proba(&mut self, input: &Tensor) -> Tensor {
        let logits = self.forward(input, Mode::Eval);
        softmax_rows(&logits)
    }
}

/// Hyperparameters for [`fit_classifier`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 40, batch_size: 16, lr: 1e-3 }
    }
}

/// Per-epoch training record returned by [`fit_classifier`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Mean cross-entropy over the epoch's minibatches.
    pub loss: f32,
}

/// Trains `model` as a softmax classifier with Adam and cross-entropy.
///
/// `inputs` must be a batch tensor whose first dimension indexes samples and
/// matches `labels.len()`. Minibatch order is shuffled each epoch with `rng`.
/// Returns the per-epoch mean loss trace.
///
/// # Panics
///
/// Panics if `inputs` is empty or its first dimension differs from
/// `labels.len()`.
pub fn fit_classifier<R: Rng + ?Sized>(
    model: &mut Sequential,
    inputs: &Tensor,
    labels: &[usize],
    config: &TrainConfig,
    rng: &mut R,
) -> Vec<EpochStats> {
    let n = labels.len();
    assert!(n > 0, "cannot train on an empty dataset");
    assert_eq!(inputs.shape()[0], n, "inputs and labels disagree on sample count");
    let _span = noodle_telemetry::span!(
        "nn.fit",
        samples = n,
        epochs = config.epochs,
        batch_size = config.batch_size,
    );
    let batch_size = config.batch_size.clamp(1, n);
    let mut opt = Adam::new(config.lr);
    let mut order: Vec<usize> = (0..n).collect();
    let mut trace = Vec::with_capacity(config.epochs);
    // Gradient work is parallelized inside the layer kernels (batch-level
    // im2col/GEMM on the noodle-compute pool), so the minibatch loop stays
    // sequential and the shuffle/dropout RNG streams are untouched by the
    // thread count.
    let flops_before = noodle_compute::flops();
    let started = std::time::Instant::now();
    noodle_telemetry::gauge_set("compute.threads", noodle_compute::num_threads() as f64);
    for epoch in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let batch_x = select_samples(inputs, chunk);
            let batch_y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            model.zero_grad();
            let logits = model.forward(&batch_x, Mode::Train);
            let out = cross_entropy(&logits, &batch_y);
            model.backward(&out.grad);
            opt.step(&mut model.params_mut());
            epoch_loss += out.loss;
            batches += 1;
        }
        let mean_loss = epoch_loss / batches.max(1) as f32;
        noodle_telemetry::counter_add("nn.epochs", 1);
        noodle_telemetry::counter_add("nn.samples", n as u64);
        noodle_telemetry::gauge_set("nn.epoch_loss", mean_loss as f64);
        noodle_telemetry::histogram_record("nn.epoch_loss", mean_loss as f64);
        trace.push(EpochStats { epoch, loss: mean_loss });
    }
    let elapsed = started.elapsed().as_secs_f64();
    let gflop = (noodle_compute::flops() - flops_before) as f64 / 1e9;
    noodle_telemetry::gauge_set("nn.fit_gflop", gflop);
    if elapsed > 0.0 {
        let trained = (config.epochs * n) as f64;
        noodle_telemetry::gauge_set("nn.samples_per_sec", trained / elapsed);
        noodle_telemetry::gauge_set("nn.fit_gflops", gflop / elapsed);
    }
    trace
}

/// Selects samples along the first axis of a batch tensor of any rank.
pub(crate) fn select_samples(inputs: &Tensor, indices: &[usize]) -> Tensor {
    let sample_len: usize = inputs.shape()[1..].iter().product();
    let mut data = Vec::with_capacity(indices.len() * sample_len);
    for &i in indices {
        data.extend_from_slice(&inputs.data()[i * sample_len..(i + 1) * sample_len]);
    }
    let mut shape = inputs.shape().to_vec();
    shape[0] = indices.len();
    Tensor::from_vec(shape, data).expect("select_samples computes a consistent shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Activation;
    use crate::layers::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_data() -> (Tensor, Vec<usize>) {
        let x = Tensor::from_vec(vec![4, 2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]).unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Sequential::new(vec![
            Dense::new(2, 16, &mut rng).into(),
            Activation::tanh().into(),
            Dense::new(16, 2, &mut rng).into(),
        ]);
        let (x, y) = xor_data();
        let config = TrainConfig { epochs: 400, batch_size: 4, lr: 0.02 };
        let trace = fit_classifier(&mut net, &x, &y, &config, &mut rng);
        assert!(trace.last().unwrap().loss < 0.1, "final loss {}", trace.last().unwrap().loss);
        let probs = net.predict_proba(&x);
        assert_eq!(probs.argmax_rows(), y);
    }

    #[test]
    fn loss_decreases_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new(vec![Dense::new(1, 2, &mut rng).into()]);
        let x = Tensor::from_vec(vec![6, 1], vec![-2.0, -1.5, -1.0, 1.0, 1.5, 2.0]).unwrap();
        let y = vec![0, 0, 0, 1, 1, 1];
        let config = TrainConfig { epochs: 50, batch_size: 6, lr: 0.05 };
        let trace = fit_classifier(&mut net, &x, &y, &config, &mut rng);
        assert!(trace.last().unwrap().loss < trace.first().unwrap().loss);
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = Sequential::new(vec![
            Dense::new(3, 4, &mut rng).into(),
            Activation::relu().into(),
            Dense::new(4, 2, &mut rng).into(),
        ]);
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let before = net.predict_proba(&x);
        let json = net.to_json().unwrap();
        let mut restored = Sequential::from_json(&json).unwrap();
        let after = restored.predict_proba(&x);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Dense::new(3, 4, &mut rng).into(), // 12 + 4
            Dense::new(4, 2, &mut rng).into(), // 8 + 2
        ]);
        assert_eq!(net.param_count(), 26);
    }

    #[test]
    fn select_samples_any_rank() {
        let t = Tensor::from_vec(vec![3, 1, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = select_samples(&t, &[2, 0]);
        assert_eq!(s.shape(), &[2, 1, 2]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Sequential::new(vec![Dense::new(2, 3, &mut rng).into()]);
        let p = net.predict_proba(&Tensor::rand_uniform(&[5, 2], -1.0, 1.0, &mut rng));
        for r in 0..5 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
