//! Loss functions.
//!
//! Each loss returns the scalar loss averaged over the batch together with
//! the gradient of that scalar with respect to the network output, ready to
//! be fed to [`crate::Sequential::backward`].

use crate::layers::softmax_rows;
use crate::tensor::Tensor;

/// Result of evaluating a loss: the batch-mean scalar and the gradient with
/// respect to the predictions.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Batch-mean loss value.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the predictions.
    pub grad: Tensor,
}

/// Softmax cross-entropy over logits `[batch, classes]` with integer labels.
///
/// Combines the softmax and negative log-likelihood so the gradient is the
/// numerically friendly `softmax(x) - onehot(y)` (divided by the batch size).
///
/// # Panics
///
/// Panics if shapes disagree or any label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.ndim(), 2, "cross_entropy expects [batch, classes] logits");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch, "labels length must match batch size");
    let probs = softmax_rows(logits);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    let g = grad.data_mut();
    for (b, &y) in labels.iter().enumerate() {
        assert!(y < classes, "label {y} out of range for {classes} classes");
        let p = probs.at(&[b, y]).max(1e-12);
        loss -= p.ln();
        g[b * classes + y] -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    grad.map_inplace(|v| v * scale);
    LossOutput { loss: loss * scale, grad }
}

/// Binary cross-entropy on logits `[batch, 1]` with targets in `{0, 1}`
/// (or soft targets in `[0, 1]`).
///
/// Uses the log-sum-exp form so it is stable for large-magnitude logits; the
/// gradient is `sigmoid(x) - t` (divided by the batch size).
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn binary_cross_entropy_with_logits(logits: &Tensor, targets: &[f32]) -> LossOutput {
    assert_eq!(logits.ndim(), 2, "bce expects [batch, 1] logits");
    assert_eq!(logits.shape()[1], 1, "bce expects a single output column");
    let batch = logits.shape()[0];
    assert_eq!(targets.len(), batch, "targets length must match batch size");
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(&[batch, 1]);
    let g = grad.data_mut();
    for b in 0..batch {
        let x = logits.data()[b];
        let t = targets[b];
        // max(x,0) - x t + ln(1 + e^{-|x|})
        loss += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
        g[b] = crate::layers::sigmoid(x) - t;
    }
    let scale = 1.0 / batch as f32;
    grad.map_inplace(|v| v * scale);
    LossOutput { loss: loss * scale, grad }
}

/// Mean squared error between predictions and targets of identical shape.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn mse(predictions: &Tensor, targets: &Tensor) -> LossOutput {
    assert_eq!(predictions.shape(), targets.shape(), "mse requires matching shapes");
    let n = predictions.len().max(1) as f32;
    let diff = predictions.sub(targets);
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    LossOutput { loss, grad }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[1, 2]);
        let out = cross_entropy(&logits, &[0]);
        assert!((out.loss - 2.0f32.ln()).abs() < 1e-6);
        // grad = p - onehot = [0.5 - 1, 0.5]
        assert!((out.grad.data()[0] + 0.5).abs() < 1e-6);
        assert!((out.grad.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let logits = Tensor::from_vec(vec![1, 2], vec![10.0, -10.0]).unwrap();
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-3);
    }

    #[test]
    fn cross_entropy_batch_mean() {
        let logits = Tensor::zeros(&[4, 2]);
        let out = cross_entropy(&logits, &[0, 1, 0, 1]);
        assert!((out.loss - 2.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = cross_entropy(&logits, &[2]);
    }

    #[test]
    fn bce_at_zero_logit() {
        let logits = Tensor::zeros(&[1, 1]);
        let out = binary_cross_entropy_with_logits(&logits, &[1.0]);
        assert!((out.loss - 2.0f32.ln()).abs() < 1e-6);
        assert!((out.grad.data()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn bce_stable_for_extreme_logits() {
        let logits = Tensor::from_vec(vec![2, 1], vec![500.0, -500.0]).unwrap();
        let out = binary_cross_entropy_with_logits(&logits, &[1.0, 0.0]);
        assert!(out.loss.is_finite());
        assert!(out.loss < 1e-3);
        let wrong = binary_cross_entropy_with_logits(&logits, &[0.0, 1.0]);
        assert!(wrong.loss.is_finite());
        assert!(wrong.loss > 100.0);
    }

    #[test]
    fn mse_hand_computed() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let out = mse(&p, &t);
        assert!((out.loss - 2.5).abs() < 1e-6);
        assert_eq!(out.grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn mse_zero_for_equal_inputs() {
        let p = Tensor::from_slice(&[1.0, -1.0]);
        let out = mse(&p, &p);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.grad.data(), &[0.0, 0.0]);
    }
}
