//! # noodle-nn
//!
//! A from-scratch neural-network substrate for the NOODLE hardware-Trojan
//! detection pipeline: dense tensors, dense/convolutional layers with manual
//! backpropagation, standard losses, and SGD/Adam optimizers.
//!
//! The crate intentionally avoids heavyweight ML frameworks: NOODLE's
//! networks are small CNNs trained on a few hundred samples, so the hot
//! paths lower onto `noodle-compute` — convolutions via im2col onto a
//! cache-blocked GEMM, batches fanned out over the workspace thread pool —
//! while staying fully deterministic under a seeded RNG at *every* thread
//! count (see [`lowering`] and the compute crate's determinism contract)
//! and easy to verify with finite-difference gradient checks (see the
//! crate's integration tests).
//!
//! ## Quickstart
//!
//! ```
//! use noodle_nn::{fit_classifier, Activation, Dense, Sequential, Tensor, TrainConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), noodle_nn::ShapeError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut net = Sequential::new(vec![
//!     Dense::new(2, 8, &mut rng).into(),
//!     Activation::relu().into(),
//!     Dense::new(8, 2, &mut rng).into(),
//! ]);
//! let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.])?;
//! let y = vec![0, 0, 1, 1];
//! let trace = fit_classifier(&mut net, &x, &y, &TrainConfig::default(), &mut rng);
//! assert_eq!(trace.len(), TrainConfig::default().epochs);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod infer;
pub mod init;
mod layers;
pub mod loss;
pub mod lowering;
mod model;
pub mod optim;
mod quant;
mod tensor;

pub use infer::InferArena;
pub use layers::{
    sigmoid, softmax_rows, softmax_rows_inplace, Activation, ActivationKind, BatchNorm1d, Conv1d,
    Conv2d, Dense, Dropout, Flatten, Layer, MaxPool1d, MaxPool2d, Mode, ParamMut,
};
pub use model::{fit_classifier, EpochStats, Sequential, TrainConfig};
pub use optim::{Adam, Sgd};
pub use quant::{QLayer, QuantizedModel};
pub use tensor::{ShapeError, Tensor};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
        assert_send_sync::<Sequential>();
        assert_send_sync::<QuantizedModel>();
        assert_send_sync::<Layer>();
        assert_send_sync::<Adam>();
        assert_send_sync::<Sgd>();
        assert_send_sync::<ShapeError>();
    }
}
