//! Zero-allocation batched inference.
//!
//! [`InferArena`] owns two ping-pong activation buffers, one im2col
//! scratch vector, and the int8 scratch used by the quantized serving
//! path ([`crate::QuantizedModel`]). [`Sequential::infer_batch`] threads a batch through the
//! network by alternating between the two buffers — each layer reads the
//! previous layer's output from one buffer and writes into the other via
//! [`Layer::infer`](crate::Layer::infer), which resizes in place instead
//! of allocating. After one warmup call at the largest batch size every
//! buffer has reached its steady-state capacity and subsequent calls
//! perform no heap allocation at all (enforced by the crate's
//! `infer_zero_alloc` integration test under a counting allocator).
//!
//! The arithmetic is bit-identical to `forward(_, Mode::Eval)` followed by
//! [`softmax_rows`](crate::softmax_rows): every infer kernel replicates its
//! training counterpart's operation order exactly, and because each kernel
//! is per-sample (convolutions im2col one sample at a time, dense GEMM
//! accumulates each output row independently), row `i` of a batched result
//! is bit-identical to running sample `i` alone — which is what lets the
//! detect path micro-batch freely without disturbing verdicts.

use crate::layers::softmax_rows_inplace;
use crate::model::Sequential;
use crate::tensor::Tensor;

/// Reusable scratch space for [`Sequential::infer_batch`].
///
/// # Examples
///
/// ```
/// use noodle_nn::{Activation, Dense, InferArena, Mode, Sequential, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new(vec![
///     Dense::new(4, 8, &mut rng).into(),
///     Activation::relu().into(),
///     Dense::new(8, 2, &mut rng).into(),
/// ]);
/// let x = Tensor::zeros(&[3, 4]);
/// let mut arena = InferArena::new();
/// let logits = net.infer_batch(&x, &mut arena).clone();
/// assert_eq!(logits, net.forward(&x, Mode::Eval));
/// ```
#[derive(Debug, Default)]
pub struct InferArena {
    /// Ping-pong activation buffers; consecutive layers alternate between
    /// them so no layer ever reads and writes the same storage.
    pub(crate) bufs: [Tensor; 2],
    /// im2col scratch shared by every convolution layer (sized to the
    /// largest `cin·k·k · oh·ow` seen so far).
    pub(crate) cols: Vec<f32>,
    /// Quantized-activation scratch for the int8 serving path (unused —
    /// and never grown — by float inference).
    pub(crate) qbuf: Vec<i8>,
    /// i32 accumulator scratch for the int8 serving path.
    pub(crate) qacc: Vec<i32>,
}

impl InferArena {
    /// Creates an empty arena; buffers grow to their steady-state sizes on
    /// the first inference call and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sequential {
    /// Runs the network forward in inference mode using `arena`'s buffers,
    /// returning the logits as a view into the arena.
    ///
    /// Bit-identical to `forward(input, Mode::Eval)` at every batch size
    /// and thread count, but takes `&self` (no layer caches are written)
    /// and performs no heap allocation once the arena has warmed up.
    pub fn infer_batch<'a>(&self, input: &Tensor, arena: &'a mut InferArena) -> &'a Tensor {
        let idx = self.infer_into(input, arena);
        &arena.bufs[idx]
    }

    /// Softmax class probabilities for a batch via [`Self::infer_batch`]:
    /// bit-identical to [`Self::predict_proba`] without allocating.
    pub fn infer_proba<'a>(&self, input: &Tensor, arena: &'a mut InferArena) -> &'a Tensor {
        let idx = self.infer_into(input, arena);
        softmax_rows_inplace(&mut arena.bufs[idx]);
        &arena.bufs[idx]
    }

    /// Threads `input` through the layers, alternating between the arena's
    /// two buffers, and returns the index of the buffer holding the output.
    fn infer_into(&self, input: &Tensor, arena: &mut InferArena) -> usize {
        let layers = self.layers();
        if layers.is_empty() {
            arena.bufs[0].copy_from(input);
            return 0;
        }
        let mut cur = 0;
        for (i, layer) in layers.iter().enumerate() {
            let (first, second) = arena.bufs.split_at_mut(1);
            if i == 0 {
                layer.infer(input, &mut first[0], &mut arena.cols);
                cur = 0;
            } else if cur == 0 {
                layer.infer(&first[0], &mut second[0], &mut arena.cols);
                cur = 1;
            } else {
                layer.infer(&second[0], &mut first[0], &mut arena.cols);
                cur = 0;
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{softmax_rows, Activation, BatchNorm1d, Conv2d, Dense, Dropout};
    use crate::layers::{Flatten, MaxPool2d, Mode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn infer_matches_eval_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new(vec![
            Conv2d::new(2, 8, 3, 1, &mut rng).into(),
            Activation::relu().into(),
            MaxPool2d::new(2).into(),
            Flatten::new().into(),
            Dropout::new(0.2, 17).into(),
            Dense::new(8 * 6 * 6, 16, &mut rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(16, 2, &mut rng).into(),
        ]);
        let x = Tensor::rand_uniform(&[5, 2, 12, 12], -1.0, 1.0, &mut rng);
        let expected = net.forward(&x, Mode::Eval);
        let mut arena = InferArena::new();
        let got = net.infer_batch(&x, &mut arena);
        assert_eq!(got, &expected);
        let expected_p = softmax_rows(&expected);
        let got_p = net.infer_proba(&x, &mut arena);
        assert_eq!(got_p, &expected_p);
    }

    #[test]
    fn batched_rows_match_single_sample_calls_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Sequential::new(vec![
            Conv2d::new(2, 4, 3, 1, &mut rng).into(),
            Activation::relu().into(),
            MaxPool2d::new(2).into(),
            Flatten::new().into(),
            Dense::new(4 * 6 * 6, 2, &mut rng).into(),
        ]);
        let x = Tensor::rand_uniform(&[7, 2, 12, 12], -1.0, 1.0, &mut rng);
        let mut arena = InferArena::new();
        let batched = net.infer_proba(&x, &mut arena).clone();
        let sample_len = 2 * 12 * 12;
        let mut solo_arena = InferArena::new();
        for i in 0..7 {
            let xi = Tensor::from_vec(
                vec![1, 2, 12, 12],
                x.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
            )
            .unwrap();
            let solo = net.infer_proba(&xi, &mut solo_arena);
            assert_eq!(solo.row(0), batched.row(i), "row {i} differs from solo inference");
        }
    }

    #[test]
    fn bn_and_conv1d_infer_match_forward() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = Sequential::new(vec![
            crate::layers::Conv1d::new(1, 4, 3, 1, &mut rng).into(),
            Activation::tanh().into(),
            crate::layers::MaxPool1d::new(2).into(),
            Flatten::new().into(),
            Dense::new(4 * 5, 6, &mut rng).into(),
            BatchNorm1d::new(6).into(),
            Activation::sigmoid().into(),
            Dense::new(6, 2, &mut rng).into(),
        ]);
        let x = Tensor::rand_uniform(&[4, 1, 10], -1.0, 1.0, &mut rng);
        // Train once so batch-norm running statistics are non-trivial.
        let _ = net.forward(&x, Mode::Train);
        let expected = net.forward(&x, Mode::Eval);
        let mut arena = InferArena::new();
        assert_eq!(net.infer_batch(&x, &mut arena), &expected);
    }

    #[test]
    fn empty_model_copies_input() {
        let net = Sequential::new(vec![]);
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut arena = InferArena::new();
        assert_eq!(net.infer_batch(&x, &mut arena), &x);
    }
}
