//! Gradient-descent optimizers.

use serde::{Deserialize, Serialize};

use crate::layers::ParamMut;
use crate::tensor::Tensor;

/// Stochastic gradient descent with optional momentum and L2 weight decay.
///
/// # Examples
///
/// ```
/// use noodle_nn::{Dense, Layer, Mode, Sgd, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer: Layer = Dense::new(2, 1, &mut rng).into();
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// let x = Tensor::ones(&[1, 2]);
/// let _ = layer.forward(&x, Mode::Train);
/// let _ = layer.backward(&Tensor::ones(&[1, 1]));
/// opt.step(&mut layer.params_mut());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive, got {lr}");
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Sets the momentum coefficient (0 disables momentum).
    pub fn momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one update to every parameter.
    ///
    /// Parameters must be passed in the same order on every call; the
    /// optimizer keys its momentum state by position.
    pub fn step(&mut self, params: &mut [ParamMut<'_>]) {
        if self.velocity.len() < params.len() {
            for p in params.iter().skip(self.velocity.len()) {
                self.velocity.push(Tensor::zeros(p.value.shape()));
            }
        }
        for (i, p) in params.iter_mut().enumerate() {
            let mut update = p.grad.clone();
            if self.weight_decay > 0.0 {
                update.axpy(self.weight_decay, p.value);
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for (vj, &uj) in v.data_mut().iter_mut().zip(update.data()) {
                    *vj = self.momentum * *vj + uj;
                }
                update = v.clone();
            }
            p.value.axpy(-self.lr, &update);
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with learning rate `lr` and the standard defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive, got {lr}");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets the exponential-decay rates for the moment estimates.
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one Adam update to every parameter.
    ///
    /// Parameters must be passed in the same order on every call; the
    /// optimizer keys its moment state by position.
    pub fn step(&mut self, params: &mut [ParamMut<'_>]) {
        if self.m.len() < params.len() {
            for p in params.iter().skip(self.m.len()) {
                self.m.push(Tensor::zeros(p.value.shape()));
                self.v.push(Tensor::zeros(p.value.shape()));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let value = p.value.data_mut();
            let grad = p.grad.data();
            for j in 0..value.len() {
                let g = grad[j] + self.weight_decay * value[j];
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g;
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g * g;
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                value[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param() -> (Tensor, Tensor) {
        // minimize f(w) = w^2 starting at w = 4; grad = 2w
        (Tensor::from_slice(&[4.0]), Tensor::zeros(&[1]))
    }

    #[test]
    fn sgd_descends_quadratic() {
        let (mut w, mut g) = quadratic_param();
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            g.data_mut()[0] = 2.0 * w.data()[0];
            opt.step(&mut [ParamMut { value: &mut w, grad: &mut g }]);
        }
        assert!(w.data()[0].abs() < 1e-3, "w = {}", w.data()[0]);
    }

    #[test]
    fn sgd_momentum_descends_quadratic() {
        let (mut w, mut g) = quadratic_param();
        let mut opt = Sgd::new(0.05).momentum(0.9);
        for _ in 0..200 {
            g.data_mut()[0] = 2.0 * w.data()[0];
            opt.step(&mut [ParamMut { value: &mut w, grad: &mut g }]);
        }
        assert!(w.data()[0].abs() < 1e-3, "w = {}", w.data()[0]);
    }

    #[test]
    fn adam_descends_quadratic() {
        let (mut w, mut g) = quadratic_param();
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            g.data_mut()[0] = 2.0 * w.data()[0];
            opt.step(&mut [ParamMut { value: &mut w, grad: &mut g }]);
        }
        assert!(w.data()[0].abs() < 1e-2, "w = {}", w.data()[0]);
    }

    #[test]
    fn weight_decay_shrinks_weights_with_zero_grad() {
        let mut w = Tensor::from_slice(&[1.0]);
        let mut g = Tensor::zeros(&[1]);
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(&mut [ParamMut { value: &mut w, grad: &mut g }]);
        assert!((w.data()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ~lr in magnitude.
        let mut w = Tensor::from_slice(&[0.0]);
        let mut g = Tensor::from_slice(&[3.0]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [ParamMut { value: &mut w, grad: &mut g }]);
        assert!((w.data()[0] + 0.01).abs() < 1e-4, "w = {}", w.data()[0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }
}
