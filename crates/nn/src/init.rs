//! Weight-initialization helpers.

/// Glorot/Xavier uniform limit: `sqrt(6 / (fan_in + fan_out))`.
///
/// Weights drawn uniformly from `[-limit, limit]` keep activation variance
/// approximately constant through linear layers.
pub fn glorot_uniform_limit(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out).max(1) as f32).sqrt()
}

/// He/Kaiming uniform limit: `sqrt(6 / fan_in)`, appropriate for layers
/// followed by ReLU activations.
pub fn he_uniform_limit(fan_in: usize) -> f32 {
    (6.0 / fan_in.max(1) as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_limit_formula() {
        assert!((glorot_uniform_limit(3, 3) - 1.0).abs() < 1e-6);
        assert!((glorot_uniform_limit(100, 50) - (6.0f32 / 150.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn he_limit_formula() {
        assert!((he_uniform_limit(6) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_fans_do_not_divide_by_zero() {
        assert!(glorot_uniform_limit(0, 0).is_finite());
        assert!(he_uniform_limit(0).is_finite());
    }
}
