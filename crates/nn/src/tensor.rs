//! A minimal dense tensor of `f32` values with the operations needed by the
//! neural-network layers in this crate.
//!
//! The tensor is deliberately simple: row-major contiguous storage, explicit
//! shapes, and loop-based kernels. At NOODLE's dataset scale (hundreds of
//! samples, networks with tens of thousands of parameters) this is more than
//! fast enough, fully deterministic, and easy to verify against hand-computed
//! values in tests.

use std::fmt;

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Error produced when constructing or combining [`Tensor`]s with
/// incompatible shapes or data lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// A dense, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use noodle_nn::Tensor;
///
/// # fn main() -> Result<(), noodle_nn::ShapeError> {
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::ones(&[2, 2]);
/// let sum = a.add(&b);
/// assert_eq!(sum.data(), &[2.0, 3.0, 4.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor from a shape and a flat row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len()` does not equal the product of
    /// the dimensions in `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(ShapeError::new(format!(
                "shape {:?} implies {} elements but {} were provided",
                shape,
                expected,
                data.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![0.0; len] }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; len] }
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Self { shape: vec![values.len()], data: values.to_vec() }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.random_range(lo..hi)).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// Creates a tensor with elements drawn from a standard normal
    /// distribution (Box–Muller transform), scaled by `std`.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1 = rng.random_range(f32::EPSILON..1.0f32);
            let u2: f32 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < len {
                data.push(r * theta.sin() * std);
            }
        }
        Self { shape: shape.to_vec(), data }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// The flat row-major data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the tensor in place, preserving the element order.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the new shape does not have the same
    /// number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, ShapeError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
                self.shape,
                self.data.len(),
                shape,
                expected
            )));
        }
        Ok(Self { shape: shape.to_vec(), data: self.data.clone() })
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} does not match tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (dim, (&i, &s)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dimension {dim} of size {s}");
            off = off * s + i;
        }
        off
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map requires identical shapes");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// Elementwise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Adds `value` to every element.
    pub fn add_scalar(&self, value: f32) -> Self {
        self.map(|x| x + value)
    }

    /// Multiplies every element by `value`.
    pub fn scale(&self, value: f32) -> Self {
        self.map(|x| x * value)
    }

    /// In-place `self += other * alpha` (AXPY). Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy requires identical shapes");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Matrix multiplication of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Lowered onto the row-parallel, cache-blocked GEMM kernel in
    /// `noodle-compute`; each output element accumulates over `k` in
    /// ascending order, so results are bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.ndim(), 2, "matmul lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        noodle_compute::gemm(m, k, n, &self.data, &other.data, &mut out);
        Self { shape: vec![m, n], data: out }
    }

    /// `self @ other^T` for `self: [m, k]` and `other: [n, k]`, without
    /// materializing the transpose — both operands stream row-major.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the `k` dimensions differ.
    pub fn matmul_bt(&self, other: &Self) -> Self {
        assert_eq!(self.ndim(), 2, "matmul_bt lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul_bt rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_bt shared dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        noodle_compute::gemm_bt(m, k, n, &self.data, &other.data, &mut out);
        Self { shape: vec![m, n], data: out }
    }

    /// `self^T @ other` for `self: [k, m]` and `other: [k, n]`, without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the `k` dimensions differ.
    pub fn matmul_at(&self, other: &Self) -> Self {
        assert_eq!(self.ndim(), 2, "matmul_at lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul_at rhs must be rank 2, got {:?}", other.shape);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_at shared dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        noodle_compute::gemm_at(k, m, n, &self.data, &other.data, &mut out);
        Self { shape: vec![m, n], data: out }
    }

    /// In-place `self += a^T @ b` for `a: [k, m]`, `b: [k, n]` and
    /// `self: [m, n]` — the gradient-accumulation primitive
    /// (`dW += dY^T @ X`) with no temporary and no transpose.
    ///
    /// # Panics
    ///
    /// Panics on any rank or dimension mismatch.
    pub fn add_matmul_at(&mut self, a: &Self, b: &Self) {
        assert_eq!(self.ndim(), 2, "add_matmul_at target must be rank 2, got {:?}", self.shape);
        assert_eq!(a.ndim(), 2, "add_matmul_at lhs must be rank 2, got {:?}", a.shape);
        assert_eq!(b.ndim(), 2, "add_matmul_at rhs must be rank 2, got {:?}", b.shape);
        let (k, m) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "add_matmul_at shared dimensions differ: {k} vs {k2}");
        assert_eq!(self.shape, vec![m, n], "add_matmul_at target must be [{m}, {n}]");
        noodle_compute::gemm_at(k, m, n, &a.data, &b.data, &mut self.data);
    }

    /// Transpose of a rank-2 tensor (tiled so the writes stay cache-local
    /// instead of striding column-major through the whole output).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.ndim(), 2, "transpose requires rank 2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0f32; m * n];
        noodle_compute::transpose(m, n, &self.data, &mut data);
        Self { shape: vec![n, m], data }
    }

    /// Copies `src`'s shape and contents into `self`, reusing `self`'s
    /// existing allocation when it is large enough (unlike `clone()`,
    /// which always allocates). Used by layers to cache forward inputs
    /// without a fresh allocation per call.
    pub fn copy_from(&mut self, src: &Self) {
        self.shape.clone_from(&src.shape);
        self.data.clone_from(&src.data);
    }

    /// Reshapes `self` to `shape` in place, resizing the backing storage and
    /// reusing its capacity (no allocation once the capacity suffices).
    /// Element values after a resize are unspecified: callers are expected
    /// to overwrite every element. Used by the inference arena to recycle
    /// activation buffers across forward calls.
    pub fn resize_in_place(&mut self, shape: &[usize]) {
        let len: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(len, 0.0);
    }

    /// Returns row `i` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row requires rank 2, got {:?}", self.shape);
        let n = self.shape[1];
        assert!(i < self.shape[0], "row {i} out of bounds for {} rows", self.shape[0]);
        &self.data[i * n..(i + 1) * n]
    }

    /// Stacks 1-D tensors of equal length into a rank-2 tensor `[rows, cols]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `rows` is empty or the rows have unequal
    /// lengths.
    pub fn stack_rows(rows: &[Vec<f32>]) -> Result<Self, ShapeError> {
        let Some(first) = rows.first() else {
            return Err(ShapeError::new("cannot stack zero rows"));
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(ShapeError::new(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self { shape: vec![rows.len(), cols], data })
    }

    /// Concatenates rank-2 tensors along the column axis
    /// (`[b, n1] ++ [b, n2] -> [b, n1 + n2]`).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `parts` is empty, any part is not rank 2,
    /// or the row counts differ.
    pub fn concat_cols(parts: &[&Self]) -> Result<Self, ShapeError> {
        let Some(first) = parts.first() else {
            return Err(ShapeError::new("cannot concat zero tensors"));
        };
        if first.ndim() != 2 {
            return Err(ShapeError::new("concat_cols requires rank-2 tensors"));
        }
        let rows = first.shape[0];
        let mut total_cols = 0;
        for part in parts {
            if part.ndim() != 2 {
                return Err(ShapeError::new("concat_cols requires rank-2 tensors"));
            }
            if part.shape[0] != rows {
                return Err(ShapeError::new(format!(
                    "row count mismatch: {} vs {}",
                    part.shape[0], rows
                )));
            }
            total_cols += part.shape[1];
        }
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for part in parts {
                data.extend_from_slice(part.row(r));
            }
        }
        Ok(Self { shape: vec![rows, total_cols], data })
    }

    /// Selects a subset of rows from a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        assert_eq!(self.ndim(), 2, "select_rows requires rank 2, got {:?}", self.shape);
        let cols = self.shape[1];
        let mut data = Vec::with_capacity(indices.len() * cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self { shape: vec![indices.len(), cols], data }
    }

    /// Index of the maximum value within each row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires rank 2, got {:?}", self.shape);
        assert!(self.shape[1] > 0, "argmax_rows requires at least one column");
        (0..self.shape[0])
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 3], vec![0.0; 6]).is_ok());
        assert!(Tensor::from_vec(vec![2, 3], vec![0.0; 5]).is_err());
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 2]);
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(&[3], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let id = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(&[2, 1]), 6.0);
    }

    #[test]
    fn transposed_operand_variants_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = Tensor::rand_uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, &mut rng); // b^T: [6, 5]
        let via_bt = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(via_bt.shape(), &[4, 5]);
        for (x, y) in via_bt.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
        let c = Tensor::rand_uniform(&[6, 3], -1.0, 1.0, &mut rng); // a^T would be [... , 4]
        let at = Tensor::rand_uniform(&[6, 4], -1.0, 1.0, &mut rng);
        let via_at = at.matmul_at(&c);
        let explicit_at = at.transpose().matmul(&c);
        assert_eq!(via_at.shape(), &[4, 3]);
        for (x, y) in via_at.data().iter().zip(explicit_at.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn add_matmul_at_accumulates() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let mut acc = Tensor::ones(&[2, 2]);
        acc.add_matmul_at(&a, &b);
        // a^T @ b = [[1,3],[2,4]] @ [[5,6],[7,8]] = [[26,30],[38,44]], plus ones.
        assert_eq!(acc.data(), &[27.0, 31.0, 39.0, 45.0]);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut dst = Tensor::zeros(&[4, 4]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        let small = Tensor::from_slice(&[9.0]);
        dst.copy_from(&small);
        assert_eq!(dst, small);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 3.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.norm_sq(), 14.0);
    }

    #[test]
    fn stack_and_rows() {
        let t = Tensor::stack_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        assert!(Tensor::stack_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Tensor::stack_rows(&[]).is_err());
    }

    #[test]
    fn concat_cols_works() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(vec![2, 1], vec![9.0, 8.0]).unwrap();
        let c = Tensor::concat_cols(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn concat_cols_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(Tensor::concat_cols(&[&a, &b]).is_err());
        assert!(Tensor::concat_cols(&[]).is_err());
    }

    #[test]
    fn select_rows_subsets() {
        let a = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.9, 3.0, 2.0, 1.0]).unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let b = a.reshape(&[2, 2]).unwrap();
        assert_eq!(b.at(&[1, 0]), 3.0);
        assert!(a.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn randn_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var =
            t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / (t.len() as f32 - 1.0);
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn rand_uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[2]);
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }
}
