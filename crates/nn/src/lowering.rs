//! im2col/col2im lowering used by the convolution layers.
//!
//! A stride-1, symmetrically zero-padded convolution over one sample is
//! lowered to a single GEMM: the input patches are unrolled into a
//! `[cin * kh * kw, out_positions]` column matrix (`im2col`), the kernel
//! tensor is viewed as a `[cout, cin * kh * kw]` matrix, and the product
//! is the `[cout, out_positions]` output map. The transposed lowering
//! (`col2im`) scatters column-space gradients back onto the input grid.
//!
//! Row order within the column matrix is `(ci, ky, kx)` — identical to
//! the kernel tensor's memory layout — so the GEMM accumulates partial
//! products in exactly the order the former nested-loop kernels did,
//! keeping forward outputs bit-identical to the pre-lowering
//! implementation.
//!
//! These functions are `pub` so the benchmark harness can measure the
//! lowering in isolation; they are not part of the supported model API.

use noodle_profile::{EventKind, KernelTimer};

/// Unrolls one `[cin, h, w]` sample into `cols = [cin * k * k, oh * ow]`
/// for a stride-1 convolution with square kernel `k` and symmetric zero
/// padding `pad`, where `oh = h + 2*pad - k + 1` (and likewise `ow`).
///
/// `cols` is a caller-owned scratch buffer; every element is written
/// (padding positions are zero-filled), so it can be reused across
/// samples without clearing.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn im2col_2d(
    x: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    k: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    assert_eq!(x.len(), cin * h * w, "im2col_2d: input length mismatch");
    assert_eq!(cols.len(), cin * k * k * oh * ow, "im2col_2d: cols length mismatch");
    let _prof = KernelTimer::start(EventKind::Im2col, 0, (4 * (x.len() + cols.len())) as u64);
    for ci in 0..cin {
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut cols[((ci * k + ky) * k + kx) * (oh * ow)..][..oh * ow];
                // Valid output columns: pad <= ox + kx < pad + w.
                let lo = pad.saturating_sub(kx);
                let hi = (pad + w).saturating_sub(kx).min(ow);
                for oy in 0..oh {
                    let dst = &mut row[oy * ow..][..ow];
                    let sy = oy + ky;
                    if sy < pad || sy >= pad + h || lo >= hi {
                        dst.fill(0.0);
                        continue;
                    }
                    dst[..lo].fill(0.0);
                    dst[hi..].fill(0.0);
                    let src = &x[(ci * h + (sy - pad)) * w..][..w];
                    dst[lo..hi].copy_from_slice(&src[lo + kx - pad..hi + kx - pad]);
                }
            }
        }
    }
}

/// Accumulates column-space gradients `cols = [cin * k * k, oh * ow]`
/// back onto the `[cin, h, w]` input-gradient grid (`gx += scatter(cols)`),
/// the adjoint of [`im2col_2d`].
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)]
pub fn col2im_2d(
    cols: &[f32],
    cin: usize,
    h: usize,
    w: usize,
    k: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    gx: &mut [f32],
) {
    assert_eq!(gx.len(), cin * h * w, "col2im_2d: grad length mismatch");
    assert_eq!(cols.len(), cin * k * k * oh * ow, "col2im_2d: cols length mismatch");
    let _prof = KernelTimer::start(
        EventKind::Col2im,
        cols.len() as u64,
        (4 * (gx.len() + cols.len())) as u64,
    );
    for ci in 0..cin {
        for ky in 0..k {
            for kx in 0..k {
                let row = &cols[((ci * k + ky) * k + kx) * (oh * ow)..][..oh * ow];
                let lo = pad.saturating_sub(kx);
                let hi = (pad + w).saturating_sub(kx).min(ow);
                if lo >= hi {
                    continue;
                }
                for oy in 0..oh {
                    let sy = oy + ky;
                    if sy < pad || sy >= pad + h {
                        continue;
                    }
                    let src = &row[oy * ow..][..ow];
                    let dst = &mut gx[(ci * h + (sy - pad)) * w..][..w];
                    for (d, s) in dst[lo + kx - pad..hi + kx - pad].iter_mut().zip(&src[lo..hi]) {
                        *d += *s;
                    }
                }
            }
        }
    }
}

/// Unrolls one `[cin, len]` sample into `cols = [cin * k, out_len]` for a
/// stride-1 convolution with kernel width `k` and symmetric zero padding
/// `pad`, where `out_len = len + 2*pad - k + 1`. The 1-D analogue of
/// [`im2col_2d`]; every element of `cols` is written.
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn im2col_1d(
    x: &[f32],
    cin: usize,
    len: usize,
    k: usize,
    pad: usize,
    out_len: usize,
    cols: &mut [f32],
) {
    assert_eq!(x.len(), cin * len, "im2col_1d: input length mismatch");
    assert_eq!(cols.len(), cin * k * out_len, "im2col_1d: cols length mismatch");
    let _prof = KernelTimer::start(EventKind::Im2col, 0, (4 * (x.len() + cols.len())) as u64);
    for ci in 0..cin {
        for kk in 0..k {
            let row = &mut cols[(ci * k + kk) * out_len..][..out_len];
            // Valid output positions: pad <= t + kk < pad + len.
            let lo = pad.saturating_sub(kk);
            let hi = (pad + len).saturating_sub(kk).min(out_len);
            if lo >= hi {
                row.fill(0.0);
                continue;
            }
            row[..lo].fill(0.0);
            row[hi..].fill(0.0);
            let src = &x[ci * len..][..len];
            row[lo..hi].copy_from_slice(&src[lo + kk - pad..hi + kk - pad]);
        }
    }
}

/// Accumulates column-space gradients `cols = [cin * k, out_len]` back
/// onto the `[cin, len]` input-gradient grid, the adjoint of
/// [`im2col_1d`].
///
/// # Panics
///
/// Panics if the slice lengths do not match the given dimensions.
pub fn col2im_1d(
    cols: &[f32],
    cin: usize,
    len: usize,
    k: usize,
    pad: usize,
    out_len: usize,
    gx: &mut [f32],
) {
    assert_eq!(gx.len(), cin * len, "col2im_1d: grad length mismatch");
    assert_eq!(cols.len(), cin * k * out_len, "col2im_1d: cols length mismatch");
    let _prof = KernelTimer::start(
        EventKind::Col2im,
        cols.len() as u64,
        (4 * (gx.len() + cols.len())) as u64,
    );
    for ci in 0..cin {
        for kk in 0..k {
            let row = &cols[(ci * k + kk) * out_len..][..out_len];
            let lo = pad.saturating_sub(kk);
            let hi = (pad + len).saturating_sub(kk).min(out_len);
            if lo >= hi {
                continue;
            }
            let dst = &mut gx[ci * len..][..len];
            for (d, s) in dst[lo + kk - pad..hi + kk - pad].iter_mut().zip(&row[lo..hi]) {
                *d += *s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference im2col written as the direct index formula.
    #[allow(clippy::too_many_arguments)]
    fn im2col_2d_naive(
        x: &[f32],
        cin: usize,
        h: usize,
        w: usize,
        k: usize,
        pad: usize,
        oh: usize,
        ow: usize,
    ) -> Vec<f32> {
        let mut cols = vec![0.0; cin * k * k * oh * ow];
        for ci in 0..cin {
            for ky in 0..k {
                for kx in 0..k {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let (sy, sx) = (oy + ky, ox + kx);
                            let v = if sy >= pad && sy < pad + h && sx >= pad && sx < pad + w {
                                x[(ci * h + (sy - pad)) * w + (sx - pad)]
                            } else {
                                0.0
                            };
                            cols[(((ci * k + ky) * k + kx) * oh + oy) * ow + ox] = v;
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn im2col_2d_matches_naive_indexing() {
        for (cin, h, w, k, pad) in [(1, 3, 3, 2, 0), (2, 4, 5, 3, 1), (3, 2, 2, 3, 2)] {
            let (oh, ow) = (h + 2 * pad - k + 1, w + 2 * pad - k + 1);
            let x: Vec<f32> = (0..cin * h * w).map(|i| i as f32 + 1.0).collect();
            // Poison the scratch to prove every element is rewritten.
            let mut cols = vec![f32::NAN; cin * k * k * oh * ow];
            im2col_2d(&x, cin, h, w, k, pad, oh, ow, &mut cols);
            assert_eq!(cols, im2col_2d_naive(&x, cin, h, w, k, pad, oh, ow));
        }
    }

    #[test]
    fn col2im_2d_is_adjoint_of_im2col_2d() {
        // <im2col(x), c> == <x, col2im(c)> for the scatter/gather pair.
        let (cin, h, w, k, pad) = (2, 3, 4, 3, 1);
        let (oh, ow) = (h + 2 * pad - k + 1, w + 2 * pad - k + 1);
        let x: Vec<f32> = (0..cin * h * w).map(|i| (i as f32).sin()).collect();
        let c: Vec<f32> = (0..cin * k * k * oh * ow).map(|i| (i as f32).cos()).collect();
        let mut cols = vec![0.0; c.len()];
        im2col_2d(&x, cin, h, w, k, pad, oh, ow, &mut cols);
        let lhs: f64 = cols.iter().zip(&c).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let mut gx = vec![0.0; x.len()];
        col2im_2d(&c, cin, h, w, k, pad, oh, ow, &mut gx);
        let rhs: f64 = x.iter().zip(&gx).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn im2col_1d_matches_direct_indexing() {
        for (cin, len, k, pad) in [(1, 4, 2, 0), (2, 5, 3, 1), (1, 2, 3, 2)] {
            let out_len = len + 2 * pad - k + 1;
            let x: Vec<f32> = (0..cin * len).map(|i| i as f32 + 1.0).collect();
            let mut cols = vec![f32::NAN; cin * k * out_len];
            im2col_1d(&x, cin, len, k, pad, out_len, &mut cols);
            for ci in 0..cin {
                for kk in 0..k {
                    for t in 0..out_len {
                        let src = t + kk;
                        let expect = if src >= pad && src < pad + len {
                            x[ci * len + (src - pad)]
                        } else {
                            0.0
                        };
                        assert_eq!(cols[(ci * k + kk) * out_len + t], expect);
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_1d_is_adjoint_of_im2col_1d() {
        let (cin, len, k, pad) = (2, 5, 3, 1);
        let out_len = len + 2 * pad - k + 1;
        let x: Vec<f32> = (0..cin * len).map(|i| (i as f32).sin()).collect();
        let c: Vec<f32> = (0..cin * k * out_len).map(|i| (i as f32).cos()).collect();
        let mut cols = vec![0.0; c.len()];
        im2col_1d(&x, cin, len, k, pad, out_len, &mut cols);
        let lhs: f64 = cols.iter().zip(&c).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let mut gx = vec![0.0; x.len()];
        col2im_1d(&c, cin, len, k, pad, out_len, &mut gx);
        let rhs: f64 = x.iter().zip(&gx).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch: {lhs} vs {rhs}");
    }
}
