//! 1-D convolution over `[batch, channels, length]` inputs.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::ParamMut;
use crate::init;
use crate::tensor::Tensor;

/// A 1-D convolution layer with stride 1 and symmetric zero padding.
///
/// Kernels are stored as `[out_channels, in_channels, kernel]`. The output
/// length is `len + 2 * padding - kernel + 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    padding: usize,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a 1-D convolution with He-uniform initialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        let fan_in = in_channels * kernel;
        let limit = init::he_uniform_limit(fan_in);
        Self {
            weight: Tensor::rand_uniform(&[out_channels, in_channels, kernel], -limit, limit, rng),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            padding,
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }

    /// Output length for an input of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if the padded length is shorter than the kernel.
    pub fn output_len(&self, len: usize) -> usize {
        let padded = len + 2 * self.padding;
        assert!(padded + 1 > self.kernel(), "input length {len} too short for kernel");
        padded - self.kernel() + 1
    }

    pub(crate) fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 3, "Conv1d expects [batch, ch, len], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels(),
            "Conv1d expects {} input channels, got {}",
            self.in_channels(),
            input.shape()[1]
        );
        self.cached_input = Some(input.clone());
        let (batch, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let out_len = self.output_len(len);
        let mut out = Tensor::zeros(&[batch, cout, out_len]);
        let x = input.data();
        let w = self.weight.data();
        let bias = self.bias.data();
        let o = out.data_mut();
        for b in 0..batch {
            for co in 0..cout {
                for t in 0..out_len {
                    let mut acc = bias[co];
                    for ci in 0..cin {
                        for kk in 0..k {
                            let src = t + kk;
                            if src < pad || src >= pad + len {
                                continue;
                            }
                            let xi = x[(b * cin + ci) * len + (src - pad)];
                            acc += xi * w[(co * cin + ci) * k + kk];
                        }
                    }
                    o[(b * cout + co) * out_len + t] = acc;
                }
            }
        }
        out
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv1d::backward called before forward");
        let (batch, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let out_len = self.output_len(len);
        assert_eq!(grad_output.shape(), &[batch, cout, out_len]);
        let x = input.data();
        let go = grad_output.data();
        let w = self.weight.data();
        let gw = self.grad_weight.data_mut();
        let gb = self.grad_bias.data_mut();
        let mut grad_input = Tensor::zeros(&[batch, cin, len]);
        let gi = grad_input.data_mut();
        for b in 0..batch {
            for co in 0..cout {
                for t in 0..out_len {
                    let g = go[(b * cout + co) * out_len + t];
                    if g == 0.0 {
                        continue;
                    }
                    gb[co] += g;
                    for ci in 0..cin {
                        for kk in 0..k {
                            let src = t + kk;
                            if src < pad || src >= pad + len {
                                continue;
                            }
                            let xi_idx = (b * cin + ci) * len + (src - pad);
                            gw[(co * cin + ci) * k + kk] += g * x[xi_idx];
                            gi[xi_idx] += g * w[(co * cin + ci) * k + kk];
                        }
                    }
                }
            }
        }
        grad_input
    }

    pub(crate) fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamMut { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_conv() -> Conv1d {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 1, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 1], vec![1.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        c
    }

    #[test]
    fn kernel_one_is_identity() {
        let mut c = identity_conv();
        let x = Tensor::from_vec(vec![1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn moving_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 1.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn padding_extends_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, 1, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 3], vec![0.0, 1.0, 0.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3], vec![5.0, 6.0, 7.0]).unwrap();
        let y = c.forward(&x);
        // Centre-tap kernel with same-padding reproduces the input.
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut c = identity_conv();
        c.bias = Tensor::from_slice(&[10.0]);
        let x = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 2.0]).unwrap();
        assert_eq!(c.forward(&x).data(), &[11.0, 12.0]);
    }

    #[test]
    fn backward_grad_input_for_moving_sum() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 1.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let _ = c.forward(&x);
        let gy = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 1.0]).unwrap();
        let gx = c.backward(&gy);
        // Middle input appears in both windows.
        assert_eq!(gx.data(), &[1.0, 2.0, 1.0]);
        // dW[k] = sum_t gy[t] * x[t+k]
        assert_eq!(c.grad_weight.data(), &[3.0, 5.0]);
        assert_eq!(c.grad_bias.data(), &[2.0]);
    }

    #[test]
    fn multi_channel_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1d::new(2, 4, 3, 1, &mut rng);
        let x = Tensor::zeros(&[5, 2, 8]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[5, 4, 8]);
        let gx = c.backward(&Tensor::zeros(&[5, 4, 8]));
        assert_eq!(gx.shape(), &[5, 2, 8]);
    }
}
