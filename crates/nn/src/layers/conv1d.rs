//! 1-D convolution over `[batch, channels, length]` inputs.
//!
//! Forward and backward are lowered onto im2col + blocked GEMM (see
//! [`crate::lowering`]) and parallelized across the batch, exactly like
//! [`super::Conv2d`].

use noodle_compute::{gemm, gemm_at, gemm_bt, par_chunks_mut, par_map_reduce};
use noodle_profile::{EventKind, KernelTimer};
use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{Mode, ParamMut};
use crate::init;
use crate::lowering::{col2im_1d, im2col_1d};
use crate::tensor::Tensor;

/// Batch samples handled per parallel chunk; fixed (never derived from
/// the thread count) so gradient reduction order is thread-count
/// invariant.
const BATCH_GRAIN: usize = 4;

/// A 1-D convolution layer with stride 1 and symmetric zero padding.
///
/// Kernels are stored as `[out_channels, in_channels, kernel]`. The output
/// length is `len + 2 * padding - kernel + 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv1d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    padding: usize,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a 1-D convolution with He-uniform initialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        let fan_in = in_channels * kernel;
        let limit = init::he_uniform_limit(fan_in);
        Self {
            weight: Tensor::rand_uniform(&[out_channels, in_channels, kernel], -limit, limit, rng),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            padding,
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Kernel width.
    pub fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }

    /// Symmetric zero padding applied to each end of the sequence.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// The `[out_channels, in_channels, k]` kernel tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-output-channel bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Output length for an input of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if the padded length is shorter than the kernel.
    pub fn output_len(&self, len: usize) -> usize {
        let padded = len + 2 * self.padding;
        assert!(padded + 1 > self.kernel(), "input length {len} too short for kernel");
        padded - self.kernel() + 1
    }

    pub(crate) fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 3, "Conv1d expects [batch, ch, len], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels(),
            "Conv1d expects {} input channels, got {}",
            self.in_channels(),
            input.shape()[1]
        );
        if mode == Mode::Train {
            match &mut self.cached_input {
                Some(c) => c.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
        let (batch, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let out_len = self.output_len(len);
        let ck = cin * k;
        let _prof = KernelTimer::start(
            EventKind::ConvFwd,
            2 * (batch * cout * ck * out_len) as u64,
            (4 * (input.len() + batch * cout * out_len)) as u64,
        );
        let mut out = Tensor::zeros(&[batch, cout, out_len]);
        let x = input.data();
        let w2 = self.weight.data(); // viewed as [cout, ck]
        let bias = self.bias.data();
        par_chunks_mut(out.data_mut(), cout * out_len, BATCH_GRAIN, |samples, out_chunk| {
            let mut cols = vec![0.0; ck * out_len];
            for (i, b) in samples.enumerate() {
                im2col_1d(&x[b * cin * len..][..cin * len], cin, len, k, pad, out_len, &mut cols);
                let out_b = &mut out_chunk[i * cout * out_len..][..cout * out_len];
                for co in 0..cout {
                    out_b[co * out_len..][..out_len].fill(bias[co]);
                }
                gemm(cout, ck, out_len, w2, &cols, out_b);
            }
        });
        out
    }

    /// Inference-only forward into a caller-owned buffer; see
    /// [`super::Conv2d::infer`] — same per-sample im2col → bias prefill →
    /// GEMM order as `forward`, so results are bit-identical, with the
    /// scratch buffers reused across calls.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor, cols: &mut Vec<f32>) {
        assert_eq!(input.ndim(), 3, "Conv1d expects [batch, ch, len], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels(),
            "Conv1d expects {} input channels, got {}",
            self.in_channels(),
            input.shape()[1]
        );
        let (batch, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let out_len = self.output_len(len);
        let ck = cin * k;
        let _prof = KernelTimer::start(
            EventKind::ConvFwd,
            2 * (batch * cout * ck * out_len) as u64,
            (4 * (input.len() + batch * cout * out_len)) as u64,
        );
        out.resize_in_place(&[batch, cout, out_len]);
        cols.resize(ck * out_len, 0.0);
        let x = input.data();
        let w2 = self.weight.data(); // viewed as [cout, ck]
        let bias = self.bias.data();
        let o = out.data_mut();
        for b in 0..batch {
            im2col_1d(&x[b * cin * len..][..cin * len], cin, len, k, pad, out_len, cols);
            let out_b = &mut o[b * cout * out_len..][..cout * out_len];
            for co in 0..cout {
                out_b[co * out_len..][..out_len].fill(bias[co]);
            }
            gemm(cout, ck, out_len, w2, cols, out_b);
        }
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv1d::backward called before forward");
        let (batch, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let out_len = self.output_len(len);
        assert_eq!(grad_output.shape(), &[batch, cout, out_len]);
        let ck = cin * k;
        // dX (gemm_at) + dW (gemm_bt), each 2·b·cout·ck·out_len FLOPs.
        let _prof = KernelTimer::start(
            EventKind::ConvBwd,
            4 * (batch * cout * ck * out_len) as u64,
            (4 * (input.len() + 2 * grad_output.len())) as u64,
        );
        let x = input.data();
        let go = grad_output.data();
        let wt = self.weight.data();

        // dX per sample: gcols = W^T @ dY_b, scattered back onto the grid.
        let mut grad_input = Tensor::zeros(&[batch, cin, len]);
        par_chunks_mut(grad_input.data_mut(), cin * len, BATCH_GRAIN, |samples, gi_chunk| {
            let mut gcols = vec![0.0; ck * out_len];
            for (i, b) in samples.enumerate() {
                gcols.fill(0.0);
                gemm_at(
                    cout,
                    ck,
                    out_len,
                    wt,
                    &go[b * cout * out_len..][..cout * out_len],
                    &mut gcols,
                );
                let gi_b = &mut gi_chunk[i * cin * len..][..cin * len];
                col2im_1d(&gcols, cin, len, k, pad, out_len, gi_b);
            }
        });

        // dW / db: per-chunk partials folded in ascending chunk order.
        let partials = par_map_reduce(
            batch,
            BATCH_GRAIN,
            |samples| {
                let mut cols = vec![0.0; ck * out_len];
                let mut gw = vec![0.0; cout * ck];
                let mut gb = vec![0.0; cout];
                for b in samples {
                    im2col_1d(
                        &x[b * cin * len..][..cin * len],
                        cin,
                        len,
                        k,
                        pad,
                        out_len,
                        &mut cols,
                    );
                    let go_b = &go[b * cout * out_len..][..cout * out_len];
                    gemm_bt(cout, out_len, ck, go_b, &cols, &mut gw);
                    for co in 0..cout {
                        gb[co] += go_b[co * out_len..][..out_len].iter().sum::<f32>();
                    }
                }
                (gw, gb)
            },
            |(mut gw, mut gb), (gw2, gb2)| {
                for (a, b) in gw.iter_mut().zip(&gw2) {
                    *a += *b;
                }
                for (a, b) in gb.iter_mut().zip(&gb2) {
                    *a += *b;
                }
                (gw, gb)
            },
        );
        if let Some((gw, gb)) = partials {
            for (a, b) in self.grad_weight.data_mut().iter_mut().zip(&gw) {
                *a += *b;
            }
            for (a, b) in self.grad_bias.data_mut().iter_mut().zip(&gb) {
                *a += *b;
            }
        }
        grad_input
    }

    pub(crate) fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamMut { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_conv() -> Conv1d {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 1, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 1], vec![1.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        c
    }

    #[test]
    fn kernel_one_is_identity() {
        let mut c = identity_conv();
        let x = Tensor::from_vec(vec![1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn moving_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 1.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn padding_extends_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 3, 1, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 3], vec![0.0, 1.0, 0.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3], vec![5.0, 6.0, 7.0]).unwrap();
        let y = c.forward(&x, Mode::Train);
        // Centre-tap kernel with same-padding reproduces the input.
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[5.0, 6.0, 7.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut c = identity_conv();
        c.bias = Tensor::from_slice(&[10.0]);
        let x = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 2.0]).unwrap();
        assert_eq!(c.forward(&x, Mode::Train).data(), &[11.0, 12.0]);
    }

    #[test]
    fn backward_grad_input_for_moving_sum() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv1d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 1.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let _ = c.forward(&x, Mode::Train);
        let gy = Tensor::from_vec(vec![1, 1, 2], vec![1.0, 1.0]).unwrap();
        let gx = c.backward(&gy);
        // Middle input appears in both windows.
        assert_eq!(gx.data(), &[1.0, 2.0, 1.0]);
        // dW[k] = sum_t gy[t] * x[t+k]
        assert_eq!(c.grad_weight.data(), &[3.0, 5.0]);
        assert_eq!(c.grad_bias.data(), &[2.0]);
    }

    #[test]
    fn multi_channel_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Conv1d::new(2, 4, 3, 1, &mut rng);
        let x = Tensor::zeros(&[5, 2, 8]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[5, 4, 8]);
        let gx = c.backward(&Tensor::zeros(&[5, 4, 8]));
        assert_eq!(gx.shape(), &[5, 2, 8]);
    }

    #[test]
    fn eval_mode_does_not_cache_activations() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Conv1d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::zeros(&[2, 2, 6]);
        let _ = c.forward(&x, Mode::Eval);
        assert!(c.cached_input.is_none(), "Eval forward must not cache the input");
        let _ = c.forward(&x, Mode::Train);
        assert!(c.cached_input.is_some(), "Train forward must cache the input");
    }
}
