//! Fully connected (affine) layer.

use noodle_profile::{EventKind, KernelTimer};
use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{Mode, ParamMut};
use crate::init;
use crate::tensor::Tensor;

/// A fully connected layer computing `y = x W^T + b`.
///
/// Input shape `[batch, in_features]`, output shape `[batch, out_features]`.
/// Weights are stored as `[out_features, in_features]` and initialized with
/// Glorot-uniform scaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform initialized weights.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let limit = init::glorot_uniform_limit(in_features, out_features);
        Self {
            weight: Tensor::rand_uniform(&[out_features, in_features], -limit, limit, rng),
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }

    /// The weight matrix `[out_features, in_features]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector `[out_features]`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    pub(crate) fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 2, "Dense expects [batch, in] input, got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_features(),
            "Dense expects {} input features, got {}",
            self.in_features(),
            input.shape()[1]
        );
        if mode == Mode::Train {
            // Only training needs the activation for backward; reuse the
            // cached tensor's allocation instead of cloning every call.
            match &mut self.cached_input {
                Some(c) => c.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
        let _prof = KernelTimer::start(
            EventKind::DenseFwd,
            2 * (input.shape()[0] * self.in_features() * self.out_features()) as u64,
            (4 * (input.len() + input.shape()[0] * self.out_features())) as u64,
        );
        // x @ W^T without materializing the transpose.
        let mut out = input.matmul_bt(&self.weight);
        let (batch, out_f) = (out.shape()[0], out.shape()[1]);
        let bias = self.bias.data();
        let data = out.data_mut();
        for b in 0..batch {
            for j in 0..out_f {
                data[b * out_f + j] += bias[j];
            }
        }
        out
    }

    /// Inference-only forward into a caller-owned buffer: identical
    /// arithmetic to `forward(_, Mode::Eval)` (zeroed GEMM accumulator,
    /// bias added afterwards in the same loop order) but allocation-free
    /// once `out` has warmed up to the output size.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.ndim(), 2, "Dense expects [batch, in] input, got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_features(),
            "Dense expects {} input features, got {}",
            self.in_features(),
            input.shape()[1]
        );
        let (batch, out_f) = (input.shape()[0], self.out_features());
        let _prof = KernelTimer::start(
            EventKind::DenseFwd,
            2 * (batch * self.in_features() * out_f) as u64,
            (4 * (input.len() + batch * out_f)) as u64,
        );
        out.resize_in_place(&[batch, out_f]);
        let data = out.data_mut();
        data.fill(0.0);
        noodle_compute::gemm_bt(
            batch,
            self.in_features(),
            out_f,
            input.data(),
            self.weight.data(),
            data,
        );
        let bias = self.bias.data();
        for b in 0..batch {
            for j in 0..out_f {
                data[b * out_f + j] += bias[j];
            }
        }
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Dense::backward called before forward");
        // dW (add_matmul_at) + dX (matmul), each 2·b·in·out FLOPs.
        let _prof = KernelTimer::start(
            EventKind::DenseBwd,
            4 * (grad_output.shape()[0] * self.in_features() * self.out_features()) as u64,
            (4 * (input.len() + 2 * grad_output.len())) as u64,
        );
        // dW = dY^T X ; db = sum over batch ; dX = dY W
        self.grad_weight.add_matmul_at(grad_output, input);
        let (batch, out_f) = (grad_output.shape()[0], grad_output.shape()[1]);
        let gb = self.grad_bias.data_mut();
        let go = grad_output.data();
        for b in 0..batch {
            for j in 0..out_f {
                gb[j] += go[b * out_f + j];
            }
        }
        grad_output.matmul(&self.weight)
    }

    pub(crate) fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamMut { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixed_dense() -> Dense {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 2, &mut rng);
        // w = [[1, 2], [3, 4]], b = [0.5, -0.5]
        d.weight = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        d.bias = Tensor::from_slice(&[0.5, -0.5]);
        d
    }

    #[test]
    fn forward_hand_computed() {
        let mut d = fixed_dense();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = d.forward(&x, Mode::Train);
        // y0 = 1*1 + 2*1 + 0.5 = 3.5 ; y1 = 3 + 4 - 0.5 = 6.5
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_shapes_and_values() {
        let mut d = fixed_dense();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        let _ = d.forward(&x, Mode::Train);
        let gy = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let gx = d.backward(&gy);
        // dX = gy W = [1+3, 2+4]
        assert_eq!(gx.data(), &[4.0, 6.0]);
        // dW = gy^T x = [[1,2],[1,2]]
        assert_eq!(d.grad_weight.data(), &[1.0, 2.0, 1.0, 2.0]);
        assert_eq!(d.grad_bias.data(), &[1.0, 1.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = fixed_dense();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0]).unwrap();
        let gy = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0]).unwrap();
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&gy);
        let _ = d.forward(&x, Mode::Train);
        let _ = d.backward(&gy);
        assert_eq!(d.grad_bias.data()[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut d = fixed_dense();
        let gy = Tensor::zeros(&[1, 2]);
        let _ = d.backward(&gy);
    }

    #[test]
    fn init_within_glorot_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Dense::new(100, 50, &mut rng);
        let limit = crate::init::glorot_uniform_limit(100, 50);
        assert!(d.weight().data().iter().all(|w| w.abs() <= limit));
        assert!(d.bias().data().iter().all(|&b| b == 0.0));
    }
}
