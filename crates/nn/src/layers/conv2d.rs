//! 2-D convolution over `[batch, channels, height, width]` inputs.
//!
//! Forward and backward are lowered onto im2col + blocked GEMM (see
//! [`crate::lowering`]) and parallelized across the batch; see
//! `DESIGN.md` § "Parallelism & determinism model" for why results are
//! bit-identical at every thread count.

use noodle_compute::{gemm, gemm_at, gemm_bt, par_chunks_mut, par_map_reduce};
use noodle_profile::{EventKind, KernelTimer};
use rand::Rng;
use serde::{Deserialize, Serialize};

use super::{Mode, ParamMut};
use crate::init;
use crate::lowering::{col2im_2d, im2col_2d};
use crate::tensor::Tensor;

/// Batch samples handled per parallel chunk. A fixed constant (never
/// derived from the thread count) so chunk boundaries — and therefore
/// the gradient reduction order — are identical at every thread count.
const BATCH_GRAIN: usize = 4;

/// A 2-D convolution layer with stride 1 and symmetric zero padding.
///
/// Kernels are stored as `[out_channels, in_channels, kh, kw]`. Output
/// spatial dimensions are `h + 2p - kh + 1` by `w + 2p - kw + 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    padding: usize,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a 2-D convolution with He-uniform initialized square kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        let fan_in = in_channels * kernel * kernel;
        let limit = init::he_uniform_limit(fan_in);
        Self {
            weight: Tensor::rand_uniform(
                &[out_channels, in_channels, kernel, kernel],
                -limit,
                limit,
                rng,
            ),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            padding,
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }

    /// Symmetric zero padding applied to each spatial edge.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// The `[out_channels, in_channels, kh, kw]` kernel tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-output-channel bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    fn out_dim(&self, dim: usize) -> usize {
        let padded = dim + 2 * self.padding;
        assert!(padded + 1 > self.kernel(), "input dim {dim} too small for kernel");
        padded - self.kernel() + 1
    }

    pub(crate) fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 4, "Conv2d expects [b, c, h, w], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels(),
            "Conv2d expects {} input channels, got {}",
            self.in_channels(),
            input.shape()[1]
        );
        if mode == Mode::Train {
            // Only training needs the activation for backward; reuse the
            // cached tensor's allocation instead of cloning every call.
            match &mut self.cached_input {
                Some(c) => c.copy_from(input),
                None => self.cached_input = Some(input.clone()),
            }
        }
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        let (ckk, l) = (cin * k * k, oh * ow);
        let _prof = KernelTimer::start(
            EventKind::ConvFwd,
            2 * (batch * cout * ckk * l) as u64,
            (4 * (input.len() + batch * cout * l)) as u64,
        );
        let mut out = Tensor::zeros(&[batch, cout, oh, ow]);
        let x = input.data();
        let w2 = self.weight.data(); // viewed as [cout, ckk]
        let bias = self.bias.data();
        // One chunk = BATCH_GRAIN samples; each writes a disjoint slice of
        // the output and reuses one im2col scratch buffer across its
        // samples. The inner GEMM runs inline (nested regions are serial).
        par_chunks_mut(out.data_mut(), cout * l, BATCH_GRAIN, |samples, out_chunk| {
            let mut cols = vec![0.0; ckk * l];
            for (i, b) in samples.enumerate() {
                im2col_2d(
                    &x[b * cin * h * w..][..cin * h * w],
                    cin,
                    h,
                    w,
                    k,
                    pad,
                    oh,
                    ow,
                    &mut cols,
                );
                let out_b = &mut out_chunk[i * cout * l..][..cout * l];
                for co in 0..cout {
                    out_b[co * l..][..l].fill(bias[co]);
                }
                gemm(cout, ckk, l, w2, &cols, out_b);
            }
        });
        out
    }

    /// Inference-only forward into a caller-owned buffer: per-sample
    /// im2col → bias prefill → GEMM in exactly the same order as
    /// `forward`, so results are bit-identical, but the im2col scratch
    /// and output come from the caller and are reused across calls.
    /// Samples are walked sequentially; the GEMM itself still fans rows
    /// out over the compute pool.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor, cols: &mut Vec<f32>) {
        assert_eq!(input.ndim(), 4, "Conv2d expects [b, c, h, w], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels(),
            "Conv2d expects {} input channels, got {}",
            self.in_channels(),
            input.shape()[1]
        );
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        let (ckk, l) = (cin * k * k, oh * ow);
        let _prof = KernelTimer::start(
            EventKind::ConvFwd,
            2 * (batch * cout * ckk * l) as u64,
            (4 * (input.len() + batch * cout * l)) as u64,
        );
        out.resize_in_place(&[batch, cout, oh, ow]);
        cols.resize(ckk * l, 0.0);
        let x = input.data();
        let w2 = self.weight.data(); // viewed as [cout, ckk]
        let bias = self.bias.data();
        let o = out.data_mut();
        for b in 0..batch {
            im2col_2d(&x[b * cin * h * w..][..cin * h * w], cin, h, w, k, pad, oh, ow, cols);
            let out_b = &mut o[b * cout * l..][..cout * l];
            for co in 0..cout {
                out_b[co * l..][..l].fill(bias[co]);
            }
            gemm(cout, ckk, l, w2, cols, out_b);
        }
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv2d::backward called before forward");
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        assert_eq!(grad_output.shape(), &[batch, cout, oh, ow]);
        let (ckk, l) = (cin * k * k, oh * ow);
        // dX (gemm_at) + dW (gemm_bt), each 2·b·cout·ckk·l FLOPs.
        let _prof = KernelTimer::start(
            EventKind::ConvBwd,
            4 * (batch * cout * ckk * l) as u64,
            (4 * (input.len() + 2 * grad_output.len())) as u64,
        );
        let x = input.data();
        let go = grad_output.data();
        let wt = self.weight.data();

        // dX: each sample's gradient image is disjoint, so the batch is
        // partitioned directly. gcols = W^T @ dY_b, then scattered back
        // onto the input grid.
        let mut grad_input = Tensor::zeros(&[batch, cin, h, w]);
        par_chunks_mut(grad_input.data_mut(), cin * h * w, BATCH_GRAIN, |samples, gi_chunk| {
            let mut gcols = vec![0.0; ckk * l];
            for (i, b) in samples.enumerate() {
                gcols.fill(0.0);
                gemm_at(cout, ckk, l, wt, &go[b * cout * l..][..cout * l], &mut gcols);
                let gi_b = &mut gi_chunk[i * cin * h * w..][..cin * h * w];
                col2im_2d(&gcols, cin, h, w, k, pad, oh, ow, gi_b);
            }
        });

        // dW / db: per-chunk partial sums (dW_b = dY_b @ cols_b^T), folded
        // in ascending chunk order so the totals are thread-count invariant.
        let partials = par_map_reduce(
            batch,
            BATCH_GRAIN,
            |samples| {
                let mut cols = vec![0.0; ckk * l];
                let mut gw = vec![0.0; cout * ckk];
                let mut gb = vec![0.0; cout];
                for b in samples {
                    im2col_2d(
                        &x[b * cin * h * w..][..cin * h * w],
                        cin,
                        h,
                        w,
                        k,
                        pad,
                        oh,
                        ow,
                        &mut cols,
                    );
                    let go_b = &go[b * cout * l..][..cout * l];
                    gemm_bt(cout, l, ckk, go_b, &cols, &mut gw);
                    for co in 0..cout {
                        gb[co] += go_b[co * l..][..l].iter().sum::<f32>();
                    }
                }
                (gw, gb)
            },
            |(mut gw, mut gb), (gw2, gb2)| {
                for (a, b) in gw.iter_mut().zip(&gw2) {
                    *a += *b;
                }
                for (a, b) in gb.iter_mut().zip(&gb2) {
                    *a += *b;
                }
                (gw, gb)
            },
        );
        if let Some((gw, gb)) = partials {
            for (a, b) in self.grad_weight.data_mut().iter_mut().zip(&gw) {
                *a += *b;
            }
            for (a, b) in self.grad_bias.data_mut().iter_mut().zip(&gb) {
                *a += *b;
            }
        }
        grad_input
    }

    pub(crate) fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamMut { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_by_one_kernel_scales_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 1, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn box_filter_hand_computed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // windows: [1,2,4,5]=12 [2,3,5,6]=16 [4,5,7,8]=24 [5,6,8,9]=28
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn same_padding_with_center_tap() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 3, 1, &mut rng);
        let mut kernel = vec![0.0; 9];
        kernel[4] = 1.0; // centre tap
        c.weight = Tensor::from_vec(vec![1, 1, 3, 3], kernel).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn backward_box_filter_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let _ = c.forward(&x, Mode::Train);
        let gy = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let gx = c.backward(&gy);
        assert_eq!(gx.data(), &[1.0; 4]);
        assert_eq!(c.grad_weight.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.grad_bias.data(), &[1.0]);
    }

    #[test]
    fn multichannel_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Conv2d::new(3, 8, 3, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
        let gx = c.backward(&Tensor::zeros(&[2, 8, 16, 16]));
        assert_eq!(gx.shape(), &[2, 3, 16, 16]);
    }

    #[test]
    fn eval_mode_does_not_cache_activations() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Conv2d::new(1, 2, 3, 1, &mut rng);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let _ = c.forward(&x, Mode::Eval);
        assert!(c.cached_input.is_none(), "Eval forward must not cache the input");
        let _ = c.forward(&x, Mode::Train);
        assert!(c.cached_input.is_some(), "Train forward must cache the input");
    }

    /// The im2col + GEMM path against a direct translation of the
    /// convolution definition, on an awkward (padding > kernel reach)
    /// multichannel case.
    #[test]
    fn forward_matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut c = Conv2d::new(3, 4, 3, 2, &mut rng);
        let x = Tensor::rand_uniform(&[5, 3, 6, 5], -1.0, 1.0, &mut rng);
        let y = c.forward(&x, Mode::Eval);
        let (h, w, k, pad) = (6, 5, 3, 2);
        let (oh, ow) = (h + 2 * pad - k + 1, w + 2 * pad - k + 1);
        assert_eq!(y.shape(), &[5, 4, oh, ow]);
        for b in 0..5 {
            for co in 0..4 {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = c.bias.data()[co];
                        for ci in 0..3 {
                            for ky in 0..k {
                                let sy = oy + ky;
                                if sy < pad || sy >= pad + h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let sx = ox + kx;
                                    if sx < pad || sx >= pad + w {
                                        continue;
                                    }
                                    acc += x.data()
                                        [((b * 3 + ci) * h + (sy - pad)) * w + (sx - pad)]
                                        * c.weight.data()[((co * 3 + ci) * k + ky) * k + kx];
                                }
                            }
                        }
                        let got = y.data()[((b * 4 + co) * oh + oy) * ow + ox];
                        assert!(
                            (got - acc).abs() < 1e-5,
                            "mismatch at b={b} co={co} oy={oy} ox={ox}: {got} vs {acc}"
                        );
                    }
                }
            }
        }
    }
}
