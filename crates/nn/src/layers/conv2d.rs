//! 2-D convolution over `[batch, channels, height, width]` inputs.

use rand::Rng;
use serde::{Deserialize, Serialize};

use super::ParamMut;
use crate::init;
use crate::tensor::Tensor;

/// A 2-D convolution layer with stride 1 and symmetric zero padding.
///
/// Kernels are stored as `[out_channels, in_channels, kh, kw]`. Output
/// spatial dimensions are `h + 2p - kh + 1` by `w + 2p - kw + 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    padding: usize,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a 2-D convolution with He-uniform initialized square kernels.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        let fan_in = in_channels * kernel * kernel;
        let limit = init::he_uniform_limit(fan_in);
        Self {
            weight: Tensor::rand_uniform(
                &[out_channels, in_channels, kernel, kernel],
                -limit,
                limit,
                rng,
            ),
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            padding,
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Kernel side length.
    pub fn kernel(&self) -> usize {
        self.weight.shape()[2]
    }

    fn out_dim(&self, dim: usize) -> usize {
        let padded = dim + 2 * self.padding;
        assert!(padded + 1 > self.kernel(), "input dim {dim} too small for kernel");
        padded - self.kernel() + 1
    }

    pub(crate) fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "Conv2d expects [b, c, h, w], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels(),
            "Conv2d expects {} input channels, got {}",
            self.in_channels(),
            input.shape()[1]
        );
        self.cached_input = Some(input.clone());
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        let mut out = Tensor::zeros(&[batch, cout, oh, ow]);
        let x = input.data();
        let wt = self.weight.data();
        let bias = self.bias.data();
        let o = out.data_mut();
        for b in 0..batch {
            for co in 0..cout {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[co];
                        for ci in 0..cin {
                            for ky in 0..k {
                                let sy = oy + ky;
                                if sy < pad || sy >= pad + h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let sx = ox + kx;
                                    if sx < pad || sx >= pad + w {
                                        continue;
                                    }
                                    let xi = x[((b * cin + ci) * h + (sy - pad)) * w + (sx - pad)];
                                    acc += xi * wt[((co * cin + ci) * k + ky) * k + kx];
                                }
                            }
                        }
                        o[((b * cout + co) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
        out
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("Conv2d::backward called before forward");
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (cout, k, pad) = (self.out_channels(), self.kernel(), self.padding);
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        assert_eq!(grad_output.shape(), &[batch, cout, oh, ow]);
        let x = input.data();
        let go = grad_output.data();
        let wt = self.weight.data();
        let gw = self.grad_weight.data_mut();
        let gb = self.grad_bias.data_mut();
        let mut grad_input = Tensor::zeros(&[batch, cin, h, w]);
        let gi = grad_input.data_mut();
        for b in 0..batch {
            for co in 0..cout {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[((b * cout + co) * oh + oy) * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[co] += g;
                        for ci in 0..cin {
                            for ky in 0..k {
                                let sy = oy + ky;
                                if sy < pad || sy >= pad + h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let sx = ox + kx;
                                    if sx < pad || sx >= pad + w {
                                        continue;
                                    }
                                    let xi_idx = ((b * cin + ci) * h + (sy - pad)) * w + (sx - pad);
                                    let w_idx = ((co * cin + ci) * k + ky) * k + kx;
                                    gw[w_idx] += g * x[xi_idx];
                                    gi[xi_idx] += g * wt[w_idx];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_input
    }

    pub(crate) fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut { value: &mut self.weight, grad: &mut self.grad_weight },
            ParamMut { value: &mut self.bias, grad: &mut self.grad_bias },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_by_one_kernel_scales_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 1, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 1, 1], vec![2.0]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x);
        assert_eq!(y.data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn box_filter_hand_computed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 3, 3], (1..=9).map(|v| v as f32).collect()).unwrap();
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // windows: [1,2,4,5]=12 [2,3,5,6]=16 [4,5,7,8]=24 [5,6,8,9]=28
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn same_padding_with_center_tap() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 3, 1, &mut rng);
        let mut kernel = vec![0.0; 9];
        kernel[4] = 1.0; // centre tap
        c.weight = Tensor::from_vec(vec![1, 1, 3, 3], kernel).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = c.forward(&x);
        assert_eq!(y.shape(), x.shape());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn backward_box_filter_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Conv2d::new(1, 1, 2, 0, &mut rng);
        c.weight = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        c.bias = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let _ = c.forward(&x);
        let gy = Tensor::from_vec(vec![1, 1, 1, 1], vec![1.0]).unwrap();
        let gx = c.backward(&gy);
        assert_eq!(gx.data(), &[1.0; 4]);
        assert_eq!(c.grad_weight.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.grad_bias.data(), &[1.0]);
    }

    #[test]
    fn multichannel_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = Conv2d::new(3, 8, 3, 1, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = c.forward(&x);
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
        let gx = c.backward(&Tensor::zeros(&[2, 8, 16, 16]));
        assert_eq!(gx.shape(), &[2, 3, 16, 16]);
    }
}
