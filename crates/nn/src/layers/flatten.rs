//! Flattening layer.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Flattens `[batch, d1, d2, ...]` into `[batch, d1 * d2 * ...]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn forward(&mut self, input: &Tensor) -> Tensor {
        assert!(input.ndim() >= 1, "Flatten requires at least rank 1");
        self.cached_shape = Some(input.shape().to_vec());
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[batch, rest]).expect("flatten reshape cannot change the element count")
    }

    /// Inference-only forward into a caller-owned buffer: copies the data
    /// under the flattened shape without caching the input shape.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert!(input.ndim() >= 1, "Flatten requires at least rank 1");
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        out.resize_in_place(&[batch, rest]);
        out.data_mut().copy_from_slice(input.data());
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self.cached_shape.as_ref().expect("Flatten::backward called before forward");
        grad_output
            .reshape(shape)
            .expect("flatten backward reshape cannot change the element count")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let gx = f.backward(&Tensor::zeros(&[2, 12]));
        assert_eq!(gx.shape(), &[2, 3, 4]);
    }

    #[test]
    fn preserves_order() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = f.forward(&x);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
