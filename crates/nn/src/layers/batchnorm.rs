//! Batch normalization over `[batch, features]` inputs.

use serde::{Deserialize, Serialize};

use super::{Mode, ParamMut};
use crate::tensor::Tensor;

const EPS: f32 = 1e-5;

/// 1-D batch normalization: per-feature standardization over the batch with
/// learned scale (γ) and shift (β), plus running statistics for inference.
///
/// Training mode normalizes with the batch statistics and updates
/// exponential running averages; evaluation mode normalizes with the
/// running averages, so single-sample inference is well defined.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    #[serde(skip)]
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer for `features`-wide inputs with the
    /// standard momentum 0.1.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            grad_gamma: Tensor::zeros(&[features]),
            grad_beta: Tensor::zeros(&[features]),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.1,
            cache: None,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }

    pub(crate) fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.ndim(), 2, "BatchNorm1d expects [batch, features]");
        let (batch, features) = (input.shape()[0], input.shape()[1]);
        assert_eq!(features, self.features(), "feature count mismatch");
        let x = input.data();
        let mut out = Tensor::zeros(&[batch, features]);
        match mode {
            Mode::Train => {
                assert!(batch > 1, "BatchNorm1d training needs batch size > 1");
                let mut mean = vec![0.0f32; features];
                let mut var = vec![0.0f32; features];
                for r in 0..batch {
                    for c in 0..features {
                        mean[c] += x[r * features + c] / batch as f32;
                    }
                }
                for r in 0..batch {
                    for c in 0..features {
                        let d = x[r * features + c] - mean[c];
                        var[c] += d * d / batch as f32;
                    }
                }
                let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
                let mut normalized = Tensor::zeros(&[batch, features]);
                {
                    let n = normalized.data_mut();
                    let o = out.data_mut();
                    for r in 0..batch {
                        for c in 0..features {
                            let idx = r * features + c;
                            n[idx] = (x[idx] - mean[c]) * std_inv[c];
                            o[idx] = self.gamma.data()[c] * n[idx] + self.beta.data()[c];
                        }
                    }
                }
                for c in 0..features {
                    self.running_mean[c] =
                        (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                    self.running_var[c] =
                        (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
                }
                self.cache = Some(BnCache { normalized, std_inv });
            }
            Mode::Eval => {
                let o = out.data_mut();
                for r in 0..batch {
                    for c in 0..features {
                        let idx = r * features + c;
                        let n =
                            (x[idx] - self.running_mean[c]) / (self.running_var[c] + EPS).sqrt();
                        o[idx] = self.gamma.data()[c] * n + self.beta.data()[c];
                    }
                }
                self.cache = None;
            }
        }
        out
    }

    /// Inference-only forward into a caller-owned buffer: the same
    /// running-statistics normalization as `forward(_, Mode::Eval)`,
    /// element for element, without touching the training cache.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.ndim(), 2, "BatchNorm1d expects [batch, features]");
        let (batch, features) = (input.shape()[0], input.shape()[1]);
        assert_eq!(features, self.features(), "feature count mismatch");
        out.resize_in_place(&[batch, features]);
        let x = input.data();
        let o = out.data_mut();
        for r in 0..batch {
            for c in 0..features {
                let idx = r * features + c;
                let n = (x[idx] - self.running_mean[c]) / (self.running_var[c] + EPS).sqrt();
                o[idx] = self.gamma.data()[c] * n + self.beta.data()[c];
            }
        }
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache =
            self.cache.as_ref().expect("BatchNorm1d::backward called before a training forward");
        let (batch, features) = (grad_output.shape()[0], grad_output.shape()[1]);
        let go = grad_output.data();
        let n = cache.normalized.data();
        // dβ = Σ dy ; dγ = Σ dy · x̂
        let gb = self.grad_beta.data_mut();
        let gg = self.grad_gamma.data_mut();
        let mut sum_dy = vec![0.0f32; features];
        let mut sum_dy_n = vec![0.0f32; features];
        for r in 0..batch {
            for c in 0..features {
                let idx = r * features + c;
                sum_dy[c] += go[idx];
                sum_dy_n[c] += go[idx] * n[idx];
            }
        }
        for c in 0..features {
            gb[c] += sum_dy[c];
            gg[c] += sum_dy_n[c];
        }
        // dx = (γ σ⁻¹ / B) · (B dy − Σdy − x̂ Σ(dy·x̂))
        let mut grad_input = Tensor::zeros(&[batch, features]);
        let gi = grad_input.data_mut();
        let b = batch as f32;
        for r in 0..batch {
            for c in 0..features {
                let idx = r * features + c;
                gi[idx] = self.gamma.data()[c] * cache.std_inv[c] / b
                    * (b * go[idx] - sum_dy[c] - n[idx] * sum_dy_n[c]);
            }
        }
        grad_input
    }

    pub(crate) fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        vec![
            ParamMut { value: &mut self.gamma, grad: &mut self.grad_gamma },
            ParamMut { value: &mut self.beta, grad: &mut self.grad_beta },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_output_is_standardized() {
        let mut bn = BatchNorm1d::new(2);
        let x =
            Tensor::from_vec(vec![4, 2], vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]).unwrap();
        let y = bn.forward(&x, Mode::Train);
        for c in 0..2 {
            let col: Vec<f32> = (0..4).map(|r| y.at(&[r, c])).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {c} var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![4, 1], vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train);
        }
        // Running stats converge to batch stats (mean 5, var 5).
        let single = Tensor::from_vec(vec![1, 1], vec![5.0]).unwrap();
        let y = bn.forward(&single, Mode::Eval);
        assert!(y.data()[0].abs() < 0.05, "mean input should map near 0: {}", y.data()[0]);
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut bn = BatchNorm1d::new(1);
        bn.gamma = Tensor::from_slice(&[2.0]);
        bn.beta = Tensor::from_slice(&[1.0]);
        let x = Tensor::from_vec(vec![2, 1], vec![-1.0, 1.0]).unwrap();
        let y = bn.forward(&x, Mode::Train);
        // Standardized to ±1, then ×2 + 1 → -1 and 3.
        assert!((y.data()[0] + 1.0).abs() < 1e-3);
        assert!((y.data()[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "batch size > 1")]
    fn train_rejects_singleton_batch() {
        let mut bn = BatchNorm1d::new(1);
        let _ = bn.forward(&Tensor::zeros(&[1, 1]), Mode::Train);
    }

    #[test]
    fn eval_handles_singleton_batch() {
        let mut bn = BatchNorm1d::new(3);
        let y = bn.forward(&Tensor::ones(&[1, 3]), Mode::Eval);
        assert_eq!(y.shape(), &[1, 3]);
    }
}
