//! Inverted dropout.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use super::Mode;
use crate::tensor::Tensor;

/// Inverted dropout: during training each element is zeroed with probability
/// `rate` and survivors are scaled by `1 / (1 - rate)` so that the expected
/// activation is unchanged; during evaluation the layer is the identity.
///
/// The layer owns a deterministic RNG derived from `seed` so that training
/// runs are reproducible and the layer remains serializable (the stream
/// position is part of the serialized state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    rate: f32,
    seed: u64,
    draws: u64,
    #[serde(skip)]
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate < 1.0`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1), got {rate}");
        Self { rate, seed, draws: 0, cached_mask: None }
    }

    /// The drop probability.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    pub(crate) fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Eval || self.rate == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.draws = self.draws.wrapping_add(1);
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(input.shape());
        for m in mask.data_mut() {
            if rng.random::<f32>() < keep {
                *m = scale;
            }
        }
        let out = input.mul(&mask);
        self.cached_mask = Some(mask);
        out
    }

    /// Inference-only forward into a caller-owned buffer: dropout is the
    /// identity in evaluation mode, so this is a plain copy.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        out.resize_in_place(input.shape());
        out.data_mut().copy_from_slice(input.data());
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.cached_mask {
            Some(mask) => grad_output.mul(mask),
            None => grad_output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn zero_rate_is_identity_even_in_train() {
        let mut d = Dropout::new(0.0, 1);
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(d.forward(&x, Mode::Train), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, Mode::Train);
        // Survivors are scaled to 2.0; the mean should stay near 1.
        assert!((y.mean() - 1.0).abs() < 0.1, "mean {}", y.mean());
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Tensor::ones(&[100]));
        // Gradient flows exactly where the activations survived.
        for (a, b) in y.data().iter().zip(g.data()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn successive_masks_differ() {
        let mut d = Dropout::new(0.5, 9);
        let x = Tensor::ones(&[64]);
        let a = d.forward(&x, Mode::Train);
        let b = d.forward(&x, Mode::Train);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn rejects_rate_one() {
        let _ = Dropout::new(1.0, 0);
    }
}
