//! Neural-network layers.
//!
//! Layers are concrete structs wrapped by the [`Layer`] enum so that whole
//! networks are [`serde`]-serializable and `Clone`/`Debug` without trait
//! objects. Every layer caches what it needs during [`Layer::forward`] so
//! that [`Layer::backward`] can compute gradients with plain backpropagation.

mod activation;
mod batchnorm;
mod conv1d;
mod conv2d;
mod dense;
mod dropout;
mod flatten;
mod pool;

pub use activation::{sigmoid, softmax_rows, softmax_rows_inplace, Activation, ActivationKind};
pub use batchnorm::BatchNorm1d;
pub use conv1d::Conv1d;
pub use conv2d::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::{MaxPool1d, MaxPool2d};

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Whether a forward pass is for training (enables dropout, caches
/// intermediates) or inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Training mode: stochastic layers are active.
    Train,
    /// Inference mode: stochastic layers are identity.
    Eval,
}

/// A mutable view of one parameter tensor and its gradient accumulator.
#[derive(Debug)]
pub struct ParamMut<'a> {
    /// The trainable values.
    pub value: &'a mut Tensor,
    /// The gradient accumulated by the most recent backward pass.
    pub grad: &'a mut Tensor,
}

/// Any layer supported by this crate.
///
/// # Examples
///
/// ```
/// use noodle_nn::{Layer, Dense, Mode, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer: Layer = Dense::new(4, 2, &mut rng).into();
/// let x = Tensor::zeros(&[3, 4]);
/// let y = layer.forward(&x, Mode::Eval);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected layer.
    Dense(Dense),
    /// 1-D batch normalization over `[batch, features]`.
    BatchNorm1d(BatchNorm1d),
    /// 1-D convolution over `[batch, channels, length]`.
    Conv1d(Conv1d),
    /// 2-D convolution over `[batch, channels, height, width]`.
    Conv2d(Conv2d),
    /// Elementwise nonlinearity.
    Activation(Activation),
    /// Inverted dropout.
    Dropout(Dropout),
    /// Flattens all trailing dimensions into one.
    Flatten(Flatten),
    /// 1-D max pooling.
    MaxPool1d(MaxPool1d),
    /// 2-D max pooling.
    MaxPool2d(MaxPool2d),
}

impl Layer {
    /// Runs the layer forward, caching whatever `backward` will need.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        match self {
            Layer::Dense(l) => l.forward(input, mode),
            Layer::BatchNorm1d(l) => l.forward(input, mode),
            Layer::Conv1d(l) => l.forward(input, mode),
            Layer::Conv2d(l) => l.forward(input, mode),
            Layer::Activation(l) => l.forward(input),
            Layer::Dropout(l) => l.forward(input, mode),
            Layer::Flatten(l) => l.forward(input),
            Layer::MaxPool1d(l) => l.forward(input),
            Layer::MaxPool2d(l) => l.forward(input),
        }
    }

    /// Inference-only forward into a caller-owned output buffer.
    ///
    /// Bit-identical to [`Layer::forward`] in [`Mode::Eval`] but takes
    /// `&self` (no training caches are written) and reuses `out` plus the
    /// `cols` im2col scratch, so a warmed-up buffer pair makes repeated
    /// inference allocation-free. See [`crate::InferArena`].
    pub fn infer(&self, input: &Tensor, out: &mut Tensor, cols: &mut Vec<f32>) {
        match self {
            Layer::Dense(l) => l.infer(input, out),
            Layer::BatchNorm1d(l) => l.infer(input, out),
            Layer::Conv1d(l) => l.infer(input, out, cols),
            Layer::Conv2d(l) => l.infer(input, out, cols),
            Layer::Activation(l) => l.infer(input, out),
            Layer::Dropout(l) => l.infer(input, out),
            Layer::Flatten(l) => l.infer(input, out),
            Layer::MaxPool1d(l) => l.infer(input, out),
            Layer::MaxPool2d(l) => l.infer(input, out),
        }
    }

    /// Propagates `grad_output` backward, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` on layers that cache activations.
    pub fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match self {
            Layer::Dense(l) => l.backward(grad_output),
            Layer::BatchNorm1d(l) => l.backward(grad_output),
            Layer::Conv1d(l) => l.backward(grad_output),
            Layer::Conv2d(l) => l.backward(grad_output),
            Layer::Activation(l) => l.backward(grad_output),
            Layer::Dropout(l) => l.backward(grad_output),
            Layer::Flatten(l) => l.backward(grad_output),
            Layer::MaxPool1d(l) => l.backward(grad_output),
            Layer::MaxPool2d(l) => l.backward(grad_output),
        }
    }

    /// Mutable views of every trainable parameter and its gradient.
    pub fn params_mut(&mut self) -> Vec<ParamMut<'_>> {
        match self {
            Layer::Dense(l) => l.params_mut(),
            Layer::BatchNorm1d(l) => l.params_mut(),
            Layer::Conv1d(l) => l.params_mut(),
            Layer::Conv2d(l) => l.params_mut(),
            _ => Vec::new(),
        }
    }

    /// Resets all parameter gradients to zero.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.grad.map_inplace(|_| 0.0);
        }
    }

    /// Total number of trainable scalars in the layer.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }
}

impl From<Dense> for Layer {
    fn from(l: Dense) -> Self {
        Layer::Dense(l)
    }
}
impl From<BatchNorm1d> for Layer {
    fn from(l: BatchNorm1d) -> Self {
        Layer::BatchNorm1d(l)
    }
}
impl From<Conv1d> for Layer {
    fn from(l: Conv1d) -> Self {
        Layer::Conv1d(l)
    }
}
impl From<Conv2d> for Layer {
    fn from(l: Conv2d) -> Self {
        Layer::Conv2d(l)
    }
}
impl From<Activation> for Layer {
    fn from(l: Activation) -> Self {
        Layer::Activation(l)
    }
}
impl From<Dropout> for Layer {
    fn from(l: Dropout) -> Self {
        Layer::Dropout(l)
    }
}
impl From<Flatten> for Layer {
    fn from(l: Flatten) -> Self {
        Layer::Flatten(l)
    }
}
impl From<MaxPool1d> for Layer {
    fn from(l: MaxPool1d) -> Self {
        Layer::MaxPool1d(l)
    }
}
impl From<MaxPool2d> for Layer {
    fn from(l: MaxPool2d) -> Self {
        Layer::MaxPool2d(l)
    }
}
