//! Max-pooling layers.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// 1-D max pooling over `[batch, channels, length]` with non-overlapping
/// windows (`stride == kernel`). Trailing elements that do not fill a full
/// window are dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool1d {
    kernel: usize,
    #[serde(skip)]
    cached: Option<PoolCache>,
}

/// 2-D max pooling over `[batch, channels, height, width]` with
/// non-overlapping square windows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    kernel: usize,
    #[serde(skip)]
    cached: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    input_shape: Vec<usize>,
    /// For each output element, the flat index of the winning input element.
    argmax: Vec<usize>,
}

impl MaxPool1d {
    /// Creates a 1-D max-pool with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        Self { kernel, cached: None }
    }

    /// The pooling window size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    pub(crate) fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 3, "MaxPool1d expects [b, c, l], got {:?}", input.shape());
        let (batch, ch, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let out_len = len / self.kernel;
        assert!(out_len > 0, "input length {len} shorter than pool kernel {}", self.kernel);
        let x = input.data();
        let mut out = Tensor::zeros(&[batch, ch, out_len]);
        let mut argmax = vec![0usize; batch * ch * out_len];
        let o = out.data_mut();
        for b in 0..batch {
            for c in 0..ch {
                for t in 0..out_len {
                    let base = (b * ch + c) * len + t * self.kernel;
                    let mut best_idx = base;
                    let mut best = x[base];
                    for k in 1..self.kernel {
                        if x[base + k] > best {
                            best = x[base + k];
                            best_idx = base + k;
                        }
                    }
                    let oi = (b * ch + c) * out_len + t;
                    o[oi] = best;
                    argmax[oi] = best_idx;
                }
            }
        }
        self.cached = Some(PoolCache { input_shape: input.shape().to_vec(), argmax });
        out
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cached.as_ref().expect("MaxPool1d::backward called before forward");
        scatter_pool_grad(cache, grad_output)
    }

    /// Inference-only forward into a caller-owned buffer: the same window
    /// scan as `forward` without recording argmax indices.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.ndim(), 3, "MaxPool1d expects [b, c, l], got {:?}", input.shape());
        let (batch, ch, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let out_len = len / self.kernel;
        assert!(out_len > 0, "input length {len} shorter than pool kernel {}", self.kernel);
        out.resize_in_place(&[batch, ch, out_len]);
        let x = input.data();
        let o = out.data_mut();
        for b in 0..batch {
            for c in 0..ch {
                for t in 0..out_len {
                    let base = (b * ch + c) * len + t * self.kernel;
                    let mut best = x[base];
                    for k in 1..self.kernel {
                        if x[base + k] > best {
                            best = x[base + k];
                        }
                    }
                    o[(b * ch + c) * out_len + t] = best;
                }
            }
        }
    }
}

impl MaxPool2d {
    /// Creates a 2-D max-pool with square windows of side `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is zero.
    pub fn new(kernel: usize) -> Self {
        assert!(kernel > 0, "pool kernel must be positive");
        Self { kernel, cached: None }
    }

    /// The pooling window side length.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    pub(crate) fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 4, "MaxPool2d expects [b, c, h, w], got {:?}", input.shape());
        let (batch, ch, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oh, ow) = (h / self.kernel, w / self.kernel);
        assert!(oh > 0 && ow > 0, "input {h}x{w} smaller than pool kernel {}", self.kernel);
        let x = input.data();
        let mut out = Tensor::zeros(&[batch, ch, oh, ow]);
        let mut argmax = vec![0usize; batch * ch * oh * ow];
        let o = out.data_mut();
        for b in 0..batch {
            for c in 0..ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.kernel + ky;
                                let ix = ox * self.kernel + kx;
                                let idx = ((b * ch + c) * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oi = ((b * ch + c) * oh + oy) * ow + ox;
                        o[oi] = best;
                        argmax[oi] = best_idx;
                    }
                }
            }
        }
        self.cached = Some(PoolCache { input_shape: input.shape().to_vec(), argmax });
        out
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self.cached.as_ref().expect("MaxPool2d::backward called before forward");
        scatter_pool_grad(cache, grad_output)
    }

    /// Inference-only forward into a caller-owned buffer: the same window
    /// scan as `forward` without recording argmax indices.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        assert_eq!(input.ndim(), 4, "MaxPool2d expects [b, c, h, w], got {:?}", input.shape());
        let (batch, ch, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (oh, ow) = (h / self.kernel, w / self.kernel);
        assert!(oh > 0 && ow > 0, "input {h}x{w} smaller than pool kernel {}", self.kernel);
        out.resize_in_place(&[batch, ch, oh, ow]);
        let x = input.data();
        let o = out.data_mut();
        for b in 0..batch {
            for c in 0..ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.kernel + ky;
                                let ix = ox * self.kernel + kx;
                                let v = x[((b * ch + c) * h + iy) * w + ix];
                                if v > best {
                                    best = v;
                                }
                            }
                        }
                        o[((b * ch + c) * oh + oy) * ow + ox] = best;
                    }
                }
            }
        }
    }
}

fn scatter_pool_grad(cache: &PoolCache, grad_output: &Tensor) -> Tensor {
    assert_eq!(
        grad_output.len(),
        cache.argmax.len(),
        "pool backward gradient has wrong number of elements"
    );
    let mut grad_input = Tensor::zeros(&cache.input_shape);
    let gi = grad_input.data_mut();
    for (oi, &src) in cache.argmax.iter().enumerate() {
        gi[src] += grad_output.data()[oi];
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool1d_picks_window_max() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 6], vec![1.0, 3.0, 2.0, 2.0, 5.0, 4.0]).unwrap();
        let y = p.forward(&x);
        assert_eq!(y.data(), &[3.0, 2.0, 5.0]);
    }

    #[test]
    fn pool1d_drops_trailing_remainder() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 5], vec![1.0, 2.0, 3.0, 4.0, 99.0]).unwrap();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2]);
        assert_eq!(y.data(), &[2.0, 4.0]);
    }

    #[test]
    fn pool1d_backward_routes_to_argmax() {
        let mut p = MaxPool1d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 4], vec![1.0, 3.0, 5.0, 2.0]).unwrap();
        let _ = p.forward(&x);
        let gy = Tensor::from_vec(vec![1, 1, 2], vec![10.0, 20.0]).unwrap();
        let gx = p.backward(&gy);
        assert_eq!(gx.data(), &[0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn pool2d_hand_computed() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        )
        .unwrap();
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn pool2d_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![4.0, 1.0, 2.0, 3.0]).unwrap();
        let _ = p.forward(&x);
        let gy = Tensor::from_vec(vec![1, 1, 1, 1], vec![7.0]).unwrap();
        let gx = p.backward(&gy);
        assert_eq!(gx.data(), &[7.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pool2d_negative_values() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![-4.0, -1.0, -2.0, -3.0]).unwrap();
        let y = p.forward(&x);
        assert_eq!(y.data(), &[-1.0]);
    }
}
