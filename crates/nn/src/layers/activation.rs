//! Elementwise activation functions.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// The nonlinearity applied by an [`Activation`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// `max(alpha * x, x)` with `alpha = 0.01`.
    LeakyRelu,
    /// Logistic sigmoid `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

const LEAKY_SLOPE: f32 = 0.01;

/// An elementwise activation layer.
///
/// Caches its forward output (or input for ReLU variants) so the backward
/// pass can compute the local derivative.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Activation {
    kind: ActivationKind,
    #[serde(skip)]
    cached: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self { kind, cached: None }
    }

    /// Convenience constructor for ReLU.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Convenience constructor for LeakyReLU (slope 0.01).
    pub fn leaky_relu() -> Self {
        Self::new(ActivationKind::LeakyRelu)
    }

    /// Convenience constructor for the logistic sigmoid.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    /// Convenience constructor for tanh.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    pub(crate) fn forward(&mut self, input: &Tensor) -> Tensor {
        match self.kind {
            ActivationKind::Relu => {
                self.cached = Some(input.clone());
                input.map(|x| x.max(0.0))
            }
            ActivationKind::LeakyRelu => {
                self.cached = Some(input.clone());
                input.map(|x| if x >= 0.0 { x } else { LEAKY_SLOPE * x })
            }
            ActivationKind::Sigmoid => {
                let out = input.map(sigmoid);
                self.cached = Some(out.clone());
                out
            }
            ActivationKind::Tanh => {
                let out = input.map(f32::tanh);
                self.cached = Some(out.clone());
                out
            }
        }
    }

    /// Inference-only forward into a caller-owned buffer: the same
    /// elementwise maps as `forward` without caching the activation.
    pub(crate) fn infer(&self, input: &Tensor, out: &mut Tensor) {
        out.resize_in_place(input.shape());
        let x = input.data();
        let o = out.data_mut();
        match self.kind {
            ActivationKind::Relu => {
                for (o, &x) in o.iter_mut().zip(x) {
                    *o = x.max(0.0);
                }
            }
            ActivationKind::LeakyRelu => {
                for (o, &x) in o.iter_mut().zip(x) {
                    *o = if x >= 0.0 { x } else { LEAKY_SLOPE * x };
                }
            }
            ActivationKind::Sigmoid => {
                for (o, &x) in o.iter_mut().zip(x) {
                    *o = sigmoid(x);
                }
            }
            ActivationKind::Tanh => {
                for (o, &x) in o.iter_mut().zip(x) {
                    *o = x.tanh();
                }
            }
        }
    }

    pub(crate) fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cached = self.cached.as_ref().expect("Activation::backward called before forward");
        match self.kind {
            ActivationKind::Relu => {
                cached.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })
            }
            ActivationKind::LeakyRelu => {
                cached.zip_map(grad_output, |x, g| if x >= 0.0 { g } else { LEAKY_SLOPE * g })
            }
            ActivationKind::Sigmoid => cached.zip_map(grad_output, |y, g| g * y * (1.0 - y)),
            ActivationKind::Tanh => cached.zip_map(grad_output, |y, g| g * (1.0 - y * y)),
        }
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Row-wise softmax of a rank-2 tensor `[batch, classes]`, numerically
/// stabilized by subtracting the row maximum.
///
/// # Panics
///
/// Panics if `logits` is not rank 2.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.ndim(), 2, "softmax_rows expects rank 2, got {:?}", logits.shape());
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    let mut out = logits.clone();
    let data = out.data_mut();
    for b in 0..batch {
        let row = &mut data[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// In-place variant of [`softmax_rows`]: identical per-row arithmetic
/// (subtract the row max, exponentiate and sum, divide) applied directly
/// to `logits` without allocating. Used by the inference fast path.
///
/// # Panics
///
/// Panics if `logits` is not rank 2.
pub fn softmax_rows_inplace(logits: &mut Tensor) {
    assert_eq!(logits.ndim(), 2, "softmax_rows expects rank 2, got {:?}", logits.shape());
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    let data = logits.data_mut();
    for b in 0..batch {
        let row = &mut data[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::relu();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = a.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = a.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_gradient() {
        let mut a = Activation::leaky_relu();
        let x = Tensor::from_slice(&[-2.0, 3.0]);
        let y = a.forward(&x);
        assert!((y.data()[0] + 0.02).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = a.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert!((g.data()[0] - 0.01).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn sigmoid_matches_closed_form() {
        let mut a = Activation::sigmoid();
        let x = Tensor::from_slice(&[0.0]);
        let y = a.forward(&x);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        // d sigmoid at 0 = 0.25
        let g = a.backward(&Tensor::from_slice(&[1.0]));
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_for_large_inputs() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) > 0.0 || sigmoid(-100.0) == 0.0);
        assert!(sigmoid(f32::MIN).is_finite());
    }

    #[test]
    fn tanh_backward_uses_output() {
        let mut a = Activation::tanh();
        let x = Tensor::from_slice(&[0.5]);
        let y = a.forward(&x);
        let g = a.backward(&Tensor::from_slice(&[1.0]));
        let expected = 1.0 - y.data()[0] * y.data()[0];
        assert!((g.data()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1000.0]).unwrap();
        let p = softmax_rows(&logits);
        for b in 0..2 {
            let s: f32 = p.row(b).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {b} sums to {s}");
            assert!(p.row(b).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Huge logit dominates without NaN.
        assert!((p.at(&[1, 2]) - 1.0).abs() < 1e-5);
    }
}
