//! Post-training int8 quantization for the serving path.
//!
//! [`QuantizedModel::from_calibrated`] walks a trained [`Sequential`],
//! quantizing every `Dense`/`Conv1d`/`Conv2d` to 8-bit integers:
//!
//! * **weights** use symmetric per-output-channel scales
//!   (`max |w_row| / 127`), so a badly scaled channel cannot poison the
//!   precision of the others;
//! * **activations** use one static symmetric scale per quantized layer,
//!   calibrated as the max absolute activation that layer's *input*
//!   reaches on the calibration set (the same held-out split the
//!   conformal predictors are calibrated on). Novel inputs that exceed
//!   the calibrated range saturate at ±127 rather than wrapping.
//!
//! Inference quantizes each quantized layer's input to `i8`, runs the
//! matmul in [`noodle_compute::gemm_bt_i8`] with exact `i32`
//! accumulation, and dequantizes immediately (`acc · s_act · s_w[ch] +
//! bias`), so activations between layers — and every non-quantized
//! layer (activations, pooling, batch norm, flatten, dropout) — stay in
//! `f32` and run bit-identically to the float path.
//!
//! Because the integer accumulation is exact and the quantize/dequantize
//! steps are elementwise, quantized inference inherits the float path's
//! determinism contract: byte-identical outputs at every thread count
//! *and* across SIMD instruction sets. The outputs differ from the f32
//! model only by the quantization error, which the detector bounds at
//! fit time with calibration-set Brier scores (and CI bounds end-to-end
//! with a verdict-flip golden test).

use noodle_compute::gemm_bt_i8;
use noodle_profile::{EventKind, KernelTimer};
use serde::{Deserialize, Serialize};

use crate::infer::InferArena;
use crate::layers::{softmax_rows_inplace, Layer};
use crate::lowering::{im2col_1d, im2col_2d};
use crate::model::Sequential;
use crate::tensor::Tensor;

/// Largest magnitude representable after symmetric int8 quantization.
const QMAX: f32 = 127.0;

fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Symmetric scale mapping `[-max_abs, max_abs]` onto `[-127, 127]`; an
/// all-zero range quantizes through scale 1.0 (everything maps to 0).
fn scale_for(max_abs: f32) -> f32 {
    if max_abs > 0.0 && max_abs.is_finite() {
        max_abs / QMAX
    } else {
        1.0
    }
}

#[inline]
fn quantize(x: f32, inv_scale: f32) -> i8 {
    (x * inv_scale).round().clamp(-QMAX, QMAX) as i8
}

/// Quantizes a `[rows, cols]` weight matrix with one symmetric scale per
/// row (= per output channel), returning `(q, scales)`.
fn quantize_rows(weight: &[f32], rows: usize, cols: usize) -> (Vec<i8>, Vec<f32>) {
    assert_eq!(weight.len(), rows * cols, "weight length disagrees with {rows}x{cols}");
    let mut q = vec![0i8; rows * cols];
    let mut scales = vec![1.0f32; rows];
    for r in 0..rows {
        let row = &weight[r * cols..(r + 1) * cols];
        let scale = scale_for(max_abs(row));
        let inv = 1.0 / scale;
        scales[r] = scale;
        for (dst, &w) in q[r * cols..(r + 1) * cols].iter_mut().zip(row) {
            *dst = quantize(w, inv);
        }
    }
    (q, scales)
}

fn quantize_into(src: &[f32], scale: f32, dst: &mut Vec<i8>) {
    dst.clear();
    let inv = 1.0 / scale;
    dst.extend(src.iter().map(|&x| quantize(x, inv)));
}

/// Int8 twin of [`crate::Dense`]: `y = dequant(q(x) @ w_q^T) + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QDense {
    in_features: usize,
    out_features: usize,
    /// Static symmetric input-activation scale from calibration.
    act_scale: f32,
    /// Per-output-row symmetric weight scales.
    weight_scale: Vec<f32>,
    /// `[out_features, in_features]` row-major int8 weights.
    weight_q: Vec<i8>,
    /// Bias stays in f32 (added after dequantization).
    bias: Vec<f32>,
}

impl QDense {
    fn from_calibrated(dense: &crate::Dense, input_max_abs: f32) -> Self {
        let (out_f, in_f) = (dense.out_features(), dense.in_features());
        let (weight_q, weight_scale) = quantize_rows(dense.weight().data(), out_f, in_f);
        Self {
            in_features: in_f,
            out_features: out_f,
            act_scale: scale_for(input_max_abs),
            weight_scale,
            weight_q,
            bias: dense.bias().data().to_vec(),
        }
    }

    fn infer(&self, input: &Tensor, out: &mut Tensor, qbuf: &mut Vec<i8>, qacc: &mut Vec<i32>) {
        assert_eq!(input.ndim(), 2, "QDense expects [batch, in] input, got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_features,
            "QDense expects {} input features, got {}",
            self.in_features,
            input.shape()[1]
        );
        let (batch, out_f) = (input.shape()[0], self.out_features);
        let _prof = KernelTimer::start(
            EventKind::DenseFwd,
            2 * (batch * self.in_features * out_f) as u64,
            (4 * (input.len() + batch * out_f)) as u64,
        );
        quantize_into(input.data(), self.act_scale, qbuf);
        out.resize_in_place(&[batch, out_f]);
        qacc.clear();
        qacc.resize(batch * out_f, 0);
        gemm_bt_i8(batch, self.in_features, out_f, qbuf, &self.weight_q, qacc);
        let data = out.data_mut();
        for b in 0..batch {
            for o in 0..out_f {
                let scale = self.act_scale * self.weight_scale[o];
                data[b * out_f + o] = qacc[b * out_f + o] as f32 * scale + self.bias[o];
            }
        }
    }
}

/// Int8 twin of [`crate::Conv2d`]: im2col → quantize-transpose → int8
/// GEMM → dequantize, per sample, in the float path's lowering order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QConv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    act_scale: f32,
    /// Per-output-channel symmetric weight scales.
    weight_scale: Vec<f32>,
    /// `[out_channels, in_channels·k·k]` row-major int8 weights.
    weight_q: Vec<i8>,
    bias: Vec<f32>,
}

impl QConv2d {
    fn from_calibrated(conv: &crate::Conv2d, input_max_abs: f32) -> Self {
        let (cout, cin, k) = (conv.out_channels(), conv.in_channels(), conv.kernel());
        let (weight_q, weight_scale) = quantize_rows(conv.weight().data(), cout, cin * k * k);
        Self {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            padding: conv.padding(),
            act_scale: scale_for(input_max_abs),
            weight_scale,
            weight_q,
            bias: conv.bias().data().to_vec(),
        }
    }

    fn out_dim(&self, dim: usize) -> usize {
        let padded = dim + 2 * self.padding;
        assert!(padded + 1 > self.kernel, "input dim {dim} too small for kernel");
        padded - self.kernel + 1
    }

    fn infer(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        cols: &mut Vec<f32>,
        qbuf: &mut Vec<i8>,
        qacc: &mut Vec<i32>,
    ) {
        assert_eq!(input.ndim(), 4, "QConv2d expects [b, c, h, w], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "QConv2d expects {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let (batch, cin, h, w) =
            (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let (cout, k, pad) = (self.out_channels, self.kernel, self.padding);
        let (oh, ow) = (self.out_dim(h), self.out_dim(w));
        let (ckk, l) = (cin * k * k, oh * ow);
        let _prof = KernelTimer::start(
            EventKind::ConvFwd,
            2 * (batch * cout * ckk * l) as u64,
            (4 * (input.len() + batch * cout * l)) as u64,
        );
        out.resize_in_place(&[batch, cout, oh, ow]);
        cols.resize(ckk * l, 0.0);
        qbuf.clear();
        qbuf.resize(l * ckk, 0);
        let inv_act = 1.0 / self.act_scale;
        let x = input.data();
        let o = out.data_mut();
        for b in 0..batch {
            im2col_2d(&x[b * cin * h * w..][..cin * h * w], cin, h, w, k, pad, oh, ow, cols);
            // Quantize and transpose the patch matrix `[ckk, l]` into
            // `[l, ckk]` so each output element is one contiguous int8
            // dot product.
            for p in 0..ckk {
                let col_row = &cols[p * l..(p + 1) * l];
                for (j, &v) in col_row.iter().enumerate() {
                    qbuf[j * ckk + p] = quantize(v, inv_act);
                }
            }
            qacc.clear();
            qacc.resize(cout * l, 0);
            gemm_bt_i8(cout, ckk, l, &self.weight_q, qbuf, qacc);
            let out_b = &mut o[b * cout * l..][..cout * l];
            for co in 0..cout {
                let scale = self.act_scale * self.weight_scale[co];
                let bias = self.bias[co];
                for j in 0..l {
                    out_b[co * l + j] = qacc[co * l + j] as f32 * scale + bias;
                }
            }
        }
    }
}

/// Int8 twin of [`crate::Conv1d`]; see [`QConv2d`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QConv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    act_scale: f32,
    weight_scale: Vec<f32>,
    /// `[out_channels, in_channels·k]` row-major int8 weights.
    weight_q: Vec<i8>,
    bias: Vec<f32>,
}

impl QConv1d {
    fn from_calibrated(conv: &crate::Conv1d, input_max_abs: f32) -> Self {
        let (cout, cin, k) = (conv.out_channels(), conv.in_channels(), conv.kernel());
        let (weight_q, weight_scale) = quantize_rows(conv.weight().data(), cout, cin * k);
        Self {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            padding: conv.padding(),
            act_scale: scale_for(input_max_abs),
            weight_scale,
            weight_q,
            bias: conv.bias().data().to_vec(),
        }
    }

    fn output_len(&self, len: usize) -> usize {
        let padded = len + 2 * self.padding;
        assert!(padded + 1 > self.kernel, "input length {len} too small for kernel");
        padded - self.kernel + 1
    }

    fn infer(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        cols: &mut Vec<f32>,
        qbuf: &mut Vec<i8>,
        qacc: &mut Vec<i32>,
    ) {
        assert_eq!(input.ndim(), 3, "QConv1d expects [batch, ch, len], got {:?}", input.shape());
        assert_eq!(
            input.shape()[1],
            self.in_channels,
            "QConv1d expects {} input channels, got {}",
            self.in_channels,
            input.shape()[1]
        );
        let (batch, cin, len) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let (cout, k, pad) = (self.out_channels, self.kernel, self.padding);
        let out_len = self.output_len(len);
        let ck = cin * k;
        let _prof = KernelTimer::start(
            EventKind::ConvFwd,
            2 * (batch * cout * ck * out_len) as u64,
            (4 * (input.len() + batch * cout * out_len)) as u64,
        );
        out.resize_in_place(&[batch, cout, out_len]);
        cols.resize(ck * out_len, 0.0);
        qbuf.clear();
        qbuf.resize(out_len * ck, 0);
        let inv_act = 1.0 / self.act_scale;
        let x = input.data();
        let o = out.data_mut();
        for b in 0..batch {
            im2col_1d(&x[b * cin * len..][..cin * len], cin, len, k, pad, out_len, cols);
            for p in 0..ck {
                let col_row = &cols[p * out_len..(p + 1) * out_len];
                for (j, &v) in col_row.iter().enumerate() {
                    qbuf[j * ck + p] = quantize(v, inv_act);
                }
            }
            qacc.clear();
            qacc.resize(cout * out_len, 0);
            gemm_bt_i8(cout, ck, out_len, &self.weight_q, qbuf, qacc);
            let out_b = &mut o[b * cout * out_len..][..cout * out_len];
            for co in 0..cout {
                let scale = self.act_scale * self.weight_scale[co];
                let bias = self.bias[co];
                for j in 0..out_len {
                    out_b[co * out_len + j] = qacc[co * out_len + j] as f32 * scale + bias;
                }
            }
        }
    }
}

/// One layer of a [`QuantizedModel`]: an int8 twin for the GEMM-backed
/// layers, the original layer for everything else.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QLayer {
    /// Quantized fully connected layer.
    Dense(QDense),
    /// Quantized 1-D convolution.
    Conv1d(QConv1d),
    /// Quantized 2-D convolution.
    Conv2d(QConv2d),
    /// Non-GEMM layer running its unchanged f32 inference kernel.
    Passthrough(Layer),
}

impl QLayer {
    fn infer(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        cols: &mut Vec<f32>,
        qbuf: &mut Vec<i8>,
        qacc: &mut Vec<i32>,
    ) {
        match self {
            QLayer::Dense(l) => l.infer(input, out, qbuf, qacc),
            QLayer::Conv1d(l) => l.infer(input, out, cols, qbuf, qacc),
            QLayer::Conv2d(l) => l.infer(input, out, cols, qbuf, qacc),
            QLayer::Passthrough(l) => l.infer(input, out, cols),
        }
    }
}

/// An int8 post-training-quantized serving twin of a [`Sequential`].
///
/// Built once at fit time with [`Self::from_calibrated`], serialized
/// alongside the float model, and served through [`Self::infer_proba`]
/// with the same [`InferArena`] zero-allocation discipline as the float
/// path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedModel {
    layers: Vec<QLayer>,
}

impl QuantizedModel {
    /// Quantizes `net` using `calibration` (a batch in the network's
    /// input shape) to set the static activation scales.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty.
    pub fn from_calibrated(net: &Sequential, calibration: &Tensor) -> Self {
        assert!(calibration.len() > 0, "quantization needs a non-empty calibration batch");
        let mut layers = Vec::with_capacity(net.layers().len());
        let mut cur = calibration.clone();
        let mut cols = Vec::new();
        for layer in net.layers() {
            let input_max = max_abs(cur.data());
            layers.push(match layer {
                Layer::Dense(d) => QLayer::Dense(QDense::from_calibrated(d, input_max)),
                Layer::Conv1d(c) => QLayer::Conv1d(QConv1d::from_calibrated(c, input_max)),
                Layer::Conv2d(c) => QLayer::Conv2d(QConv2d::from_calibrated(c, input_max)),
                other => QLayer::Passthrough(other.clone()),
            });
            // Advance the calibration activations through the *float*
            // layer: scales describe the true distribution each layer
            // sees, not one distorted by upstream quantization error.
            let mut next = Tensor::zeros(&[1]);
            layer.infer(&cur, &mut next, &mut cols);
            cur = next;
        }
        Self { layers }
    }

    /// Number of quantized (int8 GEMM) layers.
    pub fn quantized_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| !matches!(l, QLayer::Passthrough(_))).count()
    }

    /// Runs quantized inference, returning the logits as a view into the
    /// arena. Mirrors [`Sequential::infer_batch`]'s ping-pong exactly.
    pub fn infer_batch<'a>(&self, input: &Tensor, arena: &'a mut InferArena) -> &'a Tensor {
        let idx = self.infer_into(input, arena);
        &arena.bufs[idx]
    }

    /// Softmax class probabilities via [`Self::infer_batch`].
    pub fn infer_proba<'a>(&self, input: &Tensor, arena: &'a mut InferArena) -> &'a Tensor {
        let idx = self.infer_into(input, arena);
        softmax_rows_inplace(&mut arena.bufs[idx]);
        &arena.bufs[idx]
    }

    fn infer_into(&self, input: &Tensor, arena: &mut InferArena) -> usize {
        if self.layers.is_empty() {
            arena.bufs[0].copy_from(input);
            return 0;
        }
        let mut cur = 0;
        for (i, layer) in self.layers.iter().enumerate() {
            let InferArena { bufs, cols, qbuf, qacc } = arena;
            let (first, second) = bufs.split_at_mut(1);
            if i == 0 {
                layer.infer(input, &mut first[0], cols, qbuf, qacc);
                cur = 0;
            } else if cur == 0 {
                layer.infer(&first[0], &mut second[0], cols, qbuf, qacc);
                cur = 1;
            } else {
                layer.infer(&second[0], &mut first[0], cols, qbuf, qacc);
                cur = 0;
            }
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Conv2d, Dense, Flatten, MaxPool2d};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cnn(rng: &mut StdRng) -> Sequential {
        Sequential::new(vec![
            Conv2d::new(2, 4, 3, 1, rng).into(),
            Activation::relu().into(),
            MaxPool2d::new(2).into(),
            Flatten::new().into(),
            Dense::new(4 * 6 * 6, 8, rng).into(),
            Activation::relu().into(),
            Dense::new(8, 2, rng).into(),
        ])
    }

    #[test]
    fn quantized_probas_track_float_probas() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = cnn(&mut rng);
        let calib = Tensor::rand_uniform(&[6, 2, 12, 12], -1.0, 1.0, &mut rng);
        let q = QuantizedModel::from_calibrated(&net, &calib);
        assert_eq!(q.quantized_layer_count(), 3);
        let x = Tensor::rand_uniform(&[5, 2, 12, 12], -1.0, 1.0, &mut rng);
        let mut arena = InferArena::new();
        let pf = net.infer_proba(&x, &mut arena).clone();
        let mut qarena = InferArena::new();
        let pq = q.infer_proba(&x, &mut qarena);
        for (a, b) in pf.data().iter().zip(pq.data()) {
            assert!((a - b).abs() < 0.1, "quantized proba drifted: {a} vs {b}");
        }
    }

    #[test]
    fn quantized_inference_is_deterministic_and_thread_invariant() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = cnn(&mut rng);
        let calib = Tensor::rand_uniform(&[4, 2, 12, 12], -1.0, 1.0, &mut rng);
        let q = QuantizedModel::from_calibrated(&net, &calib);
        let x = Tensor::rand_uniform(&[7, 2, 12, 12], -1.0, 1.0, &mut rng);
        let mut arena = InferArena::new();
        noodle_compute::set_thread_override(Some(1));
        let serial = q.infer_proba(&x, &mut arena).clone();
        for threads in [2, 4] {
            noodle_compute::set_thread_override(Some(threads));
            let par = q.infer_proba(&x, &mut arena).clone();
            assert_eq!(serial, par, "quantized inference differs at {threads} threads");
        }
        noodle_compute::set_thread_override(None);
        // And batched rows must equal solo rows (micro-batching safety).
        let sample = 2 * 12 * 12;
        let mut solo_arena = InferArena::new();
        for i in 0..7 {
            let xi = Tensor::from_vec(
                vec![1, 2, 12, 12],
                x.data()[i * sample..(i + 1) * sample].to_vec(),
            )
            .unwrap();
            let solo = q.infer_proba(&xi, &mut solo_arena);
            assert_eq!(solo.row(0), serial.row(i), "row {i} differs from solo inference");
        }
    }

    #[test]
    fn serde_round_trip_preserves_outputs_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = cnn(&mut rng);
        let calib = Tensor::rand_uniform(&[3, 2, 12, 12], -1.0, 1.0, &mut rng);
        let q = QuantizedModel::from_calibrated(&net, &calib);
        let json = serde_json::to_string(&q).expect("serialize");
        let q2: QuantizedModel = serde_json::from_str(&json).expect("deserialize");
        let x = Tensor::rand_uniform(&[2, 2, 12, 12], -1.0, 1.0, &mut rng);
        let mut a1 = InferArena::new();
        let mut a2 = InferArena::new();
        assert_eq!(q.infer_proba(&x, &mut a1), q2.infer_proba(&x, &mut a2));
    }

    #[test]
    fn passthrough_only_model_matches_float_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Sequential::new(vec![
            Activation::relu().into(),
            MaxPool2d::new(2).into(),
            Flatten::new().into(),
        ]);
        let calib = Tensor::rand_uniform(&[2, 2, 8, 8], -1.0, 1.0, &mut rng);
        let q = QuantizedModel::from_calibrated(&net, &calib);
        assert_eq!(q.quantized_layer_count(), 0);
        let x = Tensor::rand_uniform(&[3, 2, 8, 8], -1.0, 1.0, &mut rng);
        let mut fa = InferArena::new();
        let mut qa = InferArena::new();
        assert_eq!(net.infer_batch(&x, &mut fa).clone(), *q.infer_batch(&x, &mut qa));
    }

    #[test]
    fn zero_weight_rows_quantize_safely() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = Sequential::new(vec![Dense::new(3, 2, &mut rng).into()]);
        // Zero every weight row: the scales must fall back to 1.0 and
        // produce exact zeros (plus the zero bias) instead of NaNs.
        for p in net.params_mut() {
            p.value.data_mut().fill(0.0);
        }
        let calib = Tensor::zeros(&[2, 3]);
        let q = QuantizedModel::from_calibrated(&net, &calib);
        let x = Tensor::from_vec(vec![1, 3], vec![1.0, -2.0, 3.0]).unwrap();
        let mut arena = InferArena::new();
        let out = q.infer_batch(&x, &mut arena);
        assert!(out.data().iter().all(|v| *v == 0.0), "zero net must stay zero, got {out:?}");
    }
}
