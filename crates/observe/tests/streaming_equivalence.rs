//! Property test: the streaming engine and batch replay are the same
//! machine. For randomized prediction streams, [`StreamingMonitors`] must
//! report exactly what [`replay`] reports at *every prefix* — not just the
//! final state — and health transitions must fire exactly when consecutive
//! prefix reports disagree.

use std::collections::BTreeMap;

use noodle_observe::{
    replay, AuditHeader, CalibrationBaseline, MonitorConfig, PredictionRecord, ScoreBaseline,
    SourceProbe, StreamingMonitors, AUDIT_SCHEMA_VERSION,
};
use proptest::prelude::*;

/// A randomized but internally consistent prediction record: probability,
/// p-values, region and label are all derived from the drawn scalars so
/// streams look like plausible detector output rather than pure noise.
fn arb_record(seq: u64) -> impl Strategy<Value = PredictionRecord> {
    (
        0.0f64..1.0,               // probability of the infected class
        0.0f64..1.0,               // p-value of the winning class
        0.0f64..0.5,               // p-value of the losing class
        any::<bool>(),             // labeled?
        any::<bool>(),             // label matches the prediction?
        any::<bool>(),             // covered (true class inside the region)?
        prop::bool::weighted(0.2), // modality imputed?
        1.0f64..5000.0,            // latency in microseconds
    )
        .prop_map(move |(p1, p_win, p_lose, labeled, agree, covered, imputed, latency)| {
            let infected = p1 >= 0.5;
            let winner = usize::from(infected);
            let label = labeled.then_some(if agree { winner } else { 1 - winner });
            let mut p_values = [0.0; 2];
            p_values[winner] = p_win;
            p_values[1 - winner] = p_lose.min(p_win);
            let region = match (label, covered) {
                (Some(l), true) => vec![l],
                (Some(l), false) => vec![1 - l],
                (None, _) => vec![winner],
            };
            PredictionRecord {
                seq,
                design: format!("fuzz_{seq:04}"),
                trace_id: String::new(),
                strategy: "LateFusion".into(),
                infected,
                probability_infected: p1,
                p_values,
                region,
                credibility: p_win,
                confidence: 1.0 - p_lose.min(p_win),
                uncertain: p_lose.min(p_win) > 0.1,
                significance: 0.1,
                graph_present: true,
                tabular_present: !imputed,
                imputed_modality: imputed,
                label,
                latency_us: latency,
                batch_latency_us: latency,
                batch_size: 1,
                sources: vec![SourceProbe {
                    source: "graph".into(),
                    p_values,
                    scores: [p1, 1.0 - p1],
                }],
            }
        })
}

fn arb_stream() -> impl Strategy<Value = Vec<PredictionRecord>> {
    prop::collection::vec(any::<u8>(), 0..120).prop_flat_map(|seeds| {
        seeds.into_iter().enumerate().map(|(i, _)| arb_record(i as u64)).collect::<Vec<_>>()
    })
}

fn baseline_header() -> AuditHeader {
    let scores: Vec<f64> = (0..200).map(|i| 0.01 + 0.002 * (i % 90) as f64).collect();
    let mut sources = BTreeMap::new();
    sources.insert("graph".to_string(), ScoreBaseline::from_scores(&scores, 10).unwrap());
    AuditHeader {
        schema_version: AUDIT_SCHEMA_VERSION,
        tool_version: "0.1.0".into(),
        significance: 0.1,
        strategy: "LateFusion".into(),
        simd: String::new(),
        quantized: false,
        baseline: Some(CalibrationBaseline {
            sources,
            class_balance: 0.3,
            winner_brier: 0.08,
            significance: 0.1,
            calibration_count: 200,
        }),
        serve: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming == batch at every prefix, with and without a calibration
    /// baseline, and transitions fire exactly at prefix-report changes.
    #[test]
    fn streaming_equals_replay_at_every_prefix(
        records in arb_stream(),
        with_header in any::<bool>(),
        window in prop::sample::select(vec![8usize, 64, 256]),
    ) {
        let config = MonitorConfig { window, min_samples: 5, ..MonitorConfig::default() };
        let header = baseline_header();
        let header_ref = with_header.then_some(&header);

        let stream = StreamingMonitors::new(config.clone());
        if let Some(h) = header_ref {
            stream.observe_header(h);
        }

        // Empty prefix: a valid zero-record report, identical to replay.
        let mut previous = replay(header_ref, &[], config.clone());
        prop_assert_eq!(&stream.report(), &previous);

        for (i, record) in records.iter().enumerate() {
            stream.observe(record);
            let prefix = replay(header_ref, &records[..=i], config.clone());
            let live = stream.report();
            prop_assert_eq!(&live, &prefix, "prefix {} diverged", i + 1);

            // Transitions are exactly the per-monitor health diffs between
            // consecutive prefix reports.
            let transitions = stream.transitions_since_last();
            let mut expected: BTreeMap<&str, _> = BTreeMap::new();
            for status in &prefix.monitors {
                let before = previous
                    .monitors
                    .iter()
                    .find(|m| m.monitor == status.monitor)
                    .map_or(noodle_observe::Health::Healthy, |m| m.health);
                if before != status.health {
                    expected.insert(status.monitor.as_str(), (before, status.health));
                }
            }
            prop_assert_eq!(transitions.len(), expected.len(), "at prefix {}", i + 1);
            for t in &transitions {
                prop_assert!(
                    expected.contains_key(t.status.monitor.as_str()),
                    "unexpected transition for {}",
                    t.status.monitor
                );
                let (from, to) = expected[t.status.monitor.as_str()];
                prop_assert_eq!(t.from, from);
                prop_assert_eq!(t.status.health, to);
            }
            previous = prefix;
        }
    }
}
