//! Proves the audit layer's gating discipline: with no sink attached,
//! `emit_if` performs zero heap allocations and never runs the record
//! builder — the hot detect path pays nothing for the audit feature.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_audit_path_allocates_nothing() {
    // Warm up any lazily-initialized runtime state outside the measured
    // region.
    noodle_observe::emit_if(None, || unreachable!());

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        noodle_observe::emit_if(None, || {
            panic!("record builder must not run when no sink is attached")
        });
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "emit_if with no sink must not allocate on the hot path");
}
