//! Serving SLO monitors for the `noodle serve` daemon.
//!
//! Three monitors over sliding windows of served-request observations:
//!
//! - **`serve.latency_p99`** — rolling p99 of end-to-end request latency
//!   against a configured target. Evidence names the slowest trace ids in
//!   the window, so an alert is directly greppable in the audit log and
//!   `/debug/trace/<id>`.
//! - **`serve.shed_rate`** — fraction of admissions shed by the bounded
//!   queue (429-style burn rate). Sustained shedding means the daemon is
//!   underprovisioned for the offered load.
//! - **`serve.error_rate`** — fraction of admitted requests that failed
//!   (parse errors, inference failures).
//!
//! [`SloSuite`] is plugged into [`crate::StreamingMonitors`] via
//! `set_slo`, so SLO health merges into the same `overall()` that drives
//! `/healthz` and the alert-triggered flight-bundle dump.

use std::collections::VecDeque;

use crate::monitor::{Health, MonitorStatus};

/// Targets and window sizing for [`SloSuite`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// End-to-end latency target: rolling p99 above this warns.
    pub p99_target_us: f64,
    /// Alert when the rolling p99 exceeds `p99_target_us` times this.
    pub p99_alert_mult: f64,
    /// Sliding-window length (served requests) for the latency monitor.
    pub latency_window: usize,
    /// Sliding-window length (admission outcomes) for the burn-rate
    /// monitors.
    pub outcome_window: usize,
    /// Monitors stay `Healthy` with an "insufficient samples" note until
    /// this many samples are in their window.
    pub min_samples: usize,
    /// Shed fraction above this warns.
    pub shed_warn: f64,
    /// Shed fraction above this alerts.
    pub shed_alert: f64,
    /// Error fraction above this warns.
    pub error_warn: f64,
    /// Error fraction above this alerts.
    pub error_alert: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            p99_target_us: 250_000.0,
            p99_alert_mult: 2.0,
            latency_window: 512,
            outcome_window: 512,
            min_samples: 20,
            shed_warn: 0.05,
            shed_alert: 0.20,
            error_warn: 0.01,
            error_alert: 0.05,
        }
    }
}

/// How one admission attempt ended, as seen by the burn-rate monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// Admitted, inferred, answered with a verdict.
    Served,
    /// Refused at admission (queue full or draining).
    Shed,
    /// Admitted or parsed but answered with an error.
    Error,
}

/// Rolling SLO state: latency window with trace ids, outcome window.
#[derive(Debug, Clone)]
pub struct SloSuite {
    config: SloConfig,
    /// (e2e latency in µs, trace id) per served request, window-bounded.
    latencies: VecDeque<(f64, u64)>,
    outcomes: VecDeque<ServeOutcome>,
    served_total: u64,
    shed_total: u64,
    error_total: u64,
}

impl SloSuite {
    /// A fresh suite with empty windows.
    pub fn new(config: SloConfig) -> Self {
        Self {
            config,
            latencies: VecDeque::new(),
            outcomes: VecDeque::new(),
            served_total: 0,
            shed_total: 0,
            error_total: 0,
        }
    }

    /// Records one served request's end-to-end latency with the trace id
    /// that produced it (for alert evidence).
    pub fn observe_latency(&mut self, e2e_us: f64, trace_id: u64) {
        if self.latencies.len() == self.config.latency_window {
            self.latencies.pop_front();
        }
        self.latencies.push_back((e2e_us, trace_id));
    }

    /// Records one admission outcome.
    pub fn observe_outcome(&mut self, outcome: ServeOutcome) {
        match outcome {
            ServeOutcome::Served => self.served_total += 1,
            ServeOutcome::Shed => self.shed_total += 1,
            ServeOutcome::Error => self.error_total += 1,
        }
        if self.outcomes.len() == self.config.outcome_window {
            self.outcomes.pop_front();
        }
        self.outcomes.push_back(outcome);
    }

    /// Lifetime totals: (served, shed, errored).
    pub fn totals(&self) -> (u64, u64, u64) {
        (self.served_total, self.shed_total, self.error_total)
    }

    /// The worst health across the SLO monitors, right now.
    pub fn overall(&self) -> Health {
        self.statuses().into_iter().map(|s| s.health).max().unwrap_or(Health::Healthy)
    }

    /// Every SLO monitor's current verdict with evidence.
    pub fn statuses(&self) -> Vec<MonitorStatus> {
        vec![
            self.latency_status(),
            self.rate_status(
                "serve.shed_rate",
                ServeOutcome::Shed,
                self.config.shed_warn,
                self.config.shed_alert,
            ),
            self.rate_status(
                "serve.error_rate",
                ServeOutcome::Error,
                self.config.error_warn,
                self.config.error_alert,
            ),
        ]
    }

    fn latency_status(&self) -> MonitorStatus {
        let n = self.latencies.len();
        let target = self.config.p99_target_us;
        let alert_at = target * self.config.p99_alert_mult;
        if n < self.config.min_samples {
            return MonitorStatus {
                monitor: "serve.latency_p99".to_string(),
                health: Health::Healthy,
                observed: 0.0,
                expected: target,
                tolerance: alert_at - target,
                samples: n,
                evidence: format!(
                    "insufficient samples ({n} < {}) for a p99 estimate",
                    self.config.min_samples
                ),
            };
        }
        // Nearest-rank p99 over the window.
        let mut sorted: Vec<(f64, u64)> = self.latencies.iter().copied().collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n) - 1;
        let p99 = sorted[rank].0;
        let health = if p99 > alert_at {
            Health::Alert
        } else if p99 > target {
            Health::Warn
        } else {
            Health::Healthy
        };
        // Name the slowest over-target requests so the alert is actionable:
        // the same ids appear in the audit log, the `/metrics` exemplars and
        // `/debug/trace/<id>`.
        let slowest: Vec<String> = sorted
            .iter()
            .rev()
            .take(3)
            .filter(|(us, _)| *us > target)
            .map(|(us, id)| format!("{}={:.0}us", noodle_trace::format_trace_id(*id), us))
            .collect();
        let offenders = if slowest.is_empty() {
            String::new()
        } else {
            format!("; slowest traces: {}", slowest.join(", "))
        };
        MonitorStatus {
            monitor: "serve.latency_p99".to_string(),
            health,
            observed: p99,
            expected: target,
            tolerance: alert_at - target,
            samples: n,
            evidence: format!(
                "rolling p99 {p99:.0}us vs target {target:.0}us \
                 (alert>{alert_at:.0}us, n={n}){offenders}"
            ),
        }
    }

    fn rate_status(
        &self,
        monitor: &str,
        kind: ServeOutcome,
        warn: f64,
        alert: f64,
    ) -> MonitorStatus {
        let n = self.outcomes.len();
        let hits = self.outcomes.iter().filter(|o| **o == kind).count();
        if n < self.config.min_samples {
            return MonitorStatus {
                monitor: monitor.to_string(),
                health: Health::Healthy,
                observed: 0.0,
                expected: warn,
                tolerance: 0.0,
                samples: n,
                evidence: format!(
                    "insufficient samples ({n} < {}) for a burn-rate estimate",
                    self.config.min_samples
                ),
            };
        }
        let observed = hits as f64 / n as f64;
        let health = if observed > alert {
            Health::Alert
        } else if observed > warn {
            Health::Warn
        } else {
            Health::Healthy
        };
        let what = match kind {
            ServeOutcome::Shed => "shed",
            ServeOutcome::Error => "errored",
            ServeOutcome::Served => "served",
        };
        MonitorStatus {
            monitor: monitor.to_string(),
            health,
            observed,
            expected: warn,
            tolerance: 0.0,
            samples: n,
            evidence: format!(
                "{hits}/{n} admissions {what} ({observed:.3}; warn>{warn:.2}, alert>{alert:.2})"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(min_samples: usize) -> SloSuite {
        SloSuite::new(SloConfig {
            p99_target_us: 1_000.0,
            p99_alert_mult: 2.0,
            min_samples,
            ..SloConfig::default()
        })
    }

    #[test]
    fn underpowered_windows_stay_healthy() {
        let mut slo = suite(10);
        slo.observe_latency(1e9, 0xabc);
        slo.observe_outcome(ServeOutcome::Shed);
        assert_eq!(slo.overall(), Health::Healthy);
        assert!(slo.statuses().iter().all(|s| s.evidence.contains("insufficient")));
    }

    #[test]
    fn p99_warns_above_target_and_alerts_above_mult() {
        let mut slo = suite(5);
        for i in 0..100 {
            slo.observe_latency(500.0 + i as f64, i);
        }
        assert_eq!(slo.overall(), Health::Healthy);

        // Push the p99 just over target: warn.
        for i in 0..5 {
            slo.observe_latency(1_500.0, 0x1000 + i);
        }
        let status = slo.latency_status();
        assert_eq!(status.health, Health::Warn, "{}", status.evidence);

        // Blow through 2× target: alert, naming the slow trace ids.
        for i in 0..10 {
            slo.observe_latency(5_000.0, 0xbad0 + i);
        }
        let status = slo.latency_status();
        assert_eq!(status.health, Health::Alert, "{}", status.evidence);
        assert!(
            status.evidence.contains(&noodle_trace::format_trace_id(0xbad0)),
            "evidence names offenders: {}",
            status.evidence
        );
    }

    #[test]
    fn shed_and_error_burn_rates_trip_independently() {
        let mut slo = suite(10);
        for _ in 0..80 {
            slo.observe_outcome(ServeOutcome::Served);
        }
        for _ in 0..30 {
            slo.observe_outcome(ServeOutcome::Shed);
        }
        let statuses = slo.statuses();
        let shed = statuses.iter().find(|s| s.monitor == "serve.shed_rate").unwrap();
        assert_eq!(shed.health, Health::Alert, "{}", shed.evidence);
        let err = statuses.iter().find(|s| s.monitor == "serve.error_rate").unwrap();
        assert_eq!(err.health, Health::Healthy);
        assert_eq!(slo.totals(), (80, 30, 0));
    }
}
