//! Online monitors over sliding windows of prediction records.
//!
//! Each monitor compares a windowed statistic against a reference (the
//! configured ε, the fit-time calibration baseline, or a fixed threshold)
//! and reports [`Health`] with the evidence that triggered it. Tolerance
//! bands are binomial: for a rate with expectation `p` over `n` samples,
//! `σ = sqrt(p(1−p)/n)` and the monitor warns/alerts at configurable
//! multiples of σ.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::psi::CalibrationBaseline;
use crate::record::PredictionRecord;

/// Health verdict of one monitor, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Health {
    /// Statistic within tolerance of its reference.
    Healthy,
    /// Statistic outside the warn band but below the alert band.
    Warn,
    /// Statistic outside the alert band.
    Alert,
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::Warn => "warn",
            Health::Alert => "alert",
        })
    }
}

/// One monitor's verdict plus the numbers behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorStatus {
    /// Monitor name, e.g. `"coverage.trojan_free"` or `"drift.graph"`.
    pub monitor: String,
    /// The verdict.
    pub health: Health,
    /// The windowed statistic that was checked.
    pub observed: f64,
    /// The reference it was checked against.
    pub expected: f64,
    /// Half-width of the warn band around `expected` (0 for threshold
    /// monitors such as PSI, where `expected` is the warn threshold).
    pub tolerance: f64,
    /// Number of window samples the statistic was computed from.
    pub samples: usize,
    /// Human-readable explanation of the verdict.
    pub evidence: String,
}

/// Thresholds and window sizing for [`MonitorSuite`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Sliding-window length (records) for every monitor.
    pub window: usize,
    /// Monitors stay `Healthy` with an "insufficient samples" note until
    /// this many relevant samples are in the window.
    pub min_samples: usize,
    /// Significance override; falls back to the audit header / records.
    pub epsilon: Option<f64>,
    /// PSI above this warns (industry-standard 0.10).
    pub psi_warn: f64,
    /// PSI above this alerts (industry-standard 0.25).
    pub psi_alert: f64,
    /// Rolling Brier may exceed the fit-time reference by this before warn.
    pub brier_warn_margin: f64,
    /// Rolling Brier may exceed the fit-time reference by this before alert.
    pub brier_alert_margin: f64,
    /// Coverage error warn band, in binomial σ above ε.
    pub coverage_warn_sigmas: f64,
    /// Coverage error alert band, in binomial σ above ε.
    pub coverage_alert_sigmas: f64,
    /// Class-balance warn band, in binomial σ around the baseline balance.
    pub balance_warn_sigmas: f64,
    /// Class-balance alert band, in binomial σ around the baseline balance.
    pub balance_alert_sigmas: f64,
    /// Imputed-modality fraction above this warns.
    pub imputed_warn: f64,
    /// Imputed-modality fraction above this alerts.
    pub imputed_alert: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            window: 256,
            min_samples: 20,
            epsilon: None,
            psi_warn: 0.10,
            psi_alert: 0.25,
            brier_warn_margin: 0.05,
            brier_alert_margin: 0.15,
            coverage_warn_sigmas: 2.0,
            coverage_alert_sigmas: 3.0,
            balance_warn_sigmas: 2.5,
            balance_alert_sigmas: 3.5,
            imputed_warn: 0.10,
            imputed_alert: 0.30,
        }
    }
}

/// A bounded window of f64 observations.
#[derive(Debug, Clone, Default)]
struct Window {
    values: VecDeque<f64>,
    cap: usize,
}

impl Window {
    fn new(cap: usize) -> Self {
        Self { values: VecDeque::with_capacity(cap.min(1024)), cap }
    }

    fn push(&mut self, value: f64) {
        if self.values.len() == self.cap {
            self.values.pop_front();
        }
        self.values.push_back(value);
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
    }

    fn as_vec(&self) -> Vec<f64> {
        self.values.iter().copied().collect()
    }
}

/// The full set of online monitors, fed one [`PredictionRecord`] at a time.
#[derive(Debug, Clone)]
pub struct MonitorSuite {
    config: MonitorConfig,
    baseline: Option<CalibrationBaseline>,
    /// Fallback ε taken from the first record when neither the config nor a
    /// baseline provides one.
    seen_significance: Option<f64>,
    records: usize,
    labeled: usize,
    /// Per-class coverage misses (1.0 = true class outside region).
    coverage_miss: [Window; 2],
    /// Per-record Brier terms (mean squared error over both classes).
    brier: Window,
    /// Predicted-infected indicator for class-balance drift.
    predicted_infected: Window,
    /// Imputed-modality indicator.
    imputed: Window,
    /// Per-source predicted-class (minimum) nonconformity scores, keyed in
    /// baseline-source order.
    source_scores: Vec<(String, Window)>,
}

impl MonitorSuite {
    /// A suite with the given thresholds and optional fit-time baseline.
    pub fn new(config: MonitorConfig, baseline: Option<CalibrationBaseline>) -> Self {
        let w = config.window;
        let source_scores = baseline
            .as_ref()
            .map(|b| b.sources.keys().map(|k| (k.clone(), Window::new(w))).collect())
            .unwrap_or_default();
        Self {
            config,
            baseline,
            seen_significance: None,
            records: 0,
            labeled: 0,
            coverage_miss: [Window::new(w), Window::new(w)],
            brier: Window::new(w),
            predicted_infected: Window::new(w),
            imputed: Window::new(w),
            source_scores,
        }
    }

    /// The significance level monitors are checking coverage against.
    pub fn epsilon(&self) -> Option<f64> {
        self.config
            .epsilon
            .or(self.baseline.as_ref().map(|b| b.significance))
            .or(self.seen_significance)
    }

    /// Total records ingested.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Records that carried a ground-truth label.
    pub fn labeled(&self) -> usize {
        self.labeled
    }

    /// Ingests one prediction record into every window.
    pub fn push(&mut self, record: &PredictionRecord) {
        self.records += 1;
        if self.seen_significance.is_none() && record.significance > 0.0 {
            self.seen_significance = Some(record.significance);
        }
        self.predicted_infected.push(if record.infected { 1.0 } else { 0.0 });
        self.imputed.push(if record.imputed_modality { 1.0 } else { 0.0 });

        if let Some(label) = record.label.filter(|l| *l < 2) {
            self.labeled += 1;
            let miss = if record.region.contains(&label) { 0.0 } else { 1.0 };
            self.coverage_miss[label].push(miss);
            // Brier over the normalized two-class probability vector.
            let p1 = record.probability_infected;
            let (t0, t1) = if label == 0 { (1.0, 0.0) } else { (0.0, 1.0) };
            let term = (((1.0 - p1) - t0).powi(2) + (p1 - t1).powi(2)) / 2.0;
            self.brier.push(term);
        }

        for (name, window) in &mut self.source_scores {
            if let Some(probe) = record.sources.iter().find(|p| &p.source == name) {
                let min_score = probe.scores[0].min(probe.scores[1]);
                window.push(min_score);
            }
        }
    }

    /// Evaluates every monitor against its reference.
    pub fn statuses(&self) -> Vec<MonitorStatus> {
        let mut out = Vec::new();
        out.extend(self.coverage_statuses());
        if let Some(status) = self.brier_status() {
            out.push(status);
        }
        out.extend(self.drift_statuses());
        if let Some(status) = self.balance_status() {
            out.push(status);
        }
        out.push(self.imputed_status());
        out
    }

    /// The worst health across all monitors.
    pub fn overall(&self) -> Health {
        self.statuses().iter().map(|s| s.health).max().unwrap_or(Health::Healthy)
    }

    fn underpowered(&self, monitor: &str, observed: f64, expected: f64, n: usize) -> MonitorStatus {
        MonitorStatus {
            monitor: monitor.to_string(),
            health: Health::Healthy,
            observed,
            expected,
            tolerance: 0.0,
            samples: n,
            evidence: format!(
                "insufficient samples ({n} < {}); monitor not yet powered",
                self.config.min_samples
            ),
        }
    }

    fn coverage_statuses(&self) -> Vec<MonitorStatus> {
        let names = ["coverage.trojan_free", "coverage.trojan_infected"];
        let Some(epsilon) = self.epsilon() else {
            return Vec::new();
        };
        names
            .iter()
            .zip(self.coverage_miss.iter())
            .map(|(name, window)| {
                let n = window.len();
                if n < self.config.min_samples {
                    return self.underpowered(name, window.mean().unwrap_or(0.0), epsilon, n);
                }
                let err = window.mean().expect("non-empty window");
                let sigma = (epsilon * (1.0 - epsilon) / n as f64).sqrt();
                let warn = epsilon + self.config.coverage_warn_sigmas * sigma;
                let alert = epsilon + self.config.coverage_alert_sigmas * sigma;
                let health = if err > alert {
                    Health::Alert
                } else if err > warn {
                    Health::Warn
                } else {
                    Health::Healthy
                };
                MonitorStatus {
                    monitor: name.to_string(),
                    health,
                    observed: err,
                    expected: epsilon,
                    tolerance: self.config.coverage_warn_sigmas * sigma,
                    samples: n,
                    evidence: format!(
                        "empirical miscoverage {err:.3} vs ε={epsilon:.3} \
                         (warn>{warn:.3}, alert>{alert:.3}, n={n})"
                    ),
                }
            })
            .collect()
    }

    fn brier_status(&self) -> Option<MonitorStatus> {
        let reference = self.baseline.as_ref()?.winner_brier;
        let n = self.brier.len();
        if n < self.config.min_samples {
            return Some(self.underpowered(
                "brier",
                self.brier.mean().unwrap_or(0.0),
                reference,
                n,
            ));
        }
        let observed = self.brier.mean().expect("non-empty window");
        let warn = reference + self.config.brier_warn_margin;
        let alert = reference + self.config.brier_alert_margin;
        let health = if observed > alert {
            Health::Alert
        } else if observed > warn {
            Health::Warn
        } else {
            Health::Healthy
        };
        Some(MonitorStatus {
            monitor: "brier".to_string(),
            health,
            observed,
            expected: reference,
            tolerance: self.config.brier_warn_margin,
            samples: n,
            evidence: format!(
                "rolling Brier {observed:.4} vs fit-time {reference:.4} \
                 (warn>{warn:.4}, alert>{alert:.4}, n={n})"
            ),
        })
    }

    fn drift_statuses(&self) -> Vec<MonitorStatus> {
        let Some(baseline) = self.baseline.as_ref() else {
            return Vec::new();
        };
        self.source_scores
            .iter()
            .filter_map(|(name, window)| {
                let reference = baseline.sources.get(name)?;
                let monitor = format!("drift.{name}");
                let n = window.len();
                if n < self.config.min_samples {
                    return Some(self.underpowered(&monitor, 0.0, self.config.psi_warn, n));
                }
                let psi = reference.psi(&window.as_vec())?;
                // A finite window has nonzero PSI even with no shift: under
                // the null the estimate behaves like a scaled χ² with
                // (bins − 1) degrees of freedom, mean ≈ (bins − 1)/n. Subtract
                // that noise floor so small windows are not spuriously
                // flagged.
                let noise_floor = reference.expected.len().saturating_sub(1) as f64 / n as f64;
                let adjusted = (psi - noise_floor).max(0.0);
                let health = if adjusted > self.config.psi_alert {
                    Health::Alert
                } else if adjusted > self.config.psi_warn {
                    Health::Warn
                } else {
                    Health::Healthy
                };
                Some(MonitorStatus {
                    monitor,
                    health,
                    observed: adjusted,
                    expected: self.config.psi_warn,
                    tolerance: 0.0,
                    samples: n,
                    evidence: format!(
                        "PSI {adjusted:.3} (raw {psi:.3} − noise floor {noise_floor:.3}) of \
                         predicted-class nonconformity scores vs calibration baseline \
                         (warn>{:.2}, alert>{:.2}, n={n})",
                        self.config.psi_warn, self.config.psi_alert
                    ),
                })
            })
            .collect()
    }

    fn balance_status(&self) -> Option<MonitorStatus> {
        let reference = self.baseline.as_ref()?.class_balance;
        let n = self.predicted_infected.len();
        if n < self.config.min_samples {
            return Some(self.underpowered(
                "class_balance",
                self.predicted_infected.mean().unwrap_or(0.0),
                reference,
                n,
            ));
        }
        let observed = self.predicted_infected.mean().expect("non-empty window");
        let sigma = (reference * (1.0 - reference) / n as f64).sqrt().max(1e-6);
        let deviation = (observed - reference).abs();
        let warn = self.config.balance_warn_sigmas * sigma;
        let alert = self.config.balance_alert_sigmas * sigma;
        let health = if deviation > alert {
            Health::Alert
        } else if deviation > warn {
            Health::Warn
        } else {
            Health::Healthy
        };
        Some(MonitorStatus {
            monitor: "class_balance".to_string(),
            health,
            observed,
            expected: reference,
            tolerance: warn,
            samples: n,
            evidence: format!(
                "predicted-infected fraction {observed:.3} vs calibration balance \
                 {reference:.3} (±{warn:.3} warn, ±{alert:.3} alert, n={n})"
            ),
        })
    }

    fn imputed_status(&self) -> MonitorStatus {
        let n = self.imputed.len();
        if n < self.config.min_samples {
            return self.underpowered(
                "modality.imputed",
                self.imputed.mean().unwrap_or(0.0),
                self.config.imputed_warn,
                n,
            );
        }
        let observed = self.imputed.mean().expect("non-empty window");
        let health = if observed > self.config.imputed_alert {
            Health::Alert
        } else if observed > self.config.imputed_warn {
            Health::Warn
        } else {
            Health::Healthy
        };
        MonitorStatus {
            monitor: "modality.imputed".to_string(),
            health,
            observed,
            expected: self.config.imputed_warn,
            tolerance: 0.0,
            samples: n,
            evidence: format!(
                "imputed-modality fraction {observed:.3} (warn>{:.2}, alert>{:.2}, n={n})",
                self.config.imputed_warn, self.config.imputed_alert
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psi::ScoreBaseline;
    use crate::record::SourceProbe;
    use std::collections::BTreeMap;

    fn config() -> MonitorConfig {
        MonitorConfig { window: 128, min_samples: 20, ..MonitorConfig::default() }
    }

    fn baseline() -> CalibrationBaseline {
        let scores: Vec<f64> = (0..200).map(|i| 0.05 + 0.001 * (i % 100) as f64).collect();
        let mut sources = BTreeMap::new();
        sources
            .insert("early_fusion".to_string(), ScoreBaseline::from_scores(&scores, 10).unwrap());
        CalibrationBaseline {
            sources,
            class_balance: 1.0 / 3.0,
            winner_brier: 0.05,
            significance: 0.1,
            calibration_count: 200,
        }
    }

    /// A record whose coverage, Brier, drift, balance and imputation
    /// behavior the caller controls.
    fn record(
        label: usize,
        covered: bool,
        p1: f64,
        min_score: f64,
        imputed: bool,
    ) -> PredictionRecord {
        let region = if covered { vec![label] } else { vec![1 - label] };
        let infected = p1 >= 0.5;
        PredictionRecord {
            seq: 0,
            design: String::new(),
            trace_id: String::new(),
            strategy: "EarlyFusion".into(),
            infected,
            probability_infected: p1,
            p_values: [1.0 - p1, p1],
            region,
            credibility: 0.9,
            confidence: 0.9,
            uncertain: false,
            significance: 0.1,
            graph_present: true,
            tabular_present: !imputed,
            imputed_modality: imputed,
            label: Some(label),
            latency_us: 50.0,
            batch_latency_us: 50.0,
            batch_size: 1,
            sources: vec![SourceProbe {
                source: "early_fusion".into(),
                p_values: [1.0 - p1, p1],
                scores: [min_score + 0.4, min_score],
            }],
        }
    }

    fn status<'a>(statuses: &'a [MonitorStatus], name: &str) -> &'a MonitorStatus {
        statuses.iter().find(|s| s.monitor == name).unwrap_or_else(|| panic!("no monitor {name}"))
    }

    #[test]
    fn in_distribution_stream_is_healthy() {
        let config = MonitorConfig { window: 256, ..config() };
        let mut suite = MonitorSuite::new(config, Some(baseline()));
        // 1/3 infected, ~5% miscoverage, good Brier, scores matching the
        // calibration baseline's support exactly.
        for i in 0..200 {
            let label = usize::from(i % 3 == 0);
            let covered = i % 20 != 0;
            let p1 = if label == 1 { 0.9 } else { 0.1 };
            suite.push(&record(label, covered, p1, 0.05 + 0.001 * (i % 100) as f64, false));
        }
        assert_eq!(suite.overall(), Health::Healthy, "{:#?}", suite.statuses());
        assert_eq!(suite.records(), 200);
        assert_eq!(suite.labeled(), 200);
    }

    #[test]
    fn coverage_collapse_alerts_per_class() {
        let mut suite = MonitorSuite::new(config(), Some(baseline()));
        for i in 0..90 {
            let label = usize::from(i % 3 == 0);
            // Trojan-infected class always misses coverage.
            let covered = label == 0;
            let p1 = if label == 1 { 0.1 } else { 0.1 };
            suite.push(&record(label, covered, p1, 0.06, false));
        }
        let statuses = suite.statuses();
        assert_eq!(status(&statuses, "coverage.trojan_infected").health, Health::Alert);
        assert_eq!(status(&statuses, "coverage.trojan_free").health, Health::Healthy);
        assert_eq!(suite.overall(), Health::Alert);
    }

    #[test]
    fn score_shift_trips_psi_drift() {
        let mut suite = MonitorSuite::new(config(), Some(baseline()));
        for i in 0..60 {
            let label = usize::from(i % 3 == 0);
            let p1 = if label == 1 { 0.9 } else { 0.1 };
            // Scores far above the calibration baseline's support.
            suite.push(&record(label, true, p1, 0.4 + 0.001 * (i % 50) as f64, false));
        }
        let statuses = suite.statuses();
        assert_eq!(status(&statuses, "drift.early_fusion").health, Health::Alert);
    }

    #[test]
    fn degraded_probabilities_alert_on_brier() {
        let mut suite = MonitorSuite::new(config(), Some(baseline()));
        for i in 0..60 {
            let label = usize::from(i % 3 == 0);
            // Covered regions but near-chance probabilities: Brier ~0.25.
            let p1 = 0.5;
            suite.push(&record(label, true, p1, 0.06, false));
        }
        let statuses = suite.statuses();
        assert_eq!(status(&statuses, "brier").health, Health::Alert);
    }

    #[test]
    fn class_balance_shift_is_flagged() {
        let mut suite = MonitorSuite::new(config(), Some(baseline()));
        // Everything predicted infected vs baseline balance 1/3.
        for _ in 0..60 {
            suite.push(&record(1, true, 0.9, 0.06, false));
        }
        let statuses = suite.statuses();
        assert_eq!(status(&statuses, "class_balance").health, Health::Alert);
    }

    #[test]
    fn heavy_imputation_warns_then_alerts() {
        let mut suite = MonitorSuite::new(config(), None);
        for i in 0..60 {
            suite.push(&record(0, true, 0.1, 0.06, i % 5 == 0));
        }
        let statuses = suite.statuses();
        assert_eq!(status(&statuses, "modality.imputed").health, Health::Warn);

        let mut suite = MonitorSuite::new(config(), None);
        for _ in 0..60 {
            suite.push(&record(0, true, 0.1, 0.06, true));
        }
        assert_eq!(status(&suite.statuses(), "modality.imputed").health, Health::Alert);
    }

    #[test]
    fn underpowered_monitors_stay_healthy_with_a_note() {
        let mut suite = MonitorSuite::new(config(), Some(baseline()));
        for _ in 0..5 {
            suite.push(&record(1, false, 0.5, 0.45, true));
        }
        for status in suite.statuses() {
            assert_eq!(status.health, Health::Healthy, "{status:?}");
            assert!(status.evidence.contains("insufficient samples"), "{status:?}");
        }
    }

    #[test]
    fn unlabeled_records_skip_coverage_and_brier() {
        let mut suite = MonitorSuite::new(config(), Some(baseline()));
        for _ in 0..40 {
            let mut r = record(0, true, 0.1, 0.06, false);
            r.label = None;
            suite.push(&r);
        }
        assert_eq!(suite.labeled(), 0);
        let statuses = suite.statuses();
        assert!(status(&statuses, "brier").evidence.contains("insufficient samples"));
        // Unlabeled monitors still run: balance + drift are label-free.
        assert_eq!(status(&statuses, "class_balance").health, Health::Alert);
    }

    #[test]
    fn health_orders_by_severity() {
        assert!(Health::Healthy < Health::Warn);
        assert!(Health::Warn < Health::Alert);
        assert_eq!(serde_json::to_string(&Health::Warn).unwrap(), "\"warn\"");
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = Window::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.as_vec(), vec![2.0, 3.0, 4.0]);
        assert_eq!(w.mean(), Some(3.0));
    }
}
