//! Pluggable audit sinks: where prediction records go as they are emitted.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::record::{AuditHeader, AuditLine, PredictionRecord};

/// Receives the audit header once and every prediction record as it is
/// produced.
///
/// The `Debug` supertrait keeps holders (e.g. the detector) derivable;
/// sinks over opaque writers implement it with a placeholder.
pub trait AuditSink: Send + fmt::Debug {
    /// Called once when the sink is attached, with the emitting detector's
    /// header (version, significance, calibration baseline).
    fn header(&mut self, header: &AuditHeader);

    /// Called once per prediction.
    fn record(&mut self, record: &PredictionRecord);
}

/// Runs `build` and emits the resulting record only when a sink is
/// attached.
///
/// This is the gating discipline of the hot detect path: with `sink ==
/// None` the builder closure is never invoked, so audit emission adds zero
/// allocations to an unaudited detector (verified by the crate's
/// counting-allocator test).
pub fn emit_if<F: FnOnce() -> PredictionRecord>(sink: Option<&mut dyn AuditSink>, build: F) {
    if let Some(sink) = sink {
        let record = build();
        sink.record(&record);
        noodle_telemetry::counter_add("audit.records", 1);
    }
}

/// Streams one JSON object per line to a writer — the `detect --audit`
/// sink. The header becomes the first line, so the log replays standalone.
pub struct JsonlAudit {
    writer: Box<dyn Write + Send>,
}

impl JsonlAudit {
    /// An audit sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { writer }
    }

    /// Creates (or truncates) `path` and streams the log to it, buffered.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    fn write_line(&mut self, line: &AuditLine) {
        if let Ok(json) = serde_json::to_string(line) {
            let _ = writeln!(self.writer, "{json}");
        }
    }
}

impl fmt::Debug for JsonlAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlAudit").finish_non_exhaustive()
    }
}

impl AuditSink for JsonlAudit {
    fn header(&mut self, header: &AuditHeader) {
        self.write_line(&AuditLine::Header(header.clone()));
    }

    fn record(&mut self, record: &PredictionRecord) {
        self.write_line(&AuditLine::Prediction(record.clone()));
    }
}

impl Drop for JsonlAudit {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Fans every header/record out to several sinks in order — e.g. a file
/// sink for durable audit plus a [`crate::StreamingMonitors`] clone so the
/// live exposition server sees each prediction as it happens.
#[derive(Debug, Default)]
pub struct TeeAudit {
    sinks: Vec<Box<dyn AuditSink>>,
}

impl TeeAudit {
    /// A tee over the given sinks, invoked in order.
    pub fn new(sinks: Vec<Box<dyn AuditSink>>) -> Self {
        Self { sinks }
    }

    /// Appends another downstream sink.
    pub fn push(&mut self, sink: Box<dyn AuditSink>) {
        self.sinks.push(sink);
    }
}

impl AuditSink for TeeAudit {
    fn header(&mut self, header: &AuditHeader) {
        for sink in &mut self.sinks {
            sink.header(header);
        }
    }

    fn record(&mut self, record: &PredictionRecord) {
        for sink in &mut self.sinks {
            sink.record(record);
        }
    }
}

/// A size-rotated JSONL audit sink.
///
/// Writes to `path` until the next line would push the segment past
/// `max_bytes`, then rotates: the live log is flushed, fsynced and renamed
/// to `path.1` (existing `path.i` shift to `path.i+1`, the oldest beyond
/// `keep` is dropped) and a fresh live file is opened. The audit header is
/// re-emitted at the top of every segment so each one replays standalone
/// through [`crate::replay`].
///
/// A `max_bytes` of `0` disables rotation (plain append-forever
/// behaviour); a single record larger than `max_bytes` still lands whole
/// in its own segment — lines are never split across files.
pub struct RotatingJsonlAudit {
    path: PathBuf,
    file: std::io::BufWriter<std::fs::File>,
    written: u64,
    max_bytes: u64,
    keep: usize,
    header: Option<AuditHeader>,
}

impl RotatingJsonlAudit {
    /// Creates (or truncates) the live log at `path`, rotating segments at
    /// `max_bytes` and keeping at most `keep` rotated files (`keep` is
    /// clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if the live file cannot be created.
    pub fn create(path: &Path, max_bytes: u64, keep: usize) -> std::io::Result<Self> {
        let file = std::io::BufWriter::new(std::fs::File::create(path)?);
        Ok(Self {
            path: path.to_path_buf(),
            file,
            written: 0,
            max_bytes,
            keep: keep.max(1),
            header: None,
        })
    }

    /// The path a rotated segment lands at: `<live>.<index>`, newest first.
    pub fn rotated_path(path: &Path, index: usize) -> PathBuf {
        PathBuf::from(format!("{}.{index}", path.display()))
    }

    fn rotate(&mut self) {
        // Durability point: everything in the closing segment reaches disk
        // before any rename happens.
        let _ = self.file.flush();
        let _ = self.file.get_ref().sync_all();
        for i in (1..self.keep).rev() {
            let from = Self::rotated_path(&self.path, i);
            if from.exists() {
                let _ = std::fs::rename(&from, Self::rotated_path(&self.path, i + 1));
            }
        }
        let _ = std::fs::rename(&self.path, Self::rotated_path(&self.path, 1));
        match std::fs::File::create(&self.path) {
            Ok(file) => {
                self.file = std::io::BufWriter::new(file);
                self.written = 0;
                if let Some(header) = self.header.clone() {
                    self.write_line(&AuditLine::Header(header));
                }
            }
            Err(_) => {
                // Could not reopen; keep appending to the old handle (now
                // named `.1`) rather than silently dropping records.
                self.written = 0;
            }
        }
    }

    fn write_line(&mut self, line: &AuditLine) {
        if let Ok(json) = serde_json::to_string(line) {
            let len = json.len() as u64 + 1;
            if self.max_bytes > 0 && self.written > 0 && self.written + len > self.max_bytes {
                self.rotate();
            }
            if writeln!(self.file, "{json}").is_ok() {
                self.written += len;
            }
        }
    }
}

impl fmt::Debug for RotatingJsonlAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RotatingJsonlAudit")
            .field("path", &self.path)
            .field("max_bytes", &self.max_bytes)
            .field("keep", &self.keep)
            .finish_non_exhaustive()
    }
}

impl AuditSink for RotatingJsonlAudit {
    fn header(&mut self, header: &AuditHeader) {
        self.header = Some(header.clone());
        self.write_line(&AuditLine::Header(header.clone()));
    }

    fn record(&mut self, record: &PredictionRecord) {
        self.write_line(&AuditLine::Prediction(record.clone()));
    }
}

impl Drop for RotatingJsonlAudit {
    fn drop(&mut self) {
        let _ = self.file.flush();
    }
}

/// Collects records in memory, for tests. Clones share storage, so a test
/// can keep one handle and attach the other to a detector.
#[derive(Debug, Default, Clone)]
pub struct MemoryAudit {
    inner: Arc<Mutex<MemoryAuditInner>>,
}

#[derive(Debug, Default)]
struct MemoryAuditInner {
    header: Option<AuditHeader>,
    records: Vec<PredictionRecord>,
}

impl MemoryAudit {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The header received, if any.
    pub fn header(&self) -> Option<AuditHeader> {
        self.inner.lock().expect("memory audit poisoned").header.clone()
    }

    /// Every record received so far, in emission order.
    pub fn records(&self) -> Vec<PredictionRecord> {
        self.inner.lock().expect("memory audit poisoned").records.clone()
    }
}

impl AuditSink for MemoryAudit {
    fn header(&mut self, header: &AuditHeader) {
        self.inner.lock().expect("memory audit poisoned").header = Some(header.clone());
    }

    fn record(&mut self, record: &PredictionRecord) {
        self.inner.lock().expect("memory audit poisoned").records.push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_audit_log, SourceProbe, AUDIT_SCHEMA_VERSION};

    fn record(seq: u64) -> PredictionRecord {
        PredictionRecord {
            seq,
            design: "uart_ti_000".into(),
            trace_id: String::new(),
            strategy: "EarlyFusion".into(),
            infected: true,
            probability_infected: 0.9,
            p_values: [0.05, 0.45],
            region: vec![1],
            credibility: 0.45,
            confidence: 0.95,
            uncertain: false,
            significance: 0.1,
            graph_present: true,
            tabular_present: false,
            imputed_modality: true,
            label: Some(1),
            latency_us: 100.0,
            batch_latency_us: 100.0,
            batch_size: 1,
            sources: vec![SourceProbe {
                source: "early_fusion".into(),
                p_values: [0.05, 0.45],
                scores: [0.9, 0.1],
            }],
        }
    }

    fn header() -> AuditHeader {
        AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            significance: 0.1,
            strategy: "EarlyFusion".into(),
            simd: String::new(),
            quantized: false,
            baseline: None,
            serve: None,
        }
    }

    #[test]
    fn jsonl_audit_writes_parseable_log() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlAudit::new(Box::new(Shared(buf.clone())));
        sink.header(&header());
        sink.record(&record(0));
        sink.record(&record(1));
        drop(sink);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let (parsed_header, records) = parse_audit_log(&text).unwrap();
        assert_eq!(parsed_header.unwrap().strategy, "EarlyFusion");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], record(0));
    }

    #[test]
    fn memory_audit_shares_storage_across_clones() {
        let sink = MemoryAudit::new();
        let mut attached = sink.clone();
        attached.header(&header());
        attached.record(&record(7));
        assert_eq!(sink.header().unwrap().significance, 0.1);
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.records()[0].seq, 7);
    }

    #[test]
    fn emit_if_skips_the_builder_without_a_sink() {
        emit_if(None, || panic!("builder must not run when no sink is attached"));
        let sink = MemoryAudit::new();
        let mut attached = sink.clone();
        emit_if(Some(&mut attached), || record(3));
        assert_eq!(sink.records().len(), 1);
    }

    #[test]
    fn tee_fans_out_to_every_sink() {
        let a = MemoryAudit::new();
        let b = MemoryAudit::new();
        let mut tee = TeeAudit::new(vec![Box::new(a.clone())]);
        tee.push(Box::new(b.clone()));
        tee.header(&header());
        tee.record(&record(0));
        tee.record(&record(1));
        assert_eq!(a.records().len(), 2);
        assert_eq!(b.records().len(), 2);
        assert_eq!(b.header().unwrap().strategy, "EarlyFusion");
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("noodle_sink_{tag}_{}_{n}", std::process::id()))
    }

    #[test]
    fn rotation_shifts_segments_and_reemits_the_header() {
        let dir = temp_path("rotate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        // Tiny cap: every record forces a rotation.
        let mut sink = RotatingJsonlAudit::create(&path, 64, 2).unwrap();
        sink.header(&header());
        for seq in 0..4 {
            sink.record(&record(seq));
        }
        drop(sink);

        // Live file plus at most `keep` rotated segments; older dropped.
        assert!(path.exists());
        assert!(RotatingJsonlAudit::rotated_path(&path, 1).exists());
        assert!(RotatingJsonlAudit::rotated_path(&path, 2).exists());
        assert!(!RotatingJsonlAudit::rotated_path(&path, 3).exists());

        // Every segment replays standalone: header first, then records.
        for p in [
            path.clone(),
            RotatingJsonlAudit::rotated_path(&path, 1),
            RotatingJsonlAudit::rotated_path(&path, 2),
        ] {
            let text = std::fs::read_to_string(&p).unwrap();
            let (parsed_header, records) = parse_audit_log(&text).unwrap();
            assert!(parsed_header.is_some(), "segment {} lost its header", p.display());
            assert!(!records.is_empty(), "segment {} has no records", p.display());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_max_bytes_never_rotates() {
        let dir = temp_path("norotate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        let mut sink = RotatingJsonlAudit::create(&path, 0, 4).unwrap();
        sink.header(&header());
        for seq in 0..16 {
            sink.record(&record(seq));
        }
        drop(sink);
        assert!(!RotatingJsonlAudit::rotated_path(&path, 1).exists());
        let (_, records) = parse_audit_log(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(records.len(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
