//! Pluggable audit sinks: where prediction records go as they are emitted.

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::record::{AuditHeader, AuditLine, PredictionRecord};

/// Receives the audit header once and every prediction record as it is
/// produced.
///
/// The `Debug` supertrait keeps holders (e.g. the detector) derivable;
/// sinks over opaque writers implement it with a placeholder.
pub trait AuditSink: Send + fmt::Debug {
    /// Called once when the sink is attached, with the emitting detector's
    /// header (version, significance, calibration baseline).
    fn header(&mut self, header: &AuditHeader);

    /// Called once per prediction.
    fn record(&mut self, record: &PredictionRecord);
}

/// Runs `build` and emits the resulting record only when a sink is
/// attached.
///
/// This is the gating discipline of the hot detect path: with `sink ==
/// None` the builder closure is never invoked, so audit emission adds zero
/// allocations to an unaudited detector (verified by the crate's
/// counting-allocator test).
pub fn emit_if<F: FnOnce() -> PredictionRecord>(sink: Option<&mut dyn AuditSink>, build: F) {
    if let Some(sink) = sink {
        let record = build();
        sink.record(&record);
        noodle_telemetry::counter_add("audit.records", 1);
    }
}

/// Streams one JSON object per line to a writer — the `detect --audit`
/// sink. The header becomes the first line, so the log replays standalone.
pub struct JsonlAudit {
    writer: Box<dyn Write + Send>,
}

impl JsonlAudit {
    /// An audit sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self { writer }
    }

    /// Creates (or truncates) `path` and streams the log to it, buffered.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    fn write_line(&mut self, line: &AuditLine) {
        if let Ok(json) = serde_json::to_string(line) {
            let _ = writeln!(self.writer, "{json}");
        }
    }
}

impl fmt::Debug for JsonlAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlAudit").finish_non_exhaustive()
    }
}

impl AuditSink for JsonlAudit {
    fn header(&mut self, header: &AuditHeader) {
        self.write_line(&AuditLine::Header(header.clone()));
    }

    fn record(&mut self, record: &PredictionRecord) {
        self.write_line(&AuditLine::Prediction(record.clone()));
    }
}

impl Drop for JsonlAudit {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Collects records in memory, for tests. Clones share storage, so a test
/// can keep one handle and attach the other to a detector.
#[derive(Debug, Default, Clone)]
pub struct MemoryAudit {
    inner: Arc<Mutex<MemoryAuditInner>>,
}

#[derive(Debug, Default)]
struct MemoryAuditInner {
    header: Option<AuditHeader>,
    records: Vec<PredictionRecord>,
}

impl MemoryAudit {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The header received, if any.
    pub fn header(&self) -> Option<AuditHeader> {
        self.inner.lock().expect("memory audit poisoned").header.clone()
    }

    /// Every record received so far, in emission order.
    pub fn records(&self) -> Vec<PredictionRecord> {
        self.inner.lock().expect("memory audit poisoned").records.clone()
    }
}

impl AuditSink for MemoryAudit {
    fn header(&mut self, header: &AuditHeader) {
        self.inner.lock().expect("memory audit poisoned").header = Some(header.clone());
    }

    fn record(&mut self, record: &PredictionRecord) {
        self.inner.lock().expect("memory audit poisoned").records.push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{parse_audit_log, SourceProbe, AUDIT_SCHEMA_VERSION};

    fn record(seq: u64) -> PredictionRecord {
        PredictionRecord {
            seq,
            design: "uart_ti_000".into(),
            strategy: "EarlyFusion".into(),
            infected: true,
            probability_infected: 0.9,
            p_values: [0.05, 0.45],
            region: vec![1],
            credibility: 0.45,
            confidence: 0.95,
            uncertain: false,
            significance: 0.1,
            graph_present: true,
            tabular_present: false,
            imputed_modality: true,
            label: Some(1),
            latency_us: 100.0,
            batch_latency_us: 100.0,
            batch_size: 1,
            sources: vec![SourceProbe {
                source: "early_fusion".into(),
                p_values: [0.05, 0.45],
                scores: [0.9, 0.1],
            }],
        }
    }

    fn header() -> AuditHeader {
        AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            significance: 0.1,
            strategy: "EarlyFusion".into(),
            baseline: None,
        }
    }

    #[test]
    fn jsonl_audit_writes_parseable_log() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlAudit::new(Box::new(Shared(buf.clone())));
        sink.header(&header());
        sink.record(&record(0));
        sink.record(&record(1));
        drop(sink);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let (parsed_header, records) = parse_audit_log(&text).unwrap();
        assert_eq!(parsed_header.unwrap().strategy, "EarlyFusion");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], record(0));
    }

    #[test]
    fn memory_audit_shares_storage_across_clones() {
        let sink = MemoryAudit::new();
        let mut attached = sink.clone();
        attached.header(&header());
        attached.record(&record(7));
        assert_eq!(sink.header().unwrap().significance, 0.1);
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.records()[0].seq, 7);
    }

    #[test]
    fn emit_if_skips_the_builder_without_a_sink() {
        emit_if(None, || panic!("builder must not run when no sink is attached"));
        let sink = MemoryAudit::new();
        let mut attached = sink.clone();
        emit_if(Some(&mut attached), || record(3));
        assert_eq!(sink.records().len(), 1);
    }
}
