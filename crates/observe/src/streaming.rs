//! The incremental streaming engine behind live monitoring.
//!
//! [`StreamingMonitors`] consumes [`PredictionRecord`]s one at a time with
//! O(window) memory and can be cheaply cloned: every clone shares the same
//! monitor state behind an `Arc<Mutex<_>>`. That makes it the single
//! engine for all three consumption modes:
//!
//! - **in-flight**: attached (directly or via `TeeAudit`) as an
//!   [`AuditSink`], so every `detect`/`detect_batch` call updates the
//!   monitors as the prediction is emitted;
//! - **scraped**: a clone held by the `noodle-export` exposition server
//!   renders `GET /monitor` and `GET /healthz` from the live state;
//! - **replayed**: [`crate::replay`] is a thin loop that feeds a parsed
//!   audit log through a fresh instance — by construction, streaming and
//!   batch replay produce identical reports (enforced by a prefix
//!   property test in this crate).

use std::sync::{Arc, Mutex};

use crate::monitor::{Health, MonitorConfig, MonitorStatus, MonitorSuite};
use crate::record::{AuditHeader, PredictionRecord};
use crate::report::{MonitorReport, MONITOR_SCHEMA_VERSION};
use crate::sink::AuditSink;
use crate::slo::{ServeOutcome, SloConfig, SloSuite};

/// One monitor's health change, as surfaced by
/// [`StreamingMonitors::transitions_since_last`].
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// The health the monitor reported before the change (monitors never
    /// seen before start from [`Health::Healthy`]).
    pub from: Health,
    /// The monitor's current status (name, new health, evidence).
    pub status: MonitorStatus,
}

/// Called (with the internal lock released) when the overall health first
/// degrades to [`Health::Alert`]; receives the report computed at the
/// transitioning record.
type AlertHook = Arc<dyn Fn(&MonitorReport) + Send + Sync>;

struct StreamingState {
    config: MonitorConfig,
    suite: MonitorSuite,
    /// Serving SLO monitors, installed by the `serve` daemon via
    /// [`StreamingMonitors::set_slo`]; `None` for replay/one-shot use, so
    /// the streaming==replay equivalence is untouched.
    slo: Option<SloSuite>,
    /// Per-monitor health at the last `transitions_since_last` call, for
    /// the `--follow` transition printer. Only populated on demand, so
    /// plain replay pays nothing for it.
    last_health: std::collections::BTreeMap<String, Health>,
    /// Overall health as of the previous record, maintained only while an
    /// alert hook is installed (computing it allocates evidence strings,
    /// so hook-less replay pays nothing).
    last_overall: Health,
    alert_hook: Option<AlertHook>,
}

impl std::fmt::Debug for StreamingState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingState")
            .field("config", &self.config)
            .field("suite", &self.suite)
            .field("slo", &self.slo)
            .field("last_health", &self.last_health)
            .field("last_overall", &self.last_overall)
            .field("alert_hook", &self.alert_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

/// A shareable, incremental monitor engine: push records as they happen,
/// read a consistent [`MonitorReport`] at any moment.
///
/// Memory is O(window) regardless of how many records have been consumed
/// — the underlying [`MonitorSuite`] keeps only its sliding windows.
#[derive(Debug, Clone)]
pub struct StreamingMonitors {
    inner: Arc<Mutex<StreamingState>>,
}

impl StreamingMonitors {
    /// A fresh engine with the given thresholds and no calibration
    /// baseline yet (supply one via [`StreamingMonitors::observe_header`]).
    pub fn new(config: MonitorConfig) -> Self {
        let suite = MonitorSuite::new(config.clone(), None);
        Self {
            inner: Arc::new(Mutex::new(StreamingState {
                config,
                suite,
                slo: None,
                last_health: std::collections::BTreeMap::new(),
                last_overall: Health::Healthy,
                alert_hook: None,
            })),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, StreamingState> {
        self.inner.lock().expect("streaming monitor state poisoned")
    }

    /// Applies an audit-log header: its calibration baseline powers the
    /// drift/Brier/class-balance monitors.
    ///
    /// Only effective before the first record; later headers (e.g. the
    /// re-emitted header at the top of each rotated log segment) are
    /// ignored so a follower can tail across rotations without resetting
    /// monitor state.
    pub fn observe_header(&self, header: &AuditHeader) {
        let mut state = self.state();
        if state.suite.records() == 0 {
            state.suite = MonitorSuite::new(state.config.clone(), header.baseline.clone());
        }
    }

    /// Ingests one prediction record into every monitor window.
    ///
    /// While an alert hook is installed (see
    /// [`StreamingMonitors::set_alert_hook`]), the overall health is
    /// re-evaluated per record; a change is logged to the flight recorder
    /// and a degradation to [`Health::Alert`] fires the hook exactly once
    /// per Healthy/Warn→Alert transition, with the lock already released.
    pub fn observe(&self, record: &PredictionRecord) {
        let fired = {
            let mut state = self.state();
            state.suite.push(record);
            Self::evaluate_transition_locked(&mut state)
        };
        if let Some((hook, report)) = fired {
            hook(&report);
        }
    }

    /// Re-evaluates the combined overall health after a state mutation and
    /// returns the alert hook to fire (if this mutation degraded overall
    /// health to [`Health::Alert`]). Callers invoke the hook after
    /// dropping the lock so a hook that reads this engine back (or dumps a
    /// bundle) cannot deadlock.
    fn evaluate_transition_locked(
        state: &mut StreamingState,
    ) -> Option<(AlertHook, MonitorReport)> {
        state.alert_hook.as_ref()?;
        let overall = Self::overall_locked(state);
        let previous = std::mem::replace(&mut state.last_overall, overall);
        if previous != overall {
            noodle_trace::flight_record(
                noodle_trace::FlightKind::MonitorTransition,
                noodle_trace::current().map_or(0, |c| c.trace_id),
                0,
                previous as u64,
                overall as u64,
                "monitors.overall",
            );
        }
        if overall == Health::Alert && previous != Health::Alert {
            // Build the report while the suite is still locked so the hook
            // sees the exact transitioning state.
            let report = Self::report_locked(state);
            state.alert_hook.clone().map(|hook| (hook, report))
        } else {
            None
        }
    }

    /// Installs the serving SLO monitors. Their health merges into
    /// [`StreamingMonitors::overall`], `/healthz` and the alert hook, so a
    /// latency-SLO breach produces the same incident path (503 + flight
    /// bundle) as a drift alert.
    pub fn set_slo(&self, config: SloConfig) {
        let mut state = self.state();
        state.slo = Some(SloSuite::new(config));
    }

    /// Feeds one served request's end-to-end latency (with the trace id
    /// that produced it) into the SLO latency monitor. No-op unless
    /// [`StreamingMonitors::set_slo`] was called.
    pub fn observe_serve_latency(&self, e2e_us: f64, trace_id: u64) {
        self.observe_slo(|slo| slo.observe_latency(e2e_us, trace_id));
    }

    /// Feeds one admission outcome into the SLO burn-rate monitors. No-op
    /// unless [`StreamingMonitors::set_slo`] was called.
    pub fn observe_serve_outcome(&self, outcome: ServeOutcome) {
        self.observe_slo(|slo| slo.observe_outcome(outcome));
    }

    fn observe_slo(&self, mutate: impl FnOnce(&mut SloSuite)) {
        let fired = {
            let mut state = self.state();
            let Some(slo) = state.slo.as_mut() else { return };
            mutate(slo);
            Self::evaluate_transition_locked(&mut state)
        };
        if let Some((hook, report)) = fired {
            hook(&report);
        }
    }

    fn overall_locked(state: &StreamingState) -> Health {
        let mut overall = state.suite.overall();
        if let Some(slo) = &state.slo {
            overall = overall.max(slo.overall());
        }
        overall
    }

    fn statuses_locked(state: &StreamingState) -> Vec<MonitorStatus> {
        let mut statuses = state.suite.statuses();
        if let Some(slo) = &state.slo {
            statuses.extend(slo.statuses());
        }
        statuses
    }

    /// Installs (replacing any previous) the alert hook: called exactly
    /// once each time the overall health degrades to [`Health::Alert`]
    /// from a healthier state. The current health at install time is the
    /// starting point, so an engine already in `Alert` does not re-fire
    /// until it recovers and degrades again.
    ///
    /// Installing a hook turns on per-record overall-health evaluation
    /// (one `overall()` per record); without a hook the ingest path stays
    /// allocation-free.
    pub fn set_alert_hook(&self, hook: impl Fn(&MonitorReport) + Send + Sync + 'static) {
        let mut state = self.state();
        state.last_overall = Self::overall_locked(&state);
        state.alert_hook = Some(Arc::new(hook));
    }

    /// Total records consumed so far.
    pub fn records(&self) -> usize {
        self.state().suite.records()
    }

    /// The worst health across all monitors (SLO monitors included, when
    /// installed), right now.
    pub fn overall(&self) -> Health {
        Self::overall_locked(&self.state())
    }

    /// Every monitor's current verdict with evidence.
    pub fn statuses(&self) -> Vec<MonitorStatus> {
        Self::statuses_locked(&self.state())
    }

    /// A point-in-time [`MonitorReport`] over everything consumed so far.
    /// Valid (and `Healthy`) even before the first record.
    pub fn report(&self) -> MonitorReport {
        Self::report_locked(&self.state())
    }

    fn report_locked(state: &StreamingState) -> MonitorReport {
        MonitorReport {
            schema_version: MONITOR_SCHEMA_VERSION,
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            records: state.suite.records(),
            labeled: state.suite.labeled(),
            epsilon: state.suite.epsilon(),
            window: state.config.window,
            overall: Self::overall_locked(state),
            monitors: Self::statuses_locked(state),
        }
    }

    /// Monitors whose health changed since the previous call (first call:
    /// since the engine was created, with unseen monitors assumed
    /// `Healthy`). Drives the `observe --follow` transition printer.
    pub fn transitions_since_last(&self) -> Vec<Transition> {
        let mut state = self.state();
        let statuses = Self::statuses_locked(&state);
        let mut transitions = Vec::new();
        for status in statuses {
            let previous = state.last_health.insert(status.monitor.clone(), status.health);
            let from = previous.unwrap_or(Health::Healthy);
            if from != status.health {
                transitions.push(Transition { from, status });
            }
        }
        transitions
    }
}

impl AuditSink for StreamingMonitors {
    fn header(&mut self, header: &AuditHeader) {
        self.observe_header(header);
    }

    fn record(&mut self, record: &PredictionRecord) {
        self.observe(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psi::{CalibrationBaseline, ScoreBaseline};
    use crate::record::{SourceProbe, AUDIT_SCHEMA_VERSION};
    use crate::replay;
    use std::collections::BTreeMap;

    fn record(seq: u64, label: usize, covered: bool) -> PredictionRecord {
        let p1 = if label == 1 { 0.9 } else { 0.1 };
        PredictionRecord {
            seq,
            design: format!("uart_{seq:03}"),
            trace_id: String::new(),
            strategy: "LateFusion".into(),
            infected: label == 1,
            probability_infected: p1,
            p_values: [1.0 - p1, p1],
            region: if covered { vec![label] } else { vec![1 - label] },
            credibility: 0.9,
            confidence: 0.9,
            uncertain: false,
            significance: 0.1,
            graph_present: true,
            tabular_present: true,
            imputed_modality: false,
            label: Some(label),
            latency_us: 80.0,
            batch_latency_us: 80.0,
            batch_size: 1,
            sources: vec![SourceProbe {
                source: "graph".into(),
                p_values: [1.0 - p1, p1],
                scores: [0.4, 0.05],
            }],
        }
    }

    fn header(with_baseline: bool) -> AuditHeader {
        let baseline = with_baseline.then(|| {
            let scores: Vec<f64> = (0..200).map(|i| 0.02 + 0.001 * (i % 80) as f64).collect();
            let mut sources = BTreeMap::new();
            sources.insert("graph".to_string(), ScoreBaseline::from_scores(&scores, 10).unwrap());
            CalibrationBaseline {
                sources,
                class_balance: 1.0 / 3.0,
                winner_brier: 0.05,
                significance: 0.1,
                calibration_count: 200,
            }
        });
        AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            significance: 0.1,
            strategy: "LateFusion".into(),
            simd: String::new(),
            quantized: false,
            baseline,
            serve: None,
        }
    }

    #[test]
    fn empty_engine_reports_a_valid_healthy_zero_record_report() {
        let stream = StreamingMonitors::new(MonitorConfig::default());
        let report = stream.report();
        assert_eq!(report.records, 0);
        assert_eq!(report.labeled, 0);
        assert_eq!(report.overall, Health::Healthy);
        assert_eq!(report.schema_version, MONITOR_SCHEMA_VERSION);
        // Round-trips through the versioned JSON schema.
        let restored = MonitorReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, restored);
    }

    #[test]
    fn streaming_matches_batch_replay_on_a_fixed_stream() {
        let h = header(true);
        let records: Vec<_> =
            (0..80).map(|i| record(i, usize::from(i % 3 == 0), i % 9 != 0)).collect();
        let stream = StreamingMonitors::new(MonitorConfig::default());
        stream.observe_header(&h);
        for r in &records {
            stream.observe(r);
        }
        let batch = replay(Some(&h), &records, MonitorConfig::default());
        assert_eq!(stream.report(), batch);
    }

    #[test]
    fn clones_share_state() {
        let stream = StreamingMonitors::new(MonitorConfig::default());
        let writer = stream.clone();
        writer.observe(&record(0, 0, true));
        assert_eq!(stream.records(), 1);
    }

    #[test]
    fn late_headers_do_not_reset_consumed_records() {
        let stream = StreamingMonitors::new(MonitorConfig::default());
        stream.observe_header(&header(true));
        for i in 0..10 {
            stream.observe(&record(i, 0, true));
        }
        // A rotated segment re-emits the header mid-stream; state persists.
        stream.observe_header(&header(true));
        assert_eq!(stream.records(), 10);
    }

    #[test]
    fn transitions_fire_once_per_health_change() {
        let config = MonitorConfig { min_samples: 5, ..MonitorConfig::default() };
        let stream = StreamingMonitors::new(config);
        stream.observe_header(&header(false));
        assert!(stream.transitions_since_last().is_empty());
        // Drive the imputed-modality monitor to Alert.
        for i in 0..20 {
            let mut r = record(i, 0, true);
            r.imputed_modality = true;
            stream.observe(&r);
        }
        let transitions = stream.transitions_since_last();
        assert!(
            transitions.iter().any(|t| t.status.monitor == "modality.imputed"
                && t.from == Health::Healthy
                && t.status.health == Health::Alert),
            "{transitions:?}"
        );
        // No further change, no further transition.
        assert!(stream.transitions_since_last().is_empty());
    }

    #[test]
    fn alert_hook_fires_exactly_once_per_degradation() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let config = MonitorConfig { min_samples: 5, ..MonitorConfig::default() };
        let stream = StreamingMonitors::new(config);
        stream.observe_header(&header(false));
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(Mutex::new(None));
        {
            let fired = fired.clone();
            let seen = seen.clone();
            stream.set_alert_hook(move |report| {
                fired.fetch_add(1, Ordering::SeqCst);
                *seen.lock().unwrap() = Some(report.clone());
            });
        }
        // Drive the imputed-modality monitor to Alert; the hook must fire
        // on the transitioning record only, not on every record in Alert.
        for i in 0..30 {
            let mut r = record(i, 0, true);
            r.imputed_modality = true;
            stream.observe(&r);
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        let report = seen.lock().unwrap().clone().expect("hook saw a report");
        assert_eq!(report.overall, Health::Alert);
        assert!(report.monitors.iter().any(|m| m.health == Health::Alert));
    }

    #[test]
    fn slo_breach_degrades_overall_and_fires_the_hook_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let stream = StreamingMonitors::new(MonitorConfig::default());
        stream.set_slo(crate::SloConfig {
            p99_target_us: 1_000.0,
            p99_alert_mult: 2.0,
            min_samples: 5,
            ..crate::SloConfig::default()
        });
        let fired = Arc::new(AtomicUsize::new(0));
        let seen = Arc::new(Mutex::new(None));
        {
            let fired = fired.clone();
            let seen = seen.clone();
            stream.set_alert_hook(move |report| {
                fired.fetch_add(1, Ordering::SeqCst);
                *seen.lock().unwrap() = Some(report.clone());
            });
        }
        // Healthy traffic, then a latency regression well past 2× target.
        for i in 0..20 {
            stream.observe_serve_latency(400.0, i);
        }
        assert_eq!(stream.overall(), Health::Healthy);
        for i in 0..20 {
            stream.observe_serve_latency(50_000.0, 0xfeed + i);
        }
        assert_eq!(stream.overall(), Health::Alert);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires once per degradation");
        let report = seen.lock().unwrap().clone().expect("hook saw a report");
        let slo = report
            .monitors
            .iter()
            .find(|m| m.monitor == "serve.latency_p99")
            .expect("SLO status in the shared report");
        assert_eq!(slo.health, Health::Alert);
        assert!(
            slo.evidence.contains(&noodle_trace::format_trace_id(0xfeed)),
            "evidence names the offending trace ids: {}",
            slo.evidence
        );
        // Shed burn-rate merges into the same overall.
        for _ in 0..30 {
            stream.observe_serve_outcome(ServeOutcome::Shed);
        }
        assert_eq!(stream.overall(), Health::Alert);
        assert!(stream.statuses().iter().any(|s| s.monitor == "serve.shed_rate"));
    }

    #[test]
    fn works_as_an_audit_sink() {
        let stream = StreamingMonitors::new(MonitorConfig::default());
        let mut sink: Box<dyn AuditSink> = Box::new(stream.clone());
        sink.header(&header(true));
        sink.record(&record(0, 1, true));
        assert_eq!(stream.records(), 1);
    }
}
