//! Population Stability Index (PSI) baselines for nonconformity-score
//! drift detection.
//!
//! At fit time the detector snapshots the distribution of predicted-class
//! nonconformity scores on its calibration split into a [`ScoreBaseline`]
//! per p-value source, bundled with class balance and Brier reference
//! points in a [`CalibrationBaseline`]. At serve time the drift monitor
//! re-bins live scores against the frozen edges and computes
//! `PSI = Σ (obs − exp) · ln(obs / exp)`; values above ~0.10 conventionally
//! signal moderate shift and above ~0.25 a severe one.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Fractions are floored at this value before the PSI log-ratio so empty
/// bins contribute a large-but-finite penalty instead of ±∞.
const PSI_FLOOR: f64 = 1e-4;

/// A frozen, quantile-binned reference distribution of one score stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreBaseline {
    /// Interior bin edges, ascending; bin `i` covers `(edges[i-1], edges[i]]`
    /// with open-ended first and last bins. `edges.len() + 1` bins total.
    pub edges: Vec<f64>,
    /// Expected fraction of mass per bin, measured on the baseline sample.
    pub expected: Vec<f64>,
    /// Number of baseline observations the expectations were measured on.
    pub n: usize,
}

impl ScoreBaseline {
    /// Builds a baseline from raw scores using up to `bins` quantile bins.
    ///
    /// Duplicate quantile edges (heavily tied scores) are collapsed, so the
    /// realized bin count can be smaller than requested. Returns `None` when
    /// `scores` is empty, `bins < 2`, or ties collapse everything into a
    /// single bin (PSI would be identically zero and meaningless).
    pub fn from_scores(scores: &[f64], bins: usize) -> Option<Self> {
        if scores.is_empty() || bins < 2 {
            return None;
        }
        let mut sorted: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores compare"));
        let n = sorted.len();
        let mut edges = Vec::with_capacity(bins - 1);
        for k in 1..bins {
            // Nearest-rank quantile at k/bins.
            let rank = (k * n).div_ceil(bins);
            let edge = sorted[rank.saturating_sub(1).min(n - 1)];
            if edges.last().is_none_or(|last| edge > *last) {
                edges.push(edge);
            }
        }
        // Drop a top edge equal to the max: its upper bin would be empty by
        // construction and every baseline observation ≤ max lands below it.
        if edges.last() == sorted.last() {
            edges.pop();
        }
        if edges.is_empty() {
            return None;
        }
        let expected = bin_fractions(&edges, &sorted);
        Some(Self { edges, expected, n })
    }

    /// PSI of `observed` against this baseline. Larger means more drift;
    /// 0 means the binned distributions match exactly.
    ///
    /// Returns `None` when `observed` is empty.
    pub fn psi(&self, observed: &[f64]) -> Option<f64> {
        if observed.is_empty() {
            return None;
        }
        let obs = bin_fractions(&self.edges, observed);
        let mut total = 0.0;
        for (o, e) in obs.iter().zip(self.expected.iter()) {
            let o = o.max(PSI_FLOOR);
            let e = e.max(PSI_FLOOR);
            total += (o - e) * (o / e).ln();
        }
        Some(total)
    }
}

/// Fraction of `values` in each bin defined by `edges` (see
/// [`ScoreBaseline::edges`] for the bin convention).
fn bin_fractions(edges: &[f64], values: &[f64]) -> Vec<f64> {
    let mut counts = vec![0usize; edges.len() + 1];
    for &v in values {
        let bin = edges.partition_point(|e| *e < v);
        counts[bin] += 1;
    }
    let total = values.len().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

/// Everything the drift/calibration monitors need from fit time, persisted
/// inside the detector JSON and embedded in audit-log headers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBaseline {
    /// Per-source baselines over predicted-class (minimum) nonconformity
    /// scores on the calibration split, keyed by source name (`"graph"`,
    /// `"tabular"`, `"early_fusion"`).
    pub sources: BTreeMap<String, ScoreBaseline>,
    /// Fraction of Trojan-infected samples in the calibration split.
    pub class_balance: f64,
    /// Test-split Brier score of the winning fusion strategy at fit time.
    pub winner_brier: f64,
    /// Significance level ε the detector was configured with.
    pub significance: f64,
    /// Size of the calibration split.
    pub calibration_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| lo + (hi - lo) * (i as f64 + 0.5) / n as f64).collect()
    }

    #[test]
    fn identical_distributions_have_near_zero_psi() {
        let baseline = ScoreBaseline::from_scores(&uniform(1000, 0.0, 0.5), 10).unwrap();
        let psi = baseline.psi(&uniform(1000, 0.0, 0.5)).unwrap();
        assert!(psi.abs() < 0.01, "psi {psi} should be ~0 for identical data");
    }

    #[test]
    fn shifted_distribution_has_large_psi() {
        let baseline = ScoreBaseline::from_scores(&uniform(1000, 0.0, 0.25), 10).unwrap();
        let psi = baseline.psi(&uniform(1000, 0.25, 0.5)).unwrap();
        assert!(psi > 1.0, "psi {psi} should be large for disjoint supports");
    }

    #[test]
    fn moderate_shift_lands_between_thresholds() {
        let baseline = ScoreBaseline::from_scores(&uniform(2000, 0.0, 1.0), 10).unwrap();
        let mut shifted = uniform(1400, 0.0, 1.0);
        shifted.extend(uniform(600, 0.6, 1.0));
        let psi = baseline.psi(&shifted).unwrap();
        assert!(psi > 0.02 && psi < 1.0, "psi {psi} should reflect a partial shift");
    }

    #[test]
    fn heavy_ties_collapse_edges_but_still_bin() {
        let mut scores = vec![0.5; 95];
        scores.extend([0.1, 0.2, 0.3, 0.9, 1.0]);
        let baseline = ScoreBaseline::from_scores(&scores, 10).unwrap();
        assert!(baseline.edges.len() < 9, "tied quantiles must deduplicate");
        assert!(baseline.psi(&scores).unwrap().abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(ScoreBaseline::from_scores(&[], 10).is_none());
        assert!(ScoreBaseline::from_scores(&[0.3; 50], 10).is_none());
        assert!(ScoreBaseline::from_scores(&[0.1, 0.2], 1).is_none());
        let baseline = ScoreBaseline::from_scores(&uniform(100, 0.0, 1.0), 10).unwrap();
        assert!(baseline.psi(&[]).is_none());
    }

    #[test]
    fn expected_fractions_sum_to_one() {
        let baseline = ScoreBaseline::from_scores(&uniform(503, 0.0, 1.0), 10).unwrap();
        let sum: f64 = baseline.expected.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(baseline.n, 503);
    }

    #[test]
    fn calibration_baseline_round_trips_through_json() {
        let mut sources = BTreeMap::new();
        sources.insert(
            "graph".to_string(),
            ScoreBaseline::from_scores(&uniform(100, 0.0, 0.5), 10).unwrap(),
        );
        let baseline = CalibrationBaseline {
            sources,
            class_balance: 1.0 / 3.0,
            winner_brier: 0.04,
            significance: 0.1,
            calibration_count: 100,
        };
        let json = serde_json::to_string(&baseline).unwrap();
        let restored: CalibrationBaseline = serde_json::from_str(&json).unwrap();
        assert_eq!(baseline, restored);
    }
}
