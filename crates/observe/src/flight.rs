//! Alert-triggered flight-recorder bundles.
//!
//! A [`FlightBundle`] is a self-contained diagnostics snapshot taken the
//! moment something goes wrong: the flight-recorder ring (recent span
//! opens/closes, monitor transitions, request summaries), the live metric
//! registry and the full monitor verdicts, stamped with the trace id that
//! was ambient at capture. [`install_alert_dump`] wires a
//! [`StreamingMonitors`] engine so its first Healthy/Warn→Alert transition
//! writes exactly one bundle to disk — the black box is recovered at the
//! crash site, not reconstructed afterwards.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use noodle_telemetry::MetricsSnapshot;
use noodle_trace::FlightRecordEvent;

use crate::error::AuditError;
use crate::report::MonitorReport;
use crate::streaming::StreamingMonitors;

/// Version of the [`FlightBundle`] JSON schema.
pub const FLIGHT_BUNDLE_SCHEMA_VERSION: u32 = 1;

/// A self-contained diagnostics snapshot: recent flight-recorder events,
/// live metrics and monitor verdicts, plus what triggered the capture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightBundle {
    /// Bundle schema version ([`FLIGHT_BUNDLE_SCHEMA_VERSION`] at write
    /// time).
    pub schema_version: u32,
    /// Version of the noodle workspace that wrote the bundle.
    pub tool_version: String,
    /// Why the bundle was captured: `"alert"` for the monitor hook,
    /// `"manual"` for `GET /debug/flight`.
    pub reason: String,
    /// Trace id (16 hex digits) ambient at capture; empty if none. For
    /// alert captures this is the request whose record tripped the
    /// monitors.
    #[serde(default)]
    pub trigger_trace_id: String,
    /// Milliseconds since the Unix epoch at capture (also the filename
    /// discriminator for [`FlightBundle::write`]).
    pub unix_ms: u64,
    /// The flight-recorder ring at capture, oldest event first.
    pub events: Vec<FlightRecordEvent>,
    /// The live metric registry at capture.
    pub metrics: MetricsSnapshot,
    /// Monitor verdicts at capture.
    pub monitor: MonitorReport,
}

impl FlightBundle {
    /// Captures a bundle right now: snapshots the flight ring and the
    /// metric registry, stamps the ambient trace id (if any) and the
    /// wall clock, and attaches the given monitor report.
    pub fn capture(reason: &str, monitor: MonitorReport) -> Self {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let trigger_trace_id = noodle_trace::current()
            .map_or_else(String::new, |c| noodle_trace::format_trace_id(c.trace_id));
        Self {
            schema_version: FLIGHT_BUNDLE_SCHEMA_VERSION,
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            reason: reason.to_string(),
            trigger_trace_id,
            unix_ms,
            events: noodle_trace::flight_snapshot(),
            metrics: noodle_telemetry::metrics_snapshot(),
            monitor,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flight bundle serializes")
    }

    /// Deserializes, rejecting bundles with a newer schema version.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on malformed JSON or an unsupported version.
    pub fn from_json(json: &str) -> Result<Self, AuditError> {
        let bundle: Self = serde_json::from_str(json)
            .map_err(|e| AuditError::new(format!("flight bundle: {e}")))?;
        if bundle.schema_version > FLIGHT_BUNDLE_SCHEMA_VERSION {
            return Err(AuditError::new(format!(
                "flight bundle has schema version {} but this build reads at most {}",
                bundle.schema_version, FLIGHT_BUNDLE_SCHEMA_VERSION
            )));
        }
        Ok(bundle)
    }

    /// Writes the bundle to `dir/flight-<unix_ms>.json`, creating `dir`
    /// (and parents) if needed. Returns the written path.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] if the directory or file cannot be written.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, AuditError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| AuditError::new(format!("flight bundle dir {}: {e}", dir.display())))?;
        let path = dir.join(format!("flight-{}.json", self.unix_ms));
        std::fs::write(&path, self.to_json())
            .map_err(|e| AuditError::new(format!("flight bundle {}: {e}", path.display())))?;
        Ok(path)
    }
}

/// Wires `monitors` so that each Healthy/Warn→Alert transition captures
/// one [`FlightBundle`] (reason `"alert"`) and writes it into `dir`.
///
/// Failures to write are reported on stderr and otherwise swallowed: an
/// observability fault must never fail the detect path it is observing.
pub fn install_alert_dump(monitors: &StreamingMonitors, dir: &Path) {
    let dir = dir.to_path_buf();
    monitors.set_alert_hook(move |report| {
        let bundle = FlightBundle::capture("alert", report.clone());
        match bundle.write(&dir) {
            Ok(path) => eprintln!(
                "[observe] monitors degraded to Alert; flight bundle written to {}",
                path.display()
            ),
            Err(e) => eprintln!("[observe] failed to write flight bundle: {e}"),
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Health;
    use crate::report::MONITOR_SCHEMA_VERSION;

    fn empty_report() -> MonitorReport {
        MonitorReport {
            schema_version: MONITOR_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            records: 0,
            labeled: 0,
            epsilon: None,
            window: 50,
            overall: Health::Healthy,
            monitors: Vec::new(),
        }
    }

    #[test]
    fn capture_round_trips_through_json() {
        let ctx = noodle_trace::TraceContext::mint();
        let bundle = {
            let _guard = noodle_trace::set_current(ctx);
            noodle_trace::flight_record(
                noodle_trace::FlightKind::Request,
                ctx.trace_id,
                ctx.span_id,
                0,
                0,
                "uart_000",
            );
            FlightBundle::capture("manual", empty_report())
        };
        assert_eq!(bundle.schema_version, FLIGHT_BUNDLE_SCHEMA_VERSION);
        assert_eq!(bundle.reason, "manual");
        assert_eq!(bundle.trigger_trace_id, noodle_trace::format_trace_id(ctx.trace_id));
        assert!(bundle.events.iter().any(|e| e.trace_id == bundle.trigger_trace_id));
        let restored = FlightBundle::from_json(&bundle.to_json()).unwrap();
        assert_eq!(bundle, restored);
    }

    #[test]
    fn from_json_rejects_future_versions() {
        let mut bundle = FlightBundle::capture("manual", empty_report());
        bundle.schema_version = FLIGHT_BUNDLE_SCHEMA_VERSION + 1;
        let err = FlightBundle::from_json(&bundle.to_json()).unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn write_creates_the_directory_and_a_timestamped_file() {
        let dir = std::env::temp_dir().join(format!(
            "noodle-flight-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos())
        ));
        let bundle = FlightBundle::capture("manual", empty_report());
        let path = bundle.write(&dir).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("flight-"));
        let restored = FlightBundle::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(bundle, restored);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
