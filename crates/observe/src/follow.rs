//! Tailing a live (possibly rotating) audit log — `noodle observe --follow`.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::record::AuditLine;

/// Incrementally reads new [`AuditLine`]s from a growing JSONL audit log.
///
/// The follower remembers its byte offset between [`LogFollower::poll`]
/// calls and only parses bytes appended since the last call. Writers flush
/// on their own schedule, so a poll may observe a torn final line; those
/// bytes are buffered and completed on a later poll — a line is only ever
/// surfaced once, whole.
///
/// Rotation-aware: when the file shrinks below the remembered offset (the
/// live log was renamed to `.1` and recreated by
/// [`crate::RotatingJsonlAudit`]), the follower restarts from byte 0 of
/// the fresh live file. Records in flight during the swap land in the
/// rotated segment, not the new live file — a follower that only tails the
/// live path can miss lines written between its last poll and the
/// rotation, which is the standard `tail -F` contract. The re-emitted
/// header at the top of each segment is delivered like any other line;
/// [`crate::StreamingMonitors`] ignores headers after the first record, so
/// feeding a follower into it is safe across rotations.
#[derive(Debug)]
pub struct LogFollower {
    path: PathBuf,
    offset: u64,
    partial: Vec<u8>,
}

impl LogFollower {
    /// A follower over `path`, starting from the beginning of the file.
    /// The file does not have to exist yet; polls return nothing until it
    /// does.
    pub fn new(path: &Path) -> Self {
        Self { path: path.to_path_buf(), offset: 0, partial: Vec::new() }
    }

    /// The byte offset the next poll resumes from.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads every line completed since the last poll, in file order.
    ///
    /// Returns an empty vec when the file is missing or nothing new has
    /// been written. Complete lines that fail to parse as [`AuditLine`]
    /// (e.g. torn by a rotation mid-write) are skipped rather than
    /// aborting the tail.
    pub fn poll(&mut self) -> Vec<AuditLine> {
        let Ok(mut file) = std::fs::File::open(&self.path) else {
            return Vec::new();
        };
        let len = file.metadata().map(|m| m.len()).unwrap_or(0);
        if len < self.offset {
            // The live log was rotated out from under us; start over on
            // the fresh file.
            self.offset = 0;
            self.partial.clear();
        }
        if len == self.offset {
            return Vec::new();
        }
        if file.seek(SeekFrom::Start(self.offset)).is_err() {
            return Vec::new();
        }
        let mut fresh = Vec::new();
        let Ok(read) = file.take(len - self.offset).read_to_end(&mut fresh) else {
            return Vec::new();
        };
        self.offset += read as u64;
        self.partial.extend_from_slice(&fresh);

        let mut lines = Vec::new();
        while let Some(newline) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=newline).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Ok(parsed) = serde_json::from_str::<AuditLine>(trimmed) {
                lines.push(parsed);
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{AuditHeader, AUDIT_SCHEMA_VERSION};
    use std::io::Write;

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("noodle_follow_{tag}_{}_{n}", std::process::id()))
    }

    fn header_line() -> String {
        let header = AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            significance: 0.1,
            strategy: "LateFusion".into(),
            simd: String::new(),
            quantized: false,
            baseline: None,
            serve: None,
        };
        serde_json::to_string(&AuditLine::Header(header)).unwrap()
    }

    #[test]
    fn missing_file_polls_empty() {
        let mut follower = LogFollower::new(&temp_path("missing"));
        assert!(follower.poll().is_empty());
        assert_eq!(follower.offset(), 0);
    }

    #[test]
    fn delivers_appended_lines_incrementally() {
        let path = temp_path("grow");
        std::fs::write(&path, format!("{}\n", header_line())).unwrap();
        let mut follower = LogFollower::new(&path);
        assert_eq!(follower.poll().len(), 1);
        assert!(follower.poll().is_empty());

        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(file, "{}", header_line()).unwrap();
        writeln!(file, "{}", header_line()).unwrap();
        drop(file);
        assert_eq!(follower.poll().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn buffers_torn_lines_until_complete() {
        let path = temp_path("torn");
        let full = header_line();
        let (head, tail) = full.split_at(full.len() / 2);
        std::fs::write(&path, head).unwrap();
        let mut follower = LogFollower::new(&path);
        assert!(follower.poll().is_empty(), "half a line must not be surfaced");

        let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(file, "{tail}\n").unwrap();
        drop(file);
        let lines = follower.poll();
        assert_eq!(lines.len(), 1);
        assert!(matches!(lines[0], AuditLine::Header(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restarts_from_zero_after_rotation() {
        let path = temp_path("rotate");
        let line = header_line();
        std::fs::write(&path, format!("{line}\n{line}\n{line}\n")).unwrap();
        let mut follower = LogFollower::new(&path);
        assert_eq!(follower.poll().len(), 3);

        // Rotation: the live file is replaced by a shorter fresh one.
        std::fs::write(&path, format!("{line}\n")).unwrap();
        assert_eq!(follower.poll().len(), 1);
        assert_eq!(follower.offset(), line.len() as u64 + 1);
        let _ = std::fs::remove_file(&path);
    }
}
