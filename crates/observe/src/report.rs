//! The machine-readable health report produced by replaying an audit log.

use serde::{Deserialize, Serialize};

use crate::error::AuditError;
use crate::monitor::{Health, MonitorConfig, MonitorStatus};
use crate::record::{AuditHeader, PredictionRecord};

/// Version of the [`MonitorReport`] JSON schema.
pub const MONITOR_SCHEMA_VERSION: u32 = 1;

/// The outcome of replaying an audit log through the monitor suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Report schema version ([`MONITOR_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Version of the noodle workspace that wrote the report.
    pub tool_version: String,
    /// Total prediction records replayed.
    pub records: usize,
    /// Records carrying a ground-truth label.
    pub labeled: usize,
    /// Significance level ε the coverage monitors checked against, if known.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub epsilon: Option<f64>,
    /// Sliding-window length the monitors used.
    pub window: usize,
    /// Worst health across all monitors.
    pub overall: Health,
    /// Per-monitor verdicts with evidence.
    pub monitors: Vec<MonitorStatus>,
}

impl MonitorReport {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("monitor report serializes")
    }

    /// Deserializes, rejecting reports with a newer schema version.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on malformed JSON or an unsupported version.
    pub fn from_json(json: &str) -> Result<Self, AuditError> {
        let report: Self = serde_json::from_str(json)
            .map_err(|e| AuditError::new(format!("monitor report: {e}")))?;
        if report.schema_version > MONITOR_SCHEMA_VERSION {
            return Err(AuditError::new(format!(
                "monitor report has schema version {} but this build reads at most {}",
                report.schema_version, MONITOR_SCHEMA_VERSION
            )));
        }
        Ok(report)
    }

    /// Writes pretty JSON to `path`.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` if the file cannot be written.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Replays parsed audit-log contents through a fresh
/// [`crate::StreamingMonitors`] engine and summarizes the result — a thin
/// loop over the same incremental engine that powers live monitoring, so
/// batch replay and streaming consumption are identical by construction.
///
/// The header (when present) supplies the calibration baseline for the
/// drift/Brier/balance monitors and the fallback ε; `config.epsilon`
/// overrides it.
///
/// An empty record slice is not an error: it yields a valid,
/// schema-versioned report with zero records and `Healthy` overall (a
/// service that has not served a prediction yet is healthy, not broken).
pub fn replay(
    header: Option<&AuditHeader>,
    records: &[PredictionRecord],
    config: MonitorConfig,
) -> MonitorReport {
    let stream = crate::StreamingMonitors::new(config);
    if let Some(header) = header {
        stream.observe_header(header);
    }
    for record in records {
        stream.observe(record);
    }
    stream.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{SourceProbe, AUDIT_SCHEMA_VERSION};

    fn record(seq: u64, label: usize, covered: bool) -> PredictionRecord {
        let p1 = if label == 1 { 0.9 } else { 0.1 };
        PredictionRecord {
            seq,
            design: format!("alu_tf_{seq:03}"),
            trace_id: String::new(),
            strategy: "LateFusion".into(),
            infected: label == 1,
            probability_infected: p1,
            p_values: [1.0 - p1, p1],
            region: if covered { vec![label] } else { vec![1 - label] },
            credibility: 0.9,
            confidence: 0.9,
            uncertain: false,
            significance: 0.1,
            graph_present: true,
            tabular_present: true,
            imputed_modality: false,
            label: Some(label),
            latency_us: 80.0,
            batch_latency_us: 80.0,
            batch_size: 1,
            sources: vec![SourceProbe {
                source: "graph".into(),
                p_values: [1.0 - p1, p1],
                scores: [0.4, 0.05],
            }],
        }
    }

    fn header() -> AuditHeader {
        AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            significance: 0.1,
            strategy: "LateFusion".into(),
            simd: String::new(),
            quantized: false,
            baseline: None,
            serve: None,
        }
    }

    #[test]
    fn replay_summarizes_a_healthy_stream() {
        let records: Vec<_> =
            (0..60).map(|i| record(i, usize::from(i % 3 == 0), i % 25 != 0)).collect();
        let report = replay(Some(&header()), &records, MonitorConfig::default());
        assert_eq!(report.records, 60);
        assert_eq!(report.labeled, 60);
        assert_eq!(report.epsilon, Some(0.1));
        assert_eq!(report.overall, Health::Healthy, "{:#?}", report.monitors);
        assert!(report.monitors.iter().any(|m| m.monitor == "coverage.trojan_infected"));
    }

    #[test]
    fn replay_flags_a_coverage_collapse() {
        let records: Vec<_> = (0..60).map(|i| record(i, usize::from(i % 2 == 0), false)).collect();
        let report = replay(Some(&header()), &records, MonitorConfig::default());
        assert_eq!(report.overall, Health::Alert);
    }

    #[test]
    fn replay_without_records_is_a_valid_empty_report() {
        let report = replay(Some(&header()), &[], MonitorConfig::default());
        assert_eq!(report.records, 0);
        assert_eq!(report.labeled, 0);
        assert_eq!(report.overall, Health::Healthy);
        assert_eq!(report.schema_version, MONITOR_SCHEMA_VERSION);
        let restored = MonitorReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, restored);
    }

    #[test]
    fn config_epsilon_overrides_the_header() {
        let records: Vec<_> = (0..60).map(|i| record(i, usize::from(i % 3 == 0), true)).collect();
        let config = MonitorConfig { epsilon: Some(0.25), ..MonitorConfig::default() };
        let report = replay(Some(&header()), &records, config);
        assert_eq!(report.epsilon, Some(0.25));
    }

    #[test]
    fn report_json_round_trips_and_rejects_future_versions() {
        let records: Vec<_> = (0..30).map(|i| record(i, usize::from(i % 3 == 0), true)).collect();
        let report = replay(Some(&header()), &records, MonitorConfig::default());
        let restored = MonitorReport::from_json(&report.to_json()).unwrap();
        assert_eq!(report, restored);

        let mut future = report;
        future.schema_version = MONITOR_SCHEMA_VERSION + 1;
        let err = MonitorReport::from_json(&future.to_json()).unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }
}
