//! Prediction provenance: the per-`detect` audit record and the JSONL
//! audit-log framing around it.

use serde::{Deserialize, Serialize};

use crate::error::AuditError;
use crate::psi::CalibrationBaseline;

/// Version of the audit-log line schema. Bump the major number when a field
/// is renamed or its meaning changes; readers reject logs from the future.
///
/// History:
/// - v1: initial schema.
/// - v2: records carry `batch_size` and `batch_latency_us` (batched detect
///   engine); v1 logs still parse, defaulting both to a batch of one.
/// - v3: records carry `trace_id` (request-scoped tracing); v1/v2 logs
///   still parse, defaulting to an empty (unknown) trace id.
/// - v4: the header carries an optional `serve` block (daemon bind
///   address, batch deadline, queue capacity) when the log was written by
///   the `noodle serve` daemon; v≤3 logs still parse with no serve block.
pub const AUDIT_SCHEMA_VERSION: u32 = 4;

/// Per-class conformal evidence from one p-value source (a single-modality
/// classifier or the early-fusion classifier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceProbe {
    /// Source name: `"graph"`, `"tabular"` or `"early_fusion"`.
    pub source: String,
    /// Per-class Mondrian p-values from this source.
    pub p_values: [f64; 2],
    /// Per-class nonconformity scores fed to the Mondrian ICP.
    pub scores: [f64; 2],
}

/// One `detect` call, serialized to the audit log: the full evidence trail
/// from modality availability through per-source p-values to the fused
/// decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionRecord {
    /// Monotonic sequence number within the emitting detector.
    pub seq: u64,
    /// Design identifier (file stem or module name; may be empty for
    /// anonymous library calls).
    pub design: String,
    /// Trace id (16 lowercase hex digits) of the request context that
    /// produced this record; empty in logs written before schema v3 or
    /// when no context was ambient. Grep the same id in the telemetry
    /// spans and the Chrome trace to join all three views of one request.
    #[serde(default)]
    pub trace_id: String,
    /// The fusion strategy that produced the decision, e.g. `"LateFusion"`.
    pub strategy: String,
    /// The hedged point decision.
    pub infected: bool,
    /// Normalized probability of infection derived from the p-values.
    pub probability_infected: f64,
    /// Final per-class p-values (combined, for late fusion).
    pub p_values: [f64; 2],
    /// Classes in the prediction region at `significance`.
    pub region: Vec<usize>,
    /// Credibility of the decision (largest p-value).
    pub credibility: f64,
    /// Confidence of the decision (1 − second-largest p-value).
    pub confidence: f64,
    /// Whether the region contains both classes.
    pub uncertain: bool,
    /// The significance level ε the region was computed at.
    pub significance: f64,
    /// Whether the graph modality was supplied by the caller.
    pub graph_present: bool,
    /// Whether the tabular modality was supplied by the caller.
    pub tabular_present: bool,
    /// Whether a missing modality was GAN-imputed.
    pub imputed_modality: bool,
    /// Ground-truth label when known (0 = TF, 1 = TI); enables the coverage
    /// and Brier monitors downstream.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<usize>,
    /// Wall-clock latency attributed to this file, in microseconds. On the
    /// batched path this is the micro-batch's share (`batch_latency_us`
    /// divided by `batch_size`); sequential calls record their own latency.
    pub latency_us: f64,
    /// Wall-clock latency of the enclosing micro-batch (forward pass plus
    /// conformal p-values), in microseconds. Equals `latency_us` for
    /// sequential calls; v1 logs default to 0.
    #[serde(default)]
    pub batch_latency_us: f64,
    /// Number of files in the micro-batch that produced this record; v1
    /// logs default to 1 (sequential).
    #[serde(default = "default_batch_size")]
    pub batch_size: usize,
    /// Per-source conformal evidence (one entry per classifier consulted).
    pub sources: Vec<SourceProbe>,
}

fn default_batch_size() -> usize {
    1
}

/// Serving-daemon provenance, embedded in the audit header when the log
/// was written by `noodle serve`: enough to interpret the latency fields
/// (requests queue up to `batch_deadline_ms` before inference) and to
/// correlate the log with the daemon instance that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeInfo {
    /// Request-plane bind address the daemon accepted submissions on.
    pub addr: String,
    /// Batch-formation deadline: a batch closes at `--batch` items or this
    /// many milliseconds after its first request, whichever comes first.
    pub batch_deadline_ms: u64,
    /// Bounded admission-queue capacity; requests beyond it were shed.
    pub queue_cap: usize,
}

/// The audit-log header: written as the first JSONL line so a log is
/// self-contained for replay (`noodle observe` needs no model file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditHeader {
    /// Audit-log schema version ([`AUDIT_SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Version of the noodle workspace that emitted the log.
    pub tool_version: String,
    /// The detector's configured significance level ε.
    pub significance: f64,
    /// The detector's winning fusion strategy.
    pub strategy: String,
    /// SIMD instruction set the serving kernels dispatched to when this
    /// log was written (`"avx2+fma"`, `"neon"` or `"scalar"`); older logs
    /// default to empty. Serving numerics may legally differ between ISAs
    /// (the kernel lane widths differ), so replay tooling needs this to
    /// compare like with like.
    #[serde(default)]
    pub simd: String,
    /// Whether the detector served from its int8 post-training-quantized
    /// twins; older logs default to `false`.
    #[serde(default)]
    pub quantized: bool,
    /// Calibration baseline persisted with the detector at fit time; powers
    /// the PSI drift, Brier and class-balance monitors.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub baseline: Option<CalibrationBaseline>,
    /// Present when the log was written by the `noodle serve` daemon;
    /// absent (and omitted from JSON) for one-shot CLI logs, so v≤3 logs
    /// parse unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub serve: Option<ServeInfo>,
}

/// One line of the JSONL audit log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum AuditLine {
    /// The log header (first line).
    Header(AuditHeader),
    /// One prediction record.
    Prediction(PredictionRecord),
}

/// Parses a JSONL audit log into its header (if present) and records.
///
/// Blank lines are skipped. Lines must parse as [`AuditLine`]; a header
/// with a `schema_version` newer than [`AUDIT_SCHEMA_VERSION`] is rejected
/// so old readers never silently misinterpret future logs.
///
/// # Errors
///
/// Returns [`AuditError`] on malformed JSON or an unsupported version.
pub fn parse_audit_log(
    text: &str,
) -> Result<(Option<AuditHeader>, Vec<PredictionRecord>), AuditError> {
    let mut header = None;
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed: AuditLine = serde_json::from_str(line)
            .map_err(|e| AuditError::new(format!("audit line {}: {e}", idx + 1)))?;
        match parsed {
            AuditLine::Header(h) => {
                if h.schema_version > AUDIT_SCHEMA_VERSION {
                    return Err(AuditError::new(format!(
                        "audit log has schema version {} but this build reads at most {}",
                        h.schema_version, AUDIT_SCHEMA_VERSION
                    )));
                }
                header = Some(h);
            }
            AuditLine::Prediction(r) => records.push(r),
        }
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(seq: u64) -> PredictionRecord {
        PredictionRecord {
            seq,
            design: format!("alu_tf_{seq:03}"),
            trace_id: "00c0ffee00c0ffee".into(),
            strategy: "LateFusion".into(),
            infected: false,
            probability_infected: 0.2,
            p_values: [0.8, 0.2],
            region: vec![0],
            credibility: 0.8,
            confidence: 0.8,
            uncertain: false,
            significance: 0.1,
            graph_present: true,
            tabular_present: true,
            imputed_modality: false,
            label: Some(0),
            latency_us: 512.0,
            batch_latency_us: 512.0,
            batch_size: 1,
            sources: vec![SourceProbe {
                source: "graph".into(),
                p_values: [0.7, 0.3],
                scores: [0.1, 0.9],
            }],
        }
    }

    fn sample_header() -> AuditHeader {
        AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: "0.1.0".into(),
            significance: 0.1,
            strategy: "LateFusion".into(),
            simd: String::new(),
            quantized: false,
            baseline: None,
            serve: None,
        }
    }

    #[test]
    fn audit_line_round_trip_is_lossless() {
        let lines = [
            AuditLine::Header(sample_header()),
            AuditLine::Prediction(sample_record(0)),
            AuditLine::Prediction(sample_record(1)),
        ];
        for line in &lines {
            let json = serde_json::to_string(line).unwrap();
            let restored: AuditLine = serde_json::from_str(&json).unwrap();
            assert_eq!(line, &restored);
        }
    }

    #[test]
    fn lines_are_tagged_by_type() {
        let json = serde_json::to_string(&AuditLine::Header(sample_header())).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["type"], "header");
        let json = serde_json::to_string(&AuditLine::Prediction(sample_record(0))).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["type"], "prediction");
        assert_eq!(value["seq"], 0);
        assert_eq!(value["sources"][0]["source"], "graph");
    }

    #[test]
    fn parse_audit_log_splits_header_and_records() {
        let text = format!(
            "{}\n\n{}\n{}\n",
            serde_json::to_string(&AuditLine::Header(sample_header())).unwrap(),
            serde_json::to_string(&AuditLine::Prediction(sample_record(0))).unwrap(),
            serde_json::to_string(&AuditLine::Prediction(sample_record(1))).unwrap(),
        );
        let (header, records) = parse_audit_log(&text).unwrap();
        assert_eq!(header.unwrap().strategy, "LateFusion");
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].seq, 1);
    }

    #[test]
    fn parse_audit_log_rejects_future_versions_and_garbage() {
        let mut future = sample_header();
        future.schema_version = AUDIT_SCHEMA_VERSION + 1;
        let text = serde_json::to_string(&AuditLine::Header(future)).unwrap();
        let err = parse_audit_log(&text).unwrap_err();
        assert!(err.to_string().contains("schema version"));

        let err = parse_audit_log("not json\n").unwrap_err();
        assert!(err.to_string().contains("audit line 1"));
    }

    #[test]
    fn v1_records_parse_with_batch_defaults() {
        // A record serialized before the v2 batch fields existed must still
        // parse, reading as a batch of one with no separate batch latency.
        let mut value = serde_json::to_value(sample_record(0)).unwrap();
        let obj = value.as_object_mut().unwrap();
        obj.remove("batch_size");
        obj.remove("batch_latency_us");
        let restored: PredictionRecord = serde_json::from_value(value).unwrap();
        assert_eq!(restored.batch_size, 1);
        assert_eq!(restored.batch_latency_us, 0.0);

        let mut v1 = sample_header();
        v1.schema_version = 1;
        let text = serde_json::to_string(&AuditLine::Header(v1)).unwrap();
        let (header, _) = parse_audit_log(&text).unwrap();
        assert_eq!(header.unwrap().schema_version, 1);
    }

    #[test]
    fn v2_records_parse_with_an_empty_trace_id() {
        // A record serialized before the v3 trace field existed must still
        // parse, reading as an unknown (empty) trace id.
        let mut value = serde_json::to_value(sample_record(0)).unwrap();
        value.as_object_mut().unwrap().remove("trace_id");
        let restored: PredictionRecord = serde_json::from_value(value).unwrap();
        assert!(restored.trace_id.is_empty());

        let mut v2 = sample_header();
        v2.schema_version = 2;
        let text = serde_json::to_string(&AuditLine::Header(v2)).unwrap();
        let (header, _) = parse_audit_log(&text).unwrap();
        assert_eq!(header.unwrap().schema_version, 2);
    }

    #[test]
    fn v3_headers_parse_without_a_serve_block() {
        // A header serialized before the v4 serve block existed must still
        // parse, reading as a one-shot (non-daemon) log.
        let mut value = serde_json::to_value(AuditLine::Header(sample_header())).unwrap();
        value.as_object_mut().unwrap().remove("serve");
        value["schema_version"] = serde_json::json!(3);
        let text = serde_json::to_string(&value).unwrap();
        let (header, _) = parse_audit_log(&text).unwrap();
        let header = header.unwrap();
        assert_eq!(header.schema_version, 3);
        assert_eq!(header.serve, None);

        // And a daemon header round-trips its serve block losslessly.
        let mut served = sample_header();
        served.serve = Some(ServeInfo {
            addr: "127.0.0.1:4410".into(),
            batch_deadline_ms: 25,
            queue_cap: 256,
        });
        let json = serde_json::to_string(&AuditLine::Header(served.clone())).unwrap();
        let (restored, _) = parse_audit_log(&json).unwrap();
        assert_eq!(restored.unwrap().serve, served.serve);

        // One-shot headers omit the key entirely.
        let json = serde_json::to_string(&sample_header()).unwrap();
        assert!(!json.contains("\"serve\""));
    }

    #[test]
    fn absent_label_is_omitted_from_json() {
        let mut record = sample_record(0);
        record.label = None;
        let json = serde_json::to_string(&record).unwrap();
        assert!(!json.contains("\"label\""));
        let restored: PredictionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.label, None);
    }
}
