//! Error type for audit-log parsing and monitor replay.

use std::fmt;

/// An audit/monitoring failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditError {
    message: String,
}

impl AuditError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AuditError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_its_message() {
        let err = AuditError::new("bad line");
        assert_eq!(err.to_string(), "bad line");
    }
}
