//! Prediction provenance and online monitoring for the NOODLE detector.
//!
//! NOODLE's value proposition is *calibrated* uncertainty: Mondrian ICP
//! guarantees per-class coverage `1 − ε`, and fusion is chosen by Brier
//! score. Those guarantees rest on exchangeability and silently degrade
//! when the serving distribution drifts. This crate turns the guarantee
//! into a monitored runtime invariant:
//!
//! - [`PredictionRecord`] — the per-`detect` provenance record (modality
//!   availability, per-class Mondrian p-values, credibility/confidence,
//!   fused decision, latency), streamed to a pluggable [`AuditSink`] such
//!   as [`JsonlAudit`].
//! - [`MonitorSuite`] — sliding-window monitors for empirical conformal
//!   coverage vs ε (binomial tolerance bands), rolling Brier score,
//!   nonconformity-score PSI drift against the fit-time
//!   [`CalibrationBaseline`], class-balance and modality-imputation drift,
//!   each reporting [`Health`] with evidence.
//! - [`StreamingMonitors`] — the incremental engine behind all of the
//!   above: consumes records one at a time with O(window) memory, clones
//!   share state, and it implements [`AuditSink`] so it can sit behind the
//!   detector (optionally tee'd with a file sink via [`TeeAudit`]) and
//!   update monitors in-flight while `noodle-export` scrapes it live.
//! - [`replay`] / [`MonitorReport`] — offline replay of a JSONL audit log,
//!   a thin loop over [`StreamingMonitors`] (the `noodle observe`
//!   subcommand); [`LogFollower`] tails a growing or rotating log into the
//!   same engine (`noodle observe --follow`).
//! - [`RotatingJsonlAudit`] — a size-rotated file sink (`.1`..`.N`
//!   suffixes, fsync-on-rotate, header re-emitted per segment so every
//!   segment replays standalone).
//! - [`FlightBundle`] / [`install_alert_dump`] — alert-triggered flight
//!   recorder: the first Healthy/Warn→Alert transition dumps a
//!   self-contained diagnostics bundle (recent flight-recorder events,
//!   live metrics, monitor verdicts, triggering trace id) to disk.
//! - [`SloSuite`] — serving SLO monitors for the `noodle serve` daemon
//!   (rolling p99 latency vs target with trace-id evidence, shed/error
//!   burn rates), merged into [`StreamingMonitors`] via
//!   [`StreamingMonitors::set_slo`] so a latency regression takes the
//!   same incident path (`/healthz` 503 + flight bundle) as drift.
//!
//! Audit emission follows the same gating discipline as
//! `noodle-telemetry`: with no sink attached, [`emit_if`] never invokes
//! the record builder, so the hot detect path pays nothing (enforced by a
//! counting-allocator test in this crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod flight;
pub mod follow;
pub mod monitor;
pub mod psi;
pub mod record;
pub mod report;
pub mod sink;
pub mod slo;
pub mod streaming;

pub use error::AuditError;
pub use flight::{install_alert_dump, FlightBundle, FLIGHT_BUNDLE_SCHEMA_VERSION};
pub use follow::LogFollower;
pub use monitor::{Health, MonitorConfig, MonitorStatus, MonitorSuite};
pub use psi::{CalibrationBaseline, ScoreBaseline};
pub use record::{
    parse_audit_log, AuditHeader, AuditLine, PredictionRecord, ServeInfo, SourceProbe,
    AUDIT_SCHEMA_VERSION,
};
pub use report::{replay, MonitorReport, MONITOR_SCHEMA_VERSION};
pub use sink::{emit_if, AuditSink, JsonlAudit, MemoryAudit, RotatingJsonlAudit, TeeAudit};
pub use slo::{ServeOutcome, SloConfig, SloSuite};
pub use streaming::{StreamingMonitors, Transition};
