//! Property-based tests for the GAN substrate.

use noodle_gan::{amplify_class, GanConfig, MinMaxScaler};
use noodle_nn::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Tensor> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Tensor::from_vec(vec![r, c], data).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scaler transform lands in [-1, 1] and inverse-transform restores the
    /// original data (up to float error).
    #[test]
    fn scaler_round_trip(data in matrix(1..12, 1..8)) {
        let scaler = MinMaxScaler::fit(&data);
        let scaled = scaler.transform(&data);
        prop_assert!(scaled.data().iter().all(|&v| (-1.0 - 1e-6..=1.0 + 1e-6).contains(&v)));
        let restored = scaler.inverse_transform(&scaled);
        for (a, b) in data.data().iter().zip(restored.data()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    /// Inverse transform clamps arbitrary generator outputs into the
    /// training range.
    #[test]
    fn inverse_transform_respects_training_range(
        data in matrix(2..10, 1..6),
        wild in -100.0f32..100.0,
    ) {
        let scaler = MinMaxScaler::fit(&data);
        let cols = data.shape()[1];
        let wild_row = Tensor::from_vec(vec![1, cols], vec![wild; cols]).unwrap();
        let restored = scaler.inverse_transform(&wild_row);
        let rescaled = scaler.transform(&restored);
        prop_assert!(rescaled.data().iter().all(|&v| (-1.0 - 1e-5..=1.0 + 1e-5).contains(&v)));
    }

    /// Amplification always reaches the target, keeps real rows verbatim,
    /// and synthetic rows stay within the real per-feature ranges.
    #[test]
    fn amplify_invariants(data in matrix(4..10, 2..6), extra in 1usize..20, seed in 0u64..100) {
        let n = data.shape()[0];
        let target = n + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let config = GanConfig { epochs: 3, hidden_dim: 8, ..GanConfig::default() };
        let grown = amplify_class(&data, target, &config, &mut rng);
        prop_assert_eq!(grown.shape()[0], target);
        for r in 0..n {
            prop_assert_eq!(&grown.row(r), &data.row(r), "real row {} altered", r);
        }
        // Synthetic rows live inside the training min/max box.
        let scaler = MinMaxScaler::fit(&data);
        let synth = grown.select_rows(&(n..target).collect::<Vec<_>>());
        let scaled = scaler.transform(&synth);
        prop_assert!(scaled.data().iter().all(|&v| (-1.0 - 1e-4..=1.0 + 1e-4).contains(&v)));
    }
}
