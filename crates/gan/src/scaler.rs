//! Per-feature min–max scaling to the generator's tanh range.

use noodle_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Per-feature min–max scaler mapping data to `[-1, 1]` (the output range
/// of a tanh generator) and back.
///
/// Constant features (min == max) are mapped to 0 and restored exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f32>,
    maxs: Vec<f32>,
}

impl MinMaxScaler {
    /// Fits the scaler on a `[n, d]` data matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not rank 2 or has zero rows.
    pub fn fit(data: &Tensor) -> Self {
        assert_eq!(data.ndim(), 2, "scaler expects [n, d] data");
        let (n, d) = (data.shape()[0], data.shape()[1]);
        assert!(n > 0, "cannot fit a scaler on zero rows");
        let mut mins = vec![f32::INFINITY; d];
        let mut maxs = vec![f32::NEG_INFINITY; d];
        for r in 0..n {
            for (c, &v) in data.row(r).iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        Self { mins, maxs }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Scales data into `[-1, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the feature count disagrees with the fitted dimension.
    pub fn transform(&self, data: &Tensor) -> Tensor {
        self.apply(data, |v, lo, hi| if hi > lo { 2.0 * (v - lo) / (hi - lo) - 1.0 } else { 0.0 })
    }

    /// Maps scaled data back to the original feature ranges.
    ///
    /// # Panics
    ///
    /// Panics if the feature count disagrees with the fitted dimension.
    pub fn inverse_transform(&self, data: &Tensor) -> Tensor {
        self.apply(data, |v, lo, hi| {
            if hi > lo {
                (v.clamp(-1.0, 1.0) + 1.0) / 2.0 * (hi - lo) + lo
            } else {
                lo
            }
        })
    }

    fn apply(&self, data: &Tensor, f: impl Fn(f32, f32, f32) -> f32) -> Tensor {
        assert_eq!(data.ndim(), 2, "scaler expects [n, d] data");
        assert_eq!(data.shape()[1], self.dim(), "feature count mismatch");
        let (n, d) = (data.shape()[0], data.shape()[1]);
        let mut out = data.clone();
        let values = out.data_mut();
        for r in 0..n {
            for c in 0..d {
                values[r * d + c] = f(values[r * d + c], self.mins[c], self.maxs[c]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = Tensor::from_vec(vec![3, 2], vec![0.0, 10.0, 5.0, 20.0, 10.0, 30.0]).unwrap();
        let scaler = MinMaxScaler::fit(&data);
        let scaled = scaler.transform(&data);
        assert!(scaled.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        let restored = scaler.inverse_transform(&scaled);
        for (a, b) in data.data().iter().zip(restored.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn constant_feature_restored_exactly() {
        let data = Tensor::from_vec(vec![2, 2], vec![7.0, 1.0, 7.0, 2.0]).unwrap();
        let scaler = MinMaxScaler::fit(&data);
        let scaled = scaler.transform(&data);
        assert_eq!(scaled.at(&[0, 0]), 0.0);
        let restored = scaler.inverse_transform(&scaled);
        assert_eq!(restored.at(&[0, 0]), 7.0);
        assert_eq!(restored.at(&[1, 0]), 7.0);
    }

    #[test]
    fn out_of_range_generator_output_is_clamped() {
        let data = Tensor::from_vec(vec![2, 1], vec![0.0, 1.0]).unwrap();
        let scaler = MinMaxScaler::fit(&data);
        let wild = Tensor::from_vec(vec![1, 1], vec![5.0]).unwrap();
        let restored = scaler.inverse_transform(&wild);
        assert_eq!(restored.at(&[0, 0]), 1.0);
    }
}
