//! A vanilla GAN over feature vectors, used for class-conditional dataset
//! amplification.
//!
//! The paper segregates Trojan-free and Trojan-infected samples and trains
//! a GAN per label to amplify each class consistently with its own
//! distribution; [`amplify_class`] is exactly that primitive.

use noodle_nn::loss::binary_cross_entropy_with_logits;
use noodle_nn::{Activation, Adam, Dense, Mode, Sequential, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scaler::MinMaxScaler;

/// GAN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanConfig {
    /// Dimension of the generator's noise input.
    pub latent_dim: usize,
    /// Hidden width of both networks.
    pub hidden_dim: usize,
    /// Training epochs over the real data.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Learning rate for both optimizers.
    pub lr: f32,
}

impl Default for GanConfig {
    fn default() -> Self {
        Self { latent_dim: 8, hidden_dim: 32, epochs: 300, batch_size: 16, lr: 2e-3 }
    }
}

/// Per-epoch GAN losses, useful for debugging convergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GanEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Mean discriminator loss.
    pub d_loss: f32,
    /// Mean generator loss.
    pub g_loss: f32,
}

/// A trained vanilla GAN over fixed-length feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VanillaGan {
    generator: Sequential,
    discriminator: Sequential,
    scaler: MinMaxScaler,
    latent_dim: usize,
    data_dim: usize,
    trace: Vec<GanEpoch>,
}

impl VanillaGan {
    /// Trains a GAN on real samples `data` (`[n, d]`).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not rank 2 or has no rows.
    pub fn train<R: Rng + ?Sized>(data: &Tensor, config: &GanConfig, rng: &mut R) -> Self {
        assert_eq!(data.ndim(), 2, "GAN expects [n, d] training data");
        let n = data.shape()[0];
        assert!(n > 0, "cannot train a GAN on zero samples");
        let d = data.shape()[1];
        let _span = noodle_telemetry::span!(
            "gan.train",
            samples = n,
            features = d,
            epochs = config.epochs,
        );
        let scaler = MinMaxScaler::fit(data);
        let scaled = scaler.transform(data);

        let mut generator = Sequential::new(vec![
            Dense::new(config.latent_dim, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, d, rng).into(),
            Activation::tanh().into(),
        ]);
        let mut discriminator = Sequential::new(vec![
            Dense::new(d, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, 1, rng).into(),
        ]);
        let mut opt_g = Adam::new(config.lr).betas(0.5, 0.999);
        let mut opt_d = Adam::new(config.lr).betas(0.5, 0.999);
        let batch = config.batch_size.clamp(1, n);
        let mut trace = Vec::with_capacity(config.epochs);

        // The heavy math (Dense forward/backward GEMMs) is parallelized
        // inside the noodle-compute kernels; the epoch loop itself stays
        // sequential so the shuffle/noise RNG stream is identical at every
        // thread count.
        let flops_before = noodle_compute::flops();
        let started = std::time::Instant::now();
        for epoch in 0..config.epochs {
            let mut d_loss_sum = 0.0;
            let mut g_loss_sum = 0.0;
            let mut batches = 0;
            let mut order: Vec<usize> = (0..n).collect();
            rand::seq::SliceRandom::shuffle(order.as_mut_slice(), rng);
            for chunk in order.chunks(batch) {
                let real = scaled.select_rows(chunk);
                let b = chunk.len();

                // --- Discriminator step -------------------------------
                discriminator.zero_grad();
                let real_logits = discriminator.forward(&real, Mode::Train);
                let real_loss = binary_cross_entropy_with_logits(&real_logits, &vec![0.9; b]);
                discriminator.backward(&real_loss.grad);
                let z = Tensor::randn(&[b, config.latent_dim], 1.0, rng);
                let fake = generator.forward(&z, Mode::Eval);
                let fake_logits = discriminator.forward(&fake, Mode::Train);
                let fake_loss = binary_cross_entropy_with_logits(&fake_logits, &vec![0.0; b]);
                discriminator.backward(&fake_loss.grad);
                opt_d.step(&mut discriminator.params_mut());
                d_loss_sum += real_loss.loss + fake_loss.loss;

                // --- Generator step ------------------------------------
                generator.zero_grad();
                discriminator.zero_grad();
                let z = Tensor::randn(&[b, config.latent_dim], 1.0, rng);
                let fake = generator.forward(&z, Mode::Train);
                let logits = discriminator.forward(&fake, Mode::Train);
                let g_loss = binary_cross_entropy_with_logits(&logits, &vec![1.0; b]);
                let grad_at_fake = discriminator.backward(&g_loss.grad);
                generator.backward(&grad_at_fake);
                opt_g.step(&mut generator.params_mut());
                g_loss_sum += g_loss.loss;
                batches += 1;
            }
            let d_loss = d_loss_sum / batches.max(1) as f32;
            let g_loss = g_loss_sum / batches.max(1) as f32;
            noodle_telemetry::counter_add("gan.epochs", 1);
            noodle_telemetry::gauge_set("gan.d_loss", d_loss as f64);
            noodle_telemetry::gauge_set("gan.g_loss", g_loss as f64);
            noodle_telemetry::histogram_record("gan.d_loss", d_loss as f64);
            noodle_telemetry::histogram_record("gan.g_loss", g_loss as f64);
            trace.push(GanEpoch { epoch, d_loss, g_loss });
        }
        let elapsed = started.elapsed().as_secs_f64();
        let gflop = (noodle_compute::flops() - flops_before) as f64 / 1e9;
        noodle_telemetry::gauge_set("gan.train_gflop", gflop);
        if elapsed > 0.0 {
            let trained = (config.epochs * n) as f64;
            noodle_telemetry::gauge_set("gan.samples_per_sec", trained / elapsed);
            noodle_telemetry::gauge_set("gan.train_gflops", gflop / elapsed);
        }

        Self { generator, discriminator, scaler, latent_dim: config.latent_dim, data_dim: d, trace }
    }

    /// Number of features per sample.
    pub fn data_dim(&self) -> usize {
        self.data_dim
    }

    /// The per-epoch loss trace recorded during training.
    pub fn trace(&self) -> &[GanEpoch] {
        &self.trace
    }

    /// Draws `count` synthetic samples in the original feature space.
    pub fn sample<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) -> Tensor {
        let z = Tensor::randn(&[count, self.latent_dim], 1.0, rng);
        let scaled = self.generator.forward(&z, Mode::Eval);
        self.scaler.inverse_transform(&scaled)
    }

    /// Discriminator realism scores (sigmoid probabilities) for samples in
    /// the original feature space.
    pub fn realism(&mut self, samples: &Tensor) -> Vec<f32> {
        let scaled = self.scaler.transform(samples);
        let logits = self.discriminator.forward(&scaled, Mode::Eval);
        logits.data().iter().map(|&x| noodle_nn::sigmoid(x)).collect()
    }
}

/// Amplifies one class to `target_count` samples: trains a GAN on the
/// class's real samples and appends synthetic rows until the class reaches
/// the target size. Returns the combined `[target_count, d]` matrix whose
/// first rows are the real samples.
///
/// If the class already has at least `target_count` samples, the data is
/// returned unchanged (never truncated — real data is not discarded).
///
/// # Panics
///
/// Panics if `data` is not rank 2 or is empty.
pub fn amplify_class<R: Rng + ?Sized>(
    data: &Tensor,
    target_count: usize,
    config: &GanConfig,
    rng: &mut R,
) -> Tensor {
    let n = data.shape()[0];
    if n >= target_count {
        return data.clone();
    }
    let mut gan = VanillaGan::train(data, config, rng);
    let synthetic = gan.sample(target_count - n, rng);
    Tensor::stack_rows(
        &(0..n)
            .map(|r| data.row(r).to_vec())
            .chain((0..synthetic.shape()[0]).map(|r| synthetic.row(r).to_vec()))
            .collect::<Vec<_>>(),
    )
    .expect("rows share the feature dimension")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob(n: usize, center: &[f32], spread: f32, rng: &mut StdRng) -> Tensor {
        let noise = Tensor::randn(&[n, center.len()], spread, rng);
        let mut out = noise;
        let d = center.len();
        let data = out.data_mut();
        for r in 0..n {
            for c in 0..d {
                data[r * d + c] += center[c];
            }
        }
        out
    }

    #[test]
    fn gan_learns_a_blob() {
        let mut rng = StdRng::seed_from_u64(7);
        let real = blob(64, &[2.0, -1.0, 0.5], 0.1, &mut rng);
        let config = GanConfig { epochs: 150, ..GanConfig::default() };
        let mut gan = VanillaGan::train(&real, &config, &mut rng);
        let samples = gan.sample(200, &mut rng);
        assert_eq!(samples.shape(), &[200, 3]);
        // Sample means should land near the blob centre; min–max scaling
        // bounds outputs to the real data's range so this mostly tests that
        // the generator is not collapsed onto a range edge.
        let mut means = [0.0f32; 3];
        for r in 0..200 {
            for (c, m) in means.iter_mut().enumerate() {
                *m += samples.at(&[r, c]) / 200.0;
            }
        }
        assert!((means[0] - 2.0).abs() < 0.5, "mean {means:?}");
        assert!((means[1] + 1.0).abs() < 0.5, "mean {means:?}");
    }

    #[test]
    fn training_trace_is_recorded() {
        let mut rng = StdRng::seed_from_u64(1);
        let real = blob(16, &[0.0, 0.0], 0.2, &mut rng);
        let config = GanConfig { epochs: 5, ..GanConfig::default() };
        let gan = VanillaGan::train(&real, &config, &mut rng);
        assert_eq!(gan.trace().len(), 5);
        assert!(gan.trace().iter().all(|e| e.d_loss.is_finite() && e.g_loss.is_finite()));
    }

    #[test]
    fn amplify_reaches_target_and_keeps_real_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let real = blob(10, &[1.0, 2.0], 0.05, &mut rng);
        let config = GanConfig { epochs: 30, ..GanConfig::default() };
        let amplified = amplify_class(&real, 50, &config, &mut rng);
        assert_eq!(amplified.shape(), &[50, 2]);
        for r in 0..10 {
            assert_eq!(amplified.row(r), real.row(r), "real row {r} altered");
        }
    }

    #[test]
    fn amplify_is_identity_when_large_enough() {
        let mut rng = StdRng::seed_from_u64(4);
        let real = blob(20, &[0.0], 1.0, &mut rng);
        let out = amplify_class(&real, 10, &GanConfig::default(), &mut rng);
        assert_eq!(out, real);
    }

    #[test]
    fn samples_respect_feature_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let real = blob(32, &[5.0, -5.0], 0.3, &mut rng);
        let config = GanConfig { epochs: 20, ..GanConfig::default() };
        let mut gan = VanillaGan::train(&real, &config, &mut rng);
        let samples = gan.sample(100, &mut rng);
        let scaler = MinMaxScaler::fit(&real);
        let rescaled = scaler.transform(&samples);
        assert!(rescaled.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn realism_scores_are_probabilities() {
        let mut rng = StdRng::seed_from_u64(6);
        let real = blob(24, &[0.0, 1.0], 0.2, &mut rng);
        let config = GanConfig { epochs: 30, ..GanConfig::default() };
        let mut gan = VanillaGan::train(&real, &config, &mut rng);
        let scores = gan.realism(&real);
        assert_eq!(scores.len(), 24);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
