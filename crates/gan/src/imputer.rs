//! Cross-modal imputation with a conditional (pix2pix-style) GAN.
//!
//! Algorithm 2 of the paper imputes a missing modality with a GAN. Here the
//! generator translates the *present* modality's feature vector into the
//! *missing* modality's feature vector; it is trained with the standard
//! conditional-GAN objective — an adversarial term from a discriminator
//! that judges (translated) target vectors, plus an L2 reconstruction term
//! that anchors the translation to the paired training data.

use noodle_nn::loss::{binary_cross_entropy_with_logits, mse};
use noodle_nn::{Activation, Adam, Dense, Mode, Sequential, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::scaler::MinMaxScaler;

/// Hyperparameters for the [`ModalityImputer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImputerConfig {
    /// Hidden width of the translator and discriminator.
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight of the L2 reconstruction term relative to the adversarial
    /// term.
    pub reconstruction_weight: f32,
}

impl Default for ImputerConfig {
    fn default() -> Self {
        Self { hidden_dim: 32, epochs: 200, batch_size: 16, lr: 2e-3, reconstruction_weight: 10.0 }
    }
}

/// A trained cross-modal translator: given modality A, synthesizes
/// modality B.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModalityImputer {
    translator: Sequential,
    source_scaler: MinMaxScaler,
    target_scaler: MinMaxScaler,
    source_dim: usize,
    target_dim: usize,
}

impl ModalityImputer {
    /// Trains the imputer on paired samples: `source` (`[n, da]`, the
    /// modality that will be present) and `target` (`[n, db]`, the modality
    /// to reconstruct).
    ///
    /// # Panics
    ///
    /// Panics if the matrices are not rank 2, are empty, or disagree on the
    /// number of rows.
    pub fn train<R: Rng + ?Sized>(
        source: &Tensor,
        target: &Tensor,
        config: &ImputerConfig,
        rng: &mut R,
    ) -> Self {
        assert_eq!(source.ndim(), 2, "imputer expects [n, d] source");
        assert_eq!(target.ndim(), 2, "imputer expects [n, d] target");
        let n = source.shape()[0];
        assert!(n > 0, "cannot train an imputer on zero samples");
        assert_eq!(n, target.shape()[0], "source/target row mismatch");
        let (da, db) = (source.shape()[1], target.shape()[1]);
        let _span = noodle_telemetry::span!(
            "gan.imputer.train",
            samples = n,
            source_dim = da,
            target_dim = db,
        );

        let source_scaler = MinMaxScaler::fit(source);
        let target_scaler = MinMaxScaler::fit(target);
        let xs = source_scaler.transform(source);
        let ys = target_scaler.transform(target);

        let mut translator = Sequential::new(vec![
            Dense::new(da, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, db, rng).into(),
            Activation::tanh().into(),
        ]);
        let mut discriminator = Sequential::new(vec![
            Dense::new(db, config.hidden_dim, rng).into(),
            Activation::leaky_relu().into(),
            Dense::new(config.hidden_dim, 1, rng).into(),
        ]);
        let mut opt_t = Adam::new(config.lr).betas(0.5, 0.999);
        let mut opt_d = Adam::new(config.lr).betas(0.5, 0.999);
        let batch = config.batch_size.clamp(1, n);

        for _ in 0..config.epochs {
            let mut order: Vec<usize> = (0..n).collect();
            rand::seq::SliceRandom::shuffle(order.as_mut_slice(), rng);
            for chunk in order.chunks(batch) {
                let xb = xs.select_rows(chunk);
                let yb = ys.select_rows(chunk);
                let b = chunk.len();

                // Discriminator: real target vs translated.
                discriminator.zero_grad();
                let real_logits = discriminator.forward(&yb, Mode::Train);
                let real_loss = binary_cross_entropy_with_logits(&real_logits, &vec![0.9; b]);
                discriminator.backward(&real_loss.grad);
                let fake = translator.forward(&xb, Mode::Eval);
                let fake_logits = discriminator.forward(&fake, Mode::Train);
                let fake_loss = binary_cross_entropy_with_logits(&fake_logits, &vec![0.0; b]);
                discriminator.backward(&fake_loss.grad);
                opt_d.step(&mut discriminator.params_mut());

                // Translator: fool the discriminator + reconstruct.
                translator.zero_grad();
                discriminator.zero_grad();
                let fake = translator.forward(&xb, Mode::Train);
                let logits = discriminator.forward(&fake, Mode::Train);
                let adv = binary_cross_entropy_with_logits(&logits, &vec![1.0; b]);
                let grad_adv = discriminator.backward(&adv.grad);
                let rec = mse(&fake, &yb);
                let mut grad_total = grad_adv;
                grad_total.axpy(config.reconstruction_weight, &rec.grad);
                translator.backward(&grad_total);
                opt_t.step(&mut translator.params_mut());
            }
        }

        Self { translator, source_scaler, target_scaler, source_dim: da, target_dim: db }
    }

    /// Feature dimension of the present (source) modality.
    pub fn source_dim(&self) -> usize {
        self.source_dim
    }

    /// Feature dimension of the imputed (target) modality.
    pub fn target_dim(&self) -> usize {
        self.target_dim
    }

    /// Synthesizes the missing modality for `source` samples (`[n, da]`),
    /// returning `[n, db]` in the target modality's original feature space.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension disagrees with the training data.
    pub fn impute(&mut self, source: &Tensor) -> Tensor {
        assert_eq!(source.shape()[1], self.source_dim, "source feature mismatch");
        let xs = self.source_scaler.transform(source);
        let ys = self.translator.forward(&xs, Mode::Eval);
        self.target_scaler.inverse_transform(&ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Paired data with a deterministic linear relationship the translator
    /// must learn: y = [2a0 + 1, a0 - a1].
    fn paired(n: usize, rng: &mut StdRng) -> (Tensor, Tensor) {
        let a = Tensor::rand_uniform(&[n, 2], -1.0, 1.0, rng);
        let mut brows = Vec::with_capacity(n);
        for r in 0..n {
            let row = a.row(r);
            brows.push(vec![2.0 * row[0] + 1.0, row[0] - row[1]]);
        }
        (a, Tensor::stack_rows(&brows).unwrap())
    }

    #[test]
    fn learns_linear_cross_modal_map() {
        let mut rng = StdRng::seed_from_u64(13);
        let (a, b) = paired(128, &mut rng);
        let config = ImputerConfig { epochs: 150, ..ImputerConfig::default() };
        let mut imputer = ModalityImputer::train(&a, &b, &config, &mut rng);
        let (a_test, b_test) = paired(32, &mut rng);
        let imputed = imputer.impute(&a_test);
        let mut err = 0.0;
        for r in 0..32 {
            for c in 0..2 {
                err += (imputed.at(&[r, c]) - b_test.at(&[r, c])).abs() / 64.0;
            }
        }
        assert!(err < 0.35, "mean absolute imputation error {err}");
    }

    #[test]
    fn imputed_values_stay_in_target_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let (a, b) = paired(64, &mut rng);
        let config = ImputerConfig { epochs: 30, ..ImputerConfig::default() };
        let mut imputer = ModalityImputer::train(&a, &b, &config, &mut rng);
        let out = imputer.impute(&a);
        let scaler = MinMaxScaler::fit(&b);
        let scaled = scaler.transform(&out);
        assert!(scaled.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn dims_are_recorded() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b) = paired(16, &mut rng);
        let config = ImputerConfig { epochs: 2, ..ImputerConfig::default() };
        let imputer = ModalityImputer::train(&a, &b, &config, &mut rng);
        assert_eq!(imputer.source_dim(), 2);
        assert_eq!(imputer.target_dim(), 2);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn rejects_unpaired_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::zeros(&[4, 2]);
        let b = Tensor::zeros(&[5, 2]);
        let _ = ModalityImputer::train(&a, &b, &ImputerConfig::default(), &mut rng);
    }
}
