//! # noodle-gan
//!
//! Generative adversarial networks for NOODLE's small-data regime:
//!
//! * [`VanillaGan`] / [`amplify_class`] — class-conditional dataset
//!   amplification (the paper segregates Trojan-free and Trojan-infected
//!   samples and trains one GAN per label to grow the corpus to ~500
//!   points),
//! * [`ModalityImputer`] — a conditional GAN that synthesizes a missing
//!   modality from the present one (Algorithm 2, step 3).
//!
//! ## Quickstart
//!
//! ```
//! use noodle_gan::{amplify_class, GanConfig};
//! use noodle_nn::Tensor;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let real = Tensor::rand_uniform(&[12, 4], 0.0, 1.0, &mut rng);
//! let config = GanConfig { epochs: 10, ..GanConfig::default() };
//! let grown = amplify_class(&real, 30, &config, &mut rng);
//! assert_eq!(grown.shape(), &[30, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod imputer;
mod scaler;
mod vanilla;

pub use imputer::{ImputerConfig, ModalityImputer};
pub use scaler::MinMaxScaler;
pub use vanilla::{amplify_class, GanConfig, GanEpoch, VanillaGan};
