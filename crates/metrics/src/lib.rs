//! # noodle-metrics
//!
//! Probabilistic-classification metrics for the NOODLE evaluation: the
//! Brier score with Murphy and calibration–refinement decompositions,
//! Brier skill score, ROC/AUC, reliability (calibration) curves with
//! sharpness histograms, binary confusion matrices, distribution summaries
//! for repeated-split experiments, and the consolidated radar-plot metric
//! set — everything the paper's Table I and Figs. 2–5 report.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_metrics::{brier_score, roc_curve, RadarMetrics};
//!
//! let probs = [0.9, 0.8, 0.3, 0.1];
//! let truth = [true, true, false, false];
//! assert!(brier_score(&probs, &truth) < 0.05);
//! assert_eq!(roc_curve(&probs, &truth).auc(), 1.0);
//! let radar = RadarMetrics::compute(&probs, &truth);
//! assert_eq!(radar.sensitivity, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod brier;
mod calibration;
mod confusion;
mod pr;
mod radar;
mod roc;

pub use bootstrap::{summarize, DistributionSummary};
pub use brier::{brier_score, brier_skill_score, murphy_decomposition, MurphyDecomposition};
pub use calibration::{calibration_curve, CalibrationBin, CalibrationCurve};
pub use confusion::ConfusionMatrix;
pub use pr::{log_loss, pr_curve, PrCurve, PrPoint};
pub use radar::{RadarMetrics, RADAR_AXES};
pub use roc::{roc_curve, RocCurve, RocPoint};
