//! Precision–recall curves and log loss — complements to ROC/Brier that
//! behave better under the heavy class imbalance of Trojan detection.

use serde::{Deserialize, Serialize};

/// One operating point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// Recall (true-positive rate).
    pub recall: f64,
    /// Precision (positive predictive value).
    pub precision: f64,
}

/// A precision–recall curve with its average precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrCurve {
    points: Vec<PrPoint>,
    average_precision: f64,
}

impl PrCurve {
    /// The operating points, from the highest threshold (lowest recall)
    /// down.
    pub fn points(&self) -> &[PrPoint] {
        &self.points
    }

    /// Average precision: the step-function integral of precision over
    /// recall (the standard AP definition).
    pub fn average_precision(&self) -> f64 {
        self.average_precision
    }
}

/// Computes the precision–recall curve of scores against binary labels.
///
/// # Panics
///
/// Panics if inputs are empty/misaligned, scores are non-finite, or there
/// is no positive example (recall is undefined).
pub fn pr_curve(scores: &[f64], labels: &[bool]) -> PrCurve {
    assert_eq!(scores.len(), labels.len(), "inputs must align");
    assert!(!scores.is_empty(), "need at least one example");
    assert!(scores.iter().all(|s| s.is_finite()), "scores must be finite");
    let positives = labels.iter().filter(|&&l| l).count();
    assert!(positives > 0, "PR curve requires at least one positive example");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("scores are finite"));

    let mut points = Vec::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut average_precision = 0.0;
    let mut prev_recall = 0.0;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let recall = tp as f64 / positives as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        average_precision += (recall - prev_recall) * precision;
        prev_recall = recall;
        points.push(PrPoint { threshold, recall, precision });
    }
    PrCurve { points, average_precision }
}

/// Binary cross-entropy (log loss) of probabilistic predictions, with
/// probabilities clamped away from 0/1 for finiteness.
///
/// # Panics
///
/// Panics if inputs are empty/misaligned or probabilities are outside
/// `[0, 1]`.
pub fn log_loss(probabilities: &[f64], outcomes: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), outcomes.len(), "inputs must align");
    assert!(!probabilities.is_empty(), "need at least one prediction");
    let mut sum = 0.0;
    for (&p, &o) in probabilities.iter().zip(outcomes) {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        sum -= if o { p.ln() } else { (1.0 - p).ln() };
    }
    sum / probabilities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_unit_ap() {
        let curve = pr_curve(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert!((curve.average_precision() - 1.0).abs() < 1e-12);
        let first = curve.points()[0];
        assert_eq!(first.precision, 1.0);
    }

    #[test]
    fn random_scores_ap_near_base_rate() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2000;
        let scores: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        let labels: Vec<bool> = (0..n).map(|i| i % 4 == 0).collect();
        let ap = pr_curve(&scores, &labels).average_precision();
        assert!((ap - 0.25).abs() < 0.07, "AP {ap} should be near the 0.25 base rate");
    }

    #[test]
    fn recall_is_monotone() {
        let scores = [0.9, 0.7, 0.5, 0.3, 0.1, 0.6];
        let labels = [true, false, true, false, true, true];
        let curve = pr_curve(&scores, &labels);
        for w in curve.points().windows(2) {
            assert!(w[1].recall >= w[0].recall);
        }
        assert!((curve.points().last().unwrap().recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_loss_reference_values() {
        // Uniform 0.5 predictions give ln 2.
        let ll = log_loss(&[0.5, 0.5], &[true, false]);
        assert!((ll - std::f64::consts::LN_2).abs() < 1e-12);
        // Perfect predictions give ~0.
        assert!(log_loss(&[1.0, 0.0], &[true, false]) < 1e-10);
        // Confidently wrong predictions explode but stay finite.
        let bad = log_loss(&[0.0, 1.0], &[true, false]);
        assert!(bad.is_finite() && bad > 20.0);
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn pr_requires_positives() {
        let _ = pr_curve(&[0.5], &[false]);
    }
}
