//! Binary confusion matrix and derived classification metrics.

use serde::{Deserialize, Serialize};

/// A binary confusion matrix (positive class = Trojan-infected).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from predictions and ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "inputs must align");
        let mut m = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of examples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction of correct predictions (0 on an empty matrix).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// Positive predictive value (0 when no positive predictions).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// True-positive rate / sensitivity (0 when no positives).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Synonym for [`Self::recall`].
    pub fn sensitivity(&self) -> f64 {
        self.recall()
    }

    /// True-negative rate (0 when no negatives).
    pub fn specificity(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Mean of sensitivity and specificity; robust to imbalance.
    pub fn balanced_accuracy(&self) -> f64 {
        (self.sensitivity() + self.specificity()) / 2.0
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> ConfusionMatrix {
        // predictions: TP TP FP TN TN FN
        ConfusionMatrix::from_predictions(
            &[true, true, true, false, false, false],
            &[true, true, false, false, false, true],
        )
    }

    #[test]
    fn counts() {
        let m = example();
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 2, 1));
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn derived_metrics() {
        let m = example();
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.specificity() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.balanced_accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }

    #[test]
    fn never_positive_predictor() {
        let m = ConfusionMatrix::from_predictions(&[false, false], &[true, false]);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.specificity(), 1.0);
        // Accuracy is misleadingly decent — exactly the imbalance trap the
        // paper's Brier-score argument warns about.
        assert_eq!(m.accuracy(), 0.5);
    }
}
