//! ROC curve and AUC.

use serde::{Deserialize, Serialize};

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold producing this point.
    pub threshold: f64,
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate (sensitivity).
    pub tpr: f64,
}

/// A full ROC curve with its AUC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
    auc: f64,
}

impl RocCurve {
    /// The curve's operating points, ordered from threshold `+inf`
    /// (`(0,0)`) down to `-inf` (`(1,1)`).
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// The area under the curve.
    pub fn auc(&self) -> f64 {
        self.auc
    }
}

/// Computes the ROC curve of scores against binary labels (`true` =
/// positive class).
///
/// Ties in scores are handled correctly by advancing over all equal scores
/// at once. The AUC equals the Mann–Whitney probability that a random
/// positive outscores a random negative (ties counting ½).
///
/// # Panics
///
/// Panics if inputs are empty/misaligned, contain non-finite scores, or if
/// either class is absent (the curve is undefined).
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> RocCurve {
    assert_eq!(scores.len(), labels.len(), "inputs must align");
    assert!(!scores.is_empty(), "need at least one example");
    assert!(scores.iter().all(|s| s.is_finite()), "scores must be finite");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    assert!(positives > 0, "ROC requires at least one positive example");
    assert!(negatives > 0, "ROC requires at least one negative example");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("scores are finite"));

    let mut points = vec![RocPoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 }];
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut auc = 0.0;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        let (mut dtp, mut dfp) = (0usize, 0usize);
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                dtp += 1;
            } else {
                dfp += 1;
            }
            i += 1;
        }
        // Trapezoid over the tie block (handles diagonal tie segments).
        let prev_tpr = tp as f64 / positives as f64;
        tp += dtp;
        fp += dfp;
        let tpr = tp as f64 / positives as f64;
        let fpr = fp as f64 / negatives as f64;
        auc += (dfp as f64 / negatives as f64) * (prev_tpr + tpr) / 2.0;
        points.push(RocPoint { threshold, fpr, tpr });
    }
    RocCurve { points, auc }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let roc = roc_curve(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_scores_give_zero_auc() {
        let roc = roc_curve(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]);
        assert!(roc.auc().abs() < 1e-12);
    }

    #[test]
    fn random_ties_give_half() {
        let roc = roc_curve(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let scores = [0.9, 0.1, 0.8, 0.4, 0.35, 0.6];
        let labels = [true, false, true, false, true, false];
        let roc = roc_curve(&scores, &labels);
        for w in roc.points().windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        let last = roc.points().last().unwrap();
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
    }

    #[test]
    fn auc_matches_mann_whitney() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let scores: Vec<f64> = (0..60).map(|_| rng.random_range(0.0..1.0)).collect();
        let labels: Vec<bool> = (0..60).map(|i| i % 3 == 0).collect();
        let roc = roc_curve(&scores, &labels);
        // Brute-force Mann–Whitney.
        let mut wins = 0.0;
        let mut pairs = 0.0;
        for (i, &li) in labels.iter().enumerate() {
            if !li {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj {
                    continue;
                }
                pairs += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        assert!((roc.auc() - wins / pairs).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn requires_both_classes() {
        let _ = roc_curve(&[0.5, 0.6], &[false, false]);
    }
}
