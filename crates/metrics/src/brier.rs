//! Brier score and its decompositions.

use serde::{Deserialize, Serialize};

/// The Brier score of probabilistic binary predictions:
/// `BS = mean((p_i - o_i)^2)` (Eq. 5 of the paper). Lower is better;
/// 0 is perfect.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, or if any
/// probability is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let bs = noodle_metrics::brier_score(&[1.0, 0.0], &[true, false]);
/// assert_eq!(bs, 0.0);
/// ```
pub fn brier_score(probabilities: &[f64], outcomes: &[bool]) -> f64 {
    assert_eq!(probabilities.len(), outcomes.len(), "inputs must align");
    assert!(!probabilities.is_empty(), "need at least one prediction");
    let mut sum = 0.0;
    for (&p, &o) in probabilities.iter().zip(outcomes) {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let target = if o { 1.0 } else { 0.0 };
        sum += (p - target) * (p - target);
    }
    sum / probabilities.len() as f64
}

/// The Brier skill score relative to the climatology forecast (always
/// predicting the base rate): `BSS = 1 - BS / BS_ref`. Positive means
/// better than climatology; 1 is perfect.
///
/// Returns 0 when the reference score is 0 (a degenerate constant-outcome
/// set, where no skill is measurable).
///
/// # Panics
///
/// Panics under the same conditions as [`brier_score`].
pub fn brier_skill_score(probabilities: &[f64], outcomes: &[bool]) -> f64 {
    let bs = brier_score(probabilities, outcomes);
    let base_rate = outcomes.iter().filter(|&&o| o).count() as f64 / outcomes.len() as f64;
    let reference: Vec<f64> = vec![base_rate; outcomes.len()];
    let bs_ref = brier_score(&reference, outcomes);
    if bs_ref == 0.0 {
        0.0
    } else {
        1.0 - bs / bs_ref
    }
}

/// Murphy's three-component decomposition of the Brier score over
/// probability bins: `BS = reliability - resolution + uncertainty`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MurphyDecomposition {
    /// Mean squared gap between bin forecast and bin outcome frequency
    /// (lower is better calibrated).
    pub reliability: f64,
    /// How much the bin outcome frequencies differ from the base rate
    /// (higher is better — the forecasts discriminate).
    pub resolution: f64,
    /// Base-rate variance `ō(1-ō)`; a property of the data alone.
    pub uncertainty: f64,
}

impl MurphyDecomposition {
    /// The Brier score implied by the decomposition.
    pub fn brier(&self) -> f64 {
        self.reliability - self.resolution + self.uncertainty
    }

    /// Refinement loss under the calibration–refinement decomposition:
    /// `refinement = uncertainty - resolution` (the error a perfectly
    /// calibrated forecaster with this sharpness would still make).
    pub fn refinement_loss(&self) -> f64 {
        self.uncertainty - self.resolution
    }

    /// Calibration loss (synonym for reliability).
    pub fn calibration_loss(&self) -> f64 {
        self.reliability
    }
}

/// Computes Murphy's decomposition with `bins` equal-width probability
/// bins.
///
/// The decomposition identity `BS = rel - res + unc` holds exactly when
/// every forecast in a bin shares the bin's mean forecast; with binning it
/// holds approximately (tested to a small tolerance).
///
/// # Panics
///
/// Panics if inputs are empty/misaligned or `bins == 0`.
pub fn murphy_decomposition(
    probabilities: &[f64],
    outcomes: &[bool],
    bins: usize,
) -> MurphyDecomposition {
    assert_eq!(probabilities.len(), outcomes.len(), "inputs must align");
    assert!(!probabilities.is_empty(), "need at least one prediction");
    assert!(bins > 0, "need at least one bin");
    let n = probabilities.len() as f64;
    let base_rate = outcomes.iter().filter(|&&o| o).count() as f64 / n;
    let mut bin_count = vec![0usize; bins];
    let mut bin_prob_sum = vec![0.0f64; bins];
    let mut bin_pos = vec![0usize; bins];
    for (&p, &o) in probabilities.iter().zip(outcomes) {
        let b = ((p * bins as f64) as usize).min(bins - 1);
        bin_count[b] += 1;
        bin_prob_sum[b] += p;
        if o {
            bin_pos[b] += 1;
        }
    }
    let mut reliability = 0.0;
    let mut resolution = 0.0;
    for b in 0..bins {
        if bin_count[b] == 0 {
            continue;
        }
        let nk = bin_count[b] as f64;
        let mean_p = bin_prob_sum[b] / nk;
        let freq = bin_pos[b] as f64 / nk;
        reliability += nk * (mean_p - freq) * (mean_p - freq);
        resolution += nk * (freq - base_rate) * (freq - base_rate);
    }
    MurphyDecomposition {
        reliability: reliability / n,
        resolution: resolution / n,
        uncertainty: base_rate * (1.0 - base_rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_worst_scores() {
        assert_eq!(brier_score(&[1.0, 0.0, 1.0], &[true, false, true]), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]), 1.0);
    }

    #[test]
    fn hand_computed_score() {
        // (0.8-1)^2 = 0.04 ; (0.3-0)^2 = 0.09 ; mean = 0.065
        let bs = brier_score(&[0.8, 0.3], &[true, false]);
        assert!((bs - 0.065).abs() < 1e-12);
    }

    #[test]
    fn climatology_has_zero_skill() {
        let outcomes = [true, false, true, false];
        let probs = vec![0.5; 4];
        let bss = brier_skill_score(&probs, &outcomes);
        assert!(bss.abs() < 1e-12);
    }

    #[test]
    fn perfect_has_unit_skill() {
        let outcomes = [true, false, true, false];
        let probs = [1.0, 0.0, 1.0, 0.0];
        assert!((brier_skill_score(&probs, &outcomes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_outcomes_give_zero_skill() {
        assert_eq!(brier_skill_score(&[0.9, 0.8], &[true, true]), 0.0);
    }

    #[test]
    fn murphy_identity_holds_with_constant_bin_forecasts() {
        // Forecasts exactly at bin centres so within-bin variance is 0 and
        // the identity is exact.
        let probs = [0.05, 0.05, 0.05, 0.95, 0.95, 0.95, 0.95, 0.05];
        let outcomes = [false, false, true, true, true, true, false, false];
        let d = murphy_decomposition(&probs, &outcomes, 10);
        let bs = brier_score(&probs, &outcomes);
        assert!((d.brier() - bs).abs() < 1e-12, "{} vs {bs}", d.brier());
    }

    #[test]
    fn uncertainty_is_base_rate_variance() {
        let probs = [0.5; 10];
        let outcomes = [true, true, true, false, false, false, false, false, false, false];
        let d = murphy_decomposition(&probs, &outcomes, 10);
        assert!((d.uncertainty - 0.3 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn resolution_zero_for_constant_forecast() {
        let probs = [0.4; 6];
        let outcomes = [true, false, true, false, false, false];
        let d = murphy_decomposition(&probs, &outcomes, 10);
        assert!(d.resolution.abs() < 1e-12);
        assert!((d.refinement_loss() - d.uncertainty).abs() < 1e-12);
    }

    #[test]
    fn decomposition_components_nonnegative() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let probs: Vec<f64> = (0..200).map(|_| rng.random_range(0.0..1.0)).collect();
        let outcomes: Vec<bool> = probs.iter().map(|&p| rng.random_range(0.0..1.0) < p).collect();
        let d = murphy_decomposition(&probs, &outcomes, 10);
        assert!(d.reliability >= 0.0);
        assert!(d.resolution >= 0.0);
        assert!(d.uncertainty >= 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_probability() {
        let _ = brier_score(&[1.5], &[true]);
    }
}
