//! Summary statistics and percentile intervals for metric distributions
//! (used by the Fig. 2 Brier-score distribution plots).

use serde::{Deserialize, Serialize};

/// A five-number-plus-mean summary of a sample, with a percentile interval
/// around the mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
    /// Lower bound of the percentile interval.
    pub interval_lo: f64,
    /// Upper bound of the percentile interval.
    pub interval_hi: f64,
}

/// Summarizes a sample with a central percentile interval of the given
/// `coverage` (e.g. 0.95).
///
/// # Panics
///
/// Panics if `values` is empty, contains non-finite values, or `coverage`
/// is outside `(0, 1]`.
pub fn summarize(values: &[f64], coverage: f64) -> DistributionSummary {
    assert!(!values.is_empty(), "need at least one value");
    assert!(values.iter().all(|v| v.is_finite()), "values must be finite");
    assert!(coverage > 0.0 && coverage <= 1.0, "coverage must be in (0, 1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let std_dev = if n > 1 {
        (sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)).sqrt()
    } else {
        0.0
    };
    let alpha = (1.0 - coverage) / 2.0;
    DistributionSummary {
        n,
        mean,
        std_dev,
        min: sorted[0],
        q25: percentile(&sorted, 0.25),
        median: percentile(&sorted, 0.5),
        q75: percentile(&sorted, 0.75),
        max: sorted[n - 1],
        interval_lo: percentile(&sorted, alpha),
        interval_hi: percentile(&sorted, 1.0 - alpha),
    }
}

/// Linear-interpolated percentile of a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = summarize(&values, 1.0);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn interval_narrows_with_coverage() {
        let values: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let wide = summarize(&values, 0.95);
        let narrow = summarize(&values, 0.5);
        assert!(narrow.interval_lo > wide.interval_lo);
        assert!(narrow.interval_hi < wide.interval_hi);
    }

    #[test]
    fn single_value() {
        let s = summarize(&[0.42], 0.95);
        assert_eq!(s.mean, 0.42);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.interval_lo, 0.42);
        assert_eq!(s.interval_hi, 0.42);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = summarize(&[3.0, 1.0, 2.0], 1.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = summarize(&[f64::NAN], 0.95);
    }
}
