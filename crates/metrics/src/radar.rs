//! Consolidated radar-plot metrics (Fig. 5 of the paper).

use serde::{Deserialize, Serialize};

use crate::brier::{brier_score, brier_skill_score, murphy_decomposition};
use crate::confusion::ConfusionMatrix;
use crate::roc::roc_curve;

/// The consolidated metric set the paper's radar plot shows: discrimination
/// metrics (AUC, resolution, refinement loss), combined
/// calibration+discrimination metrics (Brier score, Brier skill score) and
/// headline classification metrics (sensitivity, accuracy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadarMetrics {
    /// Area under the ROC curve.
    pub auc: f64,
    /// Murphy resolution.
    pub resolution: f64,
    /// Refinement loss (uncertainty − resolution).
    pub refinement_loss: f64,
    /// Brier score.
    pub brier: f64,
    /// Brier skill score vs climatology.
    pub brier_skill: f64,
    /// Sensitivity (true-positive rate) at threshold 0.5.
    pub sensitivity: f64,
    /// Accuracy at threshold 0.5.
    pub accuracy: f64,
}

/// Axis labels in the order of [`RadarMetrics::normalized_axes`].
pub const RADAR_AXES: [&str; 7] = [
    "AUC",
    "Resolution",
    "Refinement loss",
    "Brier score",
    "Brier skill score",
    "Sensitivity",
    "Accuracy",
];

impl RadarMetrics {
    /// Computes all radar metrics from positive-class probabilities and
    /// ground truth, thresholding at 0.5 for the point metrics.
    ///
    /// # Panics
    ///
    /// Panics under the constituent metrics' conditions (empty input,
    /// single-class labels for AUC, probabilities outside `[0, 1]`).
    pub fn compute(probabilities: &[f64], outcomes: &[bool]) -> Self {
        let decomposition = murphy_decomposition(probabilities, outcomes, 10);
        let predicted: Vec<bool> = probabilities.iter().map(|&p| p >= 0.5).collect();
        let cm = ConfusionMatrix::from_predictions(&predicted, outcomes);
        Self {
            auc: roc_curve(probabilities, outcomes).auc(),
            resolution: decomposition.resolution,
            refinement_loss: decomposition.refinement_loss(),
            brier: brier_score(probabilities, outcomes),
            brier_skill: brier_skill_score(probabilities, outcomes),
            sensitivity: cm.sensitivity(),
            accuracy: cm.accuracy(),
        }
    }

    /// The metrics normalized to the radial `[0, 1]` axis in the
    /// [`RADAR_AXES`] order, with "lower is better" axes inverted so that
    /// larger is uniformly better:
    ///
    /// * resolution and refinement loss are scaled by 4 (their maximum is
    ///   the maximum uncertainty 0.25),
    /// * Brier score and refinement loss are reported as `1 − scaled`,
    /// * Brier skill is clamped at 0 from below.
    pub fn normalized_axes(&self) -> [f64; 7] {
        [
            self.auc.clamp(0.0, 1.0),
            (self.resolution * 4.0).clamp(0.0, 1.0),
            (1.0 - self.refinement_loss * 4.0).clamp(0.0, 1.0),
            (1.0 - self.brier).clamp(0.0, 1.0),
            self.brier_skill.clamp(0.0, 1.0),
            self.sensitivity.clamp(0.0, 1.0),
            self.accuracy.clamp(0.0, 1.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictor_maxes_axes() {
        let probs = [1.0, 1.0, 0.0, 0.0];
        let outcomes = [true, true, false, false];
        let m = RadarMetrics::compute(&probs, &outcomes);
        assert_eq!(m.auc, 1.0);
        assert_eq!(m.brier, 0.0);
        assert_eq!(m.sensitivity, 1.0);
        assert_eq!(m.accuracy, 1.0);
        let axes = m.normalized_axes();
        assert!(axes.iter().all(|&a| (0.0..=1.0).contains(&a)));
        assert_eq!(axes[0], 1.0);
        assert_eq!(axes[3], 1.0);
    }

    #[test]
    fn axes_always_in_unit_range() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let probs: Vec<f64> = (0..40).map(|_| rng.random_range(0.0..1.0)).collect();
            let mut outcomes: Vec<bool> =
                probs.iter().map(|&p| rng.random_range(0.0..1.0) < p).collect();
            outcomes[0] = true;
            outcomes[1] = false;
            let m = RadarMetrics::compute(&probs, &outcomes);
            for a in m.normalized_axes() {
                assert!((0.0..=1.0).contains(&a), "axis {a} out of range");
            }
        }
    }

    #[test]
    fn axis_names_match_count() {
        let m = RadarMetrics::compute(&[0.9, 0.1], &[true, false]);
        assert_eq!(m.normalized_axes().len(), RADAR_AXES.len());
    }
}
