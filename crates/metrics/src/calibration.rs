//! Reliability (confidence calibration) diagrams.

use serde::{Deserialize, Serialize};

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationBin {
    /// Inclusive lower edge of the bin.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bin).
    pub hi: f64,
    /// Number of predictions in the bin.
    pub count: usize,
    /// Mean predicted probability of the bin (NaN-free: 0 when empty).
    pub mean_predicted: f64,
    /// Observed positive frequency in the bin (0 when empty).
    pub observed_frequency: f64,
}

/// A reliability diagram plus the sharpness histogram the paper plots
/// beneath it (Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCurve {
    bins: Vec<CalibrationBin>,
    expected_calibration_error: f64,
    sharpness: f64,
}

impl CalibrationCurve {
    /// The diagram's bins in order.
    pub fn bins(&self) -> &[CalibrationBin] {
        &self.bins
    }

    /// Expected calibration error: count-weighted mean |predicted −
    /// observed| over the bins.
    pub fn expected_calibration_error(&self) -> f64 {
        self.expected_calibration_error
    }

    /// Sharpness: the variance of the predictions (the paper's definition —
    /// the tendency of forecasts to sit at the extremes).
    pub fn sharpness(&self) -> f64 {
        self.sharpness
    }

    /// The histogram counts (one per bin), for the sharpness plot.
    pub fn histogram(&self) -> Vec<usize> {
        self.bins.iter().map(|b| b.count).collect()
    }
}

/// Computes a reliability diagram with `bins` equal-width bins.
///
/// # Panics
///
/// Panics if inputs are empty/misaligned, `bins == 0`, or any probability
/// is outside `[0, 1]`.
pub fn calibration_curve(
    probabilities: &[f64],
    outcomes: &[bool],
    bins: usize,
) -> CalibrationCurve {
    assert_eq!(probabilities.len(), outcomes.len(), "inputs must align");
    assert!(!probabilities.is_empty(), "need at least one prediction");
    assert!(bins > 0, "need at least one bin");
    let n = probabilities.len() as f64;
    let mut count = vec![0usize; bins];
    let mut prob_sum = vec![0.0f64; bins];
    let mut pos = vec![0usize; bins];
    for (&p, &o) in probabilities.iter().zip(outcomes) {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        let b = ((p * bins as f64) as usize).min(bins - 1);
        count[b] += 1;
        prob_sum[b] += p;
        if o {
            pos[b] += 1;
        }
    }
    let width = 1.0 / bins as f64;
    let mut out_bins = Vec::with_capacity(bins);
    let mut ece = 0.0;
    for b in 0..bins {
        let (mean_predicted, observed_frequency) = if count[b] > 0 {
            (prob_sum[b] / count[b] as f64, pos[b] as f64 / count[b] as f64)
        } else {
            (0.0, 0.0)
        };
        if count[b] > 0 {
            ece += (count[b] as f64 / n) * (mean_predicted - observed_frequency).abs();
        }
        out_bins.push(CalibrationBin {
            lo: b as f64 * width,
            hi: if b == bins - 1 { 1.0 } else { (b + 1) as f64 * width },
            count: count[b],
            mean_predicted,
            observed_frequency,
        });
    }
    let mean_p = probabilities.iter().sum::<f64>() / n;
    let sharpness = probabilities.iter().map(|&p| (p - mean_p) * (p - mean_p)).sum::<f64>() / n;
    CalibrationCurve { bins: out_bins, expected_calibration_error: ece, sharpness }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_bins() {
        // Two bins: low bin has 25% positives at p = 0.25, high bin 75% at 0.75.
        let probs = [0.25, 0.25, 0.25, 0.25, 0.75, 0.75, 0.75, 0.75];
        let outcomes = [true, false, false, false, true, true, true, false];
        let curve = calibration_curve(&probs, &outcomes, 2);
        assert!(curve.expected_calibration_error() < 1e-12);
        assert_eq!(curve.bins()[0].count, 4);
        assert!((curve.bins()[0].observed_frequency - 0.25).abs() < 1e-12);
    }

    #[test]
    fn overconfident_model_has_high_ece() {
        let probs = [0.99, 0.99, 0.99, 0.99];
        let outcomes = [true, false, false, false];
        let curve = calibration_curve(&probs, &outcomes, 10);
        assert!(curve.expected_calibration_error() > 0.5);
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let probs = [0.1, 0.5, 0.9, 0.95, 0.05];
        let outcomes = [false, true, true, true, false];
        let curve = calibration_curve(&probs, &outcomes, 10);
        let total: usize = curve.histogram().iter().sum();
        assert_eq!(total, probs.len());
    }

    #[test]
    fn sharpness_is_prediction_variance() {
        let probs = [0.0, 1.0];
        let outcomes = [false, true];
        let curve = calibration_curve(&probs, &outcomes, 10);
        assert!((curve.sharpness() - 0.25).abs() < 1e-12);
        let flat = calibration_curve(&[0.5, 0.5], &outcomes, 10);
        assert_eq!(flat.sharpness(), 0.0);
    }

    #[test]
    fn edge_probabilities_land_in_terminal_bins() {
        let curve = calibration_curve(&[0.0, 1.0], &[false, true], 10);
        assert_eq!(curve.bins()[0].count, 1);
        assert_eq!(curve.bins()[9].count, 1);
    }

    #[test]
    fn bin_edges_tile_unit_interval() {
        let curve = calibration_curve(&[0.5], &[true], 7);
        assert_eq!(curve.bins()[0].lo, 0.0);
        assert_eq!(curve.bins().last().unwrap().hi, 1.0);
        for w in curve.bins().windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-12);
        }
    }
}
