//! Malformed-input robustness for the hand-rolled HTTP parser: whatever
//! bytes arrive on the socket, the server must answer a well-formed 4xx
//! (or close cleanly), never panic or wedge, and keep serving `/metrics`
//! afterwards.
//!
//! Every client half-closes its write side after sending, so the server
//! sees EOF immediately instead of waiting out its read timeout — the
//! property runs hundreds of cases in a few seconds.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use noodle_export::ExportServer;
use noodle_observe::{MonitorConfig, StreamingMonitors};
use proptest::prelude::*;

/// Sends raw bytes as one "request", half-closes, and returns whatever
/// the server answered (empty on a clean close with no response).
fn exchange(addr: std::net::SocketAddr, payload: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("server accepts connections");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(10))).unwrap();
    // The server may answer 400 and close before consuming a large
    // payload; a write error then is the clean-close outcome, not a bug.
    let _ = stream.write_all(payload);
    let _ = stream.shutdown(Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

/// A response is acceptable iff it is absent (clean close) or a complete
/// HTTP/1.1 status line with a status the server legitimately emits.
fn assert_well_formed(payload: &[u8], response: &[u8]) {
    if response.is_empty() {
        return;
    }
    let text = String::from_utf8_lossy(response);
    let status_line = text.lines().next().unwrap_or_default();
    assert!(
        status_line.starts_with("HTTP/1.1 "),
        "garbage {payload:?} produced a non-HTTP response: {status_line:?}"
    );
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line {status_line:?} for {payload:?}"));
    assert!(
        matches!(status, 200 | 400 | 404 | 405 | 503),
        "garbage {payload:?} produced unexpected status {status}"
    );
    assert!(text.contains("\r\n\r\n"), "response to {payload:?} has no header terminator");
}

/// The server must still answer a well-formed scrape after abuse.
fn assert_still_serving(addr: std::net::SocketAddr) {
    let response = exchange(addr, b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    let text = String::from_utf8_lossy(&response);
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "server wedged after malformed input: {text}");
}

proptest! {
    /// Arbitrary bytes — including NULs, invalid UTF-8 and embedded
    /// newlines — never panic the server or elicit a malformed response.
    #[test]
    fn arbitrary_bytes_never_break_the_server(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let server = shared_server();
        let response = exchange(server.addr(), &payload);
        assert_well_formed(&payload, &response);
    }

    /// Structured-but-wrong requests: random method-ish and path-ish
    /// tokens with assorted line endings still yield 4xx or a valid route.
    #[test]
    fn bogus_methods_and_paths_get_clean_answers(
        method in "[A-Za-z]{1,12}",
        path in "/[ -~]{0,64}",
        terminator in prop_oneof![Just("\r\n\r\n"), Just("\n\n"), Just("\r\n"), Just("")],
    ) {
        let server = shared_server();
        let payload = format!("{method} {path} HTTP/1.1{terminator}");
        let response = exchange(server.addr(), payload.as_bytes());
        assert_well_formed(payload.as_bytes(), &response);
    }
}

/// The deterministic rogues' gallery from the issue: oversized request
/// lines, missing CRLF terminators, partial requests, bogus methods and
/// absurd Content-Length declarations.
#[test]
fn canonical_malformed_requests() {
    let server = shared_server();
    let addr = server.addr();
    let oversized = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(32 * 1024));
    let cases: Vec<(&str, Vec<u8>, &[u16])> = vec![
        ("empty request", Vec::new(), &[400]),
        ("binary garbage", b"\xff\xfe\x00\x01\x02".to_vec(), &[400]),
        ("bare newline", b"\n".to_vec(), &[400]),
        // Truncated at the head cap: the surviving prefix still tokenizes
        // as a GET with an unknown (cut-off) path.
        ("oversized request line", oversized.into_bytes(), &[400, 404]),
        ("partial request line", b"GET /metr".to_vec(), &[404]),
        ("missing CRLF terminator", b"GET /nope HTTP/1.1\n".to_vec(), &[404]),
        ("bogus method", b"BREW /metrics HTTP/1.1\r\n\r\n".to_vec(), &[405]),
        ("method only", b"GET\r\n\r\n".to_vec(), &[400]),
        (
            "huge content-length, no body",
            b"POST /reload HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec(),
            &[405],
        ),
        (
            "content-length smaller than body",
            b"POST /x HTTP/1.1\r\nContent-Length: 1\r\n\r\nabcdef".to_vec(),
            &[405],
        ),
    ];
    for (name, payload, expected) in cases {
        let response = exchange(addr, &payload);
        assert_well_formed(&payload, &response);
        let text = String::from_utf8_lossy(&response);
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("{name}: no status in {text:?}"));
        assert!(expected.contains(&status), "{name}: expected one of {expected:?}, got {status}");
        assert_still_serving(addr);
    }
}

/// A client that connects and vanishes without sending anything must not
/// take the accept loop down with it.
#[test]
fn immediate_disconnects_are_harmless() {
    let server = shared_server();
    for _ in 0..16 {
        let stream = TcpStream::connect(server.addr()).expect("server accepts connections");
        drop(stream);
    }
    assert_still_serving(server.addr());
}

/// One server shared by every test and proptest case: abuse accumulates
/// on a single accept loop, which is exactly the production shape.
fn shared_server() -> &'static ExportServer {
    use std::sync::OnceLock;
    static SERVER: OnceLock<ExportServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        ExportServer::start("127.0.0.1:0", StreamingMonitors::new(MonitorConfig::default()), None)
            .expect("bind ephemeral port")
    })
}
