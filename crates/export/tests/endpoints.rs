//! End-to-end scrapes of a live `ExportServer` over real sockets.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use noodle_export::ExportServer;
use noodle_observe::{
    MonitorConfig, MonitorReport, PredictionRecord, SourceProbe, StreamingMonitors,
};

fn record(seq: u64, imputed: bool) -> PredictionRecord {
    PredictionRecord {
        seq,
        design: format!("alu_{seq:03}"),
        trace_id: String::new(),
        strategy: "LateFusion".into(),
        infected: false,
        probability_infected: 0.1,
        p_values: [0.9, 0.1],
        region: vec![0],
        credibility: 0.9,
        confidence: 0.9,
        uncertain: false,
        significance: 0.1,
        graph_present: true,
        tabular_present: !imputed,
        imputed_modality: imputed,
        label: Some(0),
        latency_us: 80.0,
        batch_latency_us: 80.0,
        batch_size: 1,
        sources: vec![SourceProbe {
            source: "graph".into(),
            p_values: [0.9, 0.1],
            scores: [0.05, 0.4],
        }],
    }
}

/// One full HTTP exchange; returns (status line, body).
fn scrape(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to export server");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    scrape(addr, &format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"))
}

#[test]
fn serves_all_endpoints_and_shuts_down_on_drop() {
    noodle_telemetry::set_enabled(true);
    noodle_telemetry::counter_add("endpoints_test.events", 3);
    noodle_telemetry::gauge_set("endpoints_test.level", 0.5);
    noodle_telemetry::histogram_record("endpoints_test.latency", 2.5);

    let monitors = StreamingMonitors::new(MonitorConfig::default());
    for seq in 0..5 {
        monitors.observe(&record(seq, false));
    }
    let refreshed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let refreshed_inner = std::sync::Arc::clone(&refreshed);
    let server = ExportServer::start(
        "127.0.0.1:0",
        monitors.clone(),
        Some(Box::new(move || {
            refreshed_inner.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        })),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    assert_ne!(addr.port(), 0, "port 0 resolves to the OS-assigned port");

    // /metrics: Prometheus text with our metrics, refresh hook invoked.
    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("noodle_endpoints_test_events_total 3\n"), "{body}");
    assert!(body.contains("noodle_endpoints_test_level 0.5\n"), "{body}");
    assert!(body.contains("noodle_endpoints_test_latency_bucket{le=\"+Inf\"}"), "{body}");
    assert!(refreshed.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // /monitor: the live MonitorReport, reflecting in-flight records.
    let (status, body) = get(addr, "/monitor");
    assert!(status.contains("200"), "{status}");
    let report = MonitorReport::from_json(&body).expect("monitor JSON parses");
    assert_eq!(report.records, 5);

    // New records are visible on the next scrape without restarting.
    monitors.observe(&record(5, false));
    let (_, body) = get(addr, "/monitor");
    assert_eq!(MonitorReport::from_json(&body).unwrap().records, 6);

    // /healthz: healthy stream => 200 with evidence.
    let (status, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["overall"], "healthy");
    assert!(health["monitors"].is_array());

    // Index, 404 and 405.
    let (status, body) = get(addr, "/");
    assert!(status.contains("200") && body.contains("/metrics"));
    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _) = scrape(addr, "POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(status.contains("405"), "{status}");

    drop(server);
    // The listener is gone shortly after drop; a fresh connect must fail.
    std::thread::sleep(Duration::from_millis(100));
    assert!(TcpStream::connect(addr).is_err(), "server still listening after drop");
}

#[test]
fn debug_flight_returns_a_parseable_bundle() {
    let monitors = StreamingMonitors::new(MonitorConfig::default());
    monitors.observe(&record(0, false));
    let server = ExportServer::start("127.0.0.1:0", monitors, None).unwrap();
    let (status, body) = get(server.addr(), "/debug/flight");
    assert!(status.contains("200"), "{status}");
    let bundle = noodle_observe::FlightBundle::from_json(&body).expect("bundle JSON parses");
    assert_eq!(bundle.reason, "manual");
    assert_eq!(bundle.monitor.records, 1);
}

#[test]
fn debug_trace_filters_flight_events_by_id() {
    let ctx = noodle_trace::TraceContext::mint();
    noodle_trace::flight_record(
        noodle_trace::FlightKind::Request,
        ctx.trace_id,
        ctx.span_id,
        0,
        0,
        "uart_dbg",
    );
    let monitors = StreamingMonitors::new(MonitorConfig::default());
    let server = ExportServer::start("127.0.0.1:0", monitors, None).unwrap();
    let hex = noodle_trace::format_trace_id(ctx.trace_id);

    let (status, body) = get(server.addr(), &format!("/debug/trace/{hex}"));
    assert!(status.contains("200"), "{status}");
    let value: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(value["trace_id"], hex.as_str());
    assert!(value["events"].as_array().unwrap().iter().any(|e| e["name"] == "uart_dbg"));

    // A valid id with no events is a 404; a malformed id is a 400.
    let other = noodle_trace::TraceContext::mint();
    let (status, _) = get(
        server.addr(),
        &format!("/debug/trace/{}", noodle_trace::format_trace_id(other.trace_id)),
    );
    assert!(status.contains("404"), "{status}");
    let (status, _) = get(server.addr(), "/debug/trace/not-hex");
    assert!(status.contains("400"), "{status}");
}

#[test]
fn healthz_turns_503_on_alert() {
    let config = MonitorConfig { min_samples: 5, ..MonitorConfig::default() };
    let monitors = StreamingMonitors::new(config);
    for seq in 0..30 {
        monitors.observe(&record(seq, true)); // all imputed => modality alert
    }
    let server = ExportServer::start("127.0.0.1:0", monitors, None).unwrap();
    let (status, body) = get(server.addr(), "/healthz");
    assert!(status.contains("503"), "{status}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["overall"], "alert");
}

#[test]
fn concurrent_scrapes_all_succeed() {
    let monitors = StreamingMonitors::new(MonitorConfig::default());
    let server = ExportServer::start("127.0.0.1:0", monitors.clone(), None).unwrap();
    let addr = server.addr();

    // Hammer the server from several threads while records keep flowing.
    let writer = std::thread::spawn(move || {
        for seq in 0..200 {
            monitors.observe(&record(seq, false));
        }
    });
    let scrapers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let path = ["/metrics", "/monitor", "/healthz"][i % 3];
                for _ in 0..10 {
                    let (status, _) = get(addr, path);
                    assert!(status.contains("200"), "{path}: {status}");
                }
            })
        })
        .collect();
    for s in scrapers {
        s.join().unwrap();
    }
    writer.join().unwrap();
}
