//! The alert-triggered flight recorder, end to end: a drifted audit
//! stream trips the streaming monitors into Alert, `/healthz` turns 503
//! with per-monitor evidence, and exactly one flight bundle lands on
//! disk at the transition.

use noodle_export::ExportServer;
use noodle_observe::{
    install_alert_dump, FlightBundle, Health, MonitorConfig, PredictionRecord, SourceProbe,
    StreamingMonitors,
};

fn record(seq: u64, imputed: bool) -> PredictionRecord {
    PredictionRecord {
        seq,
        design: format!("uart_{seq:03}"),
        trace_id: noodle_trace::format_trace_id(0xfee1_dead_0000_0000 | seq),
        strategy: "LateFusion".into(),
        infected: false,
        probability_infected: 0.1,
        p_values: [0.9, 0.1],
        region: vec![0],
        credibility: 0.9,
        confidence: 0.9,
        uncertain: false,
        significance: 0.1,
        graph_present: true,
        tabular_present: !imputed,
        imputed_modality: imputed,
        label: Some(0),
        latency_us: 80.0,
        batch_latency_us: 80.0,
        batch_size: 1,
        sources: vec![SourceProbe {
            source: "graph".into(),
            p_values: [0.9, 0.1],
            scores: [0.05, 0.4],
        }],
    }
}

fn get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to export server");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status = response.lines().next().unwrap_or_default().to_string();
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn drifted_stream_trips_healthz_and_writes_exactly_one_bundle() {
    let dir = std::env::temp_dir().join(format!(
        "noodle-alert-flight-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos())
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let config = MonitorConfig { min_samples: 5, ..MonitorConfig::default() };
    let monitors = StreamingMonitors::new(config);
    install_alert_dump(&monitors, &dir);

    // A healthy prefix, then a drifted tail: every record suddenly has an
    // imputed modality, which drives the modality monitor into Alert.
    for seq in 0..10 {
        monitors.observe(&record(seq, false));
    }
    for seq in 10..40 {
        monitors.observe(&record(seq, true));
    }
    assert_eq!(monitors.overall(), Health::Alert);

    // /healthz turns 503 and carries per-monitor evidence.
    let server = ExportServer::start("127.0.0.1:0", monitors.clone(), None).unwrap();
    let (status, body) = get(server.addr(), "/healthz");
    assert!(status.contains("503"), "{status}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(health["overall"], "alert");
    assert!(
        health["monitors"].as_array().unwrap().iter().any(
            |m| m["health"] == "alert" && m["evidence"].as_str().is_some_and(|e| !e.is_empty())
        ),
        "{body}"
    );

    // Exactly one bundle was written, at the Healthy→Alert transition —
    // staying in Alert for 29 more records must not write more.
    let bundles: Vec<_> = std::fs::read_dir(&dir)
        .expect("bundle directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("flight-"))
        })
        .collect();
    assert_eq!(bundles.len(), 1, "{bundles:?}");
    let bundle = FlightBundle::from_json(&std::fs::read_to_string(&bundles[0]).unwrap()).unwrap();
    assert_eq!(bundle.reason, "alert");
    assert_eq!(bundle.monitor.overall, Health::Alert);
    assert!(bundle.monitor.monitors.iter().any(|m| m.health == Health::Alert));

    std::fs::remove_dir_all(&dir).unwrap();
}
