//! # noodle-export
//!
//! The live observability plane for the NOODLE pipeline: a background,
//! dependency-free (std `TcpListener` + hand-rolled HTTP/1.1) exposition
//! server that makes a running `train`/`detect` process scrapeable:
//!
//! * `GET /metrics` — Prometheus text exposition rendered from the live
//!   `noodle-telemetry` registry (counters, gauges, histogram buckets and
//!   quantiles), via a lock-light [`noodle_telemetry::metrics_snapshot`];
//! * `GET /monitor` — the current
//!   [`MonitorReport`](noodle_observe::MonitorReport) JSON from a shared
//!   [`StreamingMonitors`](noodle_observe::StreamingMonitors) engine that
//!   the detector updates in-flight;
//! * `GET /healthz` — aggregated health with per-monitor evidence:
//!   HTTP 200 while `Healthy`/`Warn`, 503 on `Alert`, so the endpoint
//!   plugs directly into load-balancer and orchestrator health checks;
//! * `GET /debug/flight` — a [`noodle_observe::FlightBundle`] captured on
//!   demand (recent flight-recorder events, live metrics, monitor
//!   verdicts);
//! * `GET /debug/trace/<id>` — the flight-recorder events belonging to
//!   one 16-hex-digit trace id, for joining a single request across
//!   audit log, Chrome trace and ring.
//!
//! Hosts that embed the server (the `noodle serve` daemon) can register
//! an [`AdminFn`] via [`ExportServer::start_with_admin`] to answer
//! non-GET admin requests — `POST /reload`, `POST /drain` — on the same
//! port, reusing the same bounded parsing and timeouts.
//!
//! The server is strictly pay-for-what-you-use: nothing binds, spawns or
//! allocates unless [`ExportServer::start`] is called (the CLI only does
//! so under `--observe-addr`), and dropping the server joins the accept
//! thread. One short-lived connection per request (`Connection: close`),
//! bounded request heads, and read/write timeouts keep the accept loop
//! robust against stalled or misbehaving scrapers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod http;
mod prom;

pub use http::{AdminFn, ExportServer, RefreshFn};
pub use prom::{escape_label_value, render_prometheus, sanitize_metric_name};
