//! Prometheus text-exposition rendering (format version 0.0.4) from a
//! [`MetricsSnapshot`].

use noodle_telemetry::{HistogramSnapshot, MetricsSnapshot};

/// Maps a dotted telemetry metric name (`compute.pool_utilization`) to a
/// Prometheus-legal one (`noodle_compute_pool_utilization`): every
/// non-alphanumeric character becomes `_` and everything is prefixed with
/// `noodle_` (which also guarantees the name never starts with a digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("noodle_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value the way the exposition format spells specials.
fn sample(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

fn render_histogram(out: &mut String, base: &str, hist: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {base} histogram\n"));
    for (bound, cumulative) in hist.cumulative_buckets() {
        let le = if bound.is_finite() { sample(bound) } else { "+Inf".to_string() };
        out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{base}_sum {}\n", sample(hist.sum)));
    out.push_str(&format!("{base}_count {}\n", hist.count));
    if let Some(q) = &hist.quantiles {
        for (suffix, value) in [("p50", q.p50), ("p95", q.p95), ("p99", q.p99)] {
            out.push_str(&format!("# TYPE {base}_{suffix} gauge\n"));
            out.push_str(&format!("{base}_{suffix} {}\n", sample(value)));
        }
    }
}

/// Renders a full `/metrics` payload: counters as `*_total`, gauges
/// verbatim, histograms as cumulative `_bucket{le=...}` series ending at
/// `+Inf` plus `_sum`/`_count`, and exact nearest-rank quantiles as
/// companion `_p50`/`_p95`/`_p99` gauges.
///
/// The snapshot is taken by the caller, so one snapshot can serve one
/// scrape atomically — every series in the payload reflects the same
/// instant.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let base = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {base}_total counter\n"));
        out.push_str(&format!("{base}_total {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let base = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {base} gauge\n"));
        out.push_str(&format!("{base} {}\n", sample(*value)));
    }
    for (name, hist) in &snapshot.histograms {
        render_histogram(&mut out, &sanitize_metric_name(name), hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_telemetry::Histogram;

    fn snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("audit.records".into(), 42);
        snap.gauges.insert("compute.pool_utilization".into(), 0.75);
        let mut h = Histogram::new(&[1.0, 5.0]);
        for v in [0.5, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        snap.histograms.insert("detect.latency_us".into(), h.snapshot());
        snap
    }

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(
            sanitize_metric_name("compute.pool_utilization"),
            "noodle_compute_pool_utilization"
        );
        assert_eq!(sanitize_metric_name("nn.samples_per_sec"), "noodle_nn_samples_per_sec");
    }

    #[test]
    fn counters_get_the_total_suffix() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE noodle_audit_records_total counter\n"));
        assert!(text.contains("noodle_audit_records_total 42\n"));
    }

    #[test]
    fn gauges_render_verbatim() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE noodle_compute_pool_utilization gauge\n"));
        assert!(text.contains("noodle_compute_pool_utilization 0.75\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE noodle_detect_latency_us histogram\n"));
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"5\"} 3\n"));
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("noodle_detect_latency_us_count 4\n"));
        assert!(text.contains("noodle_detect_latency_us_sum 15.5\n"));
        assert!(text.contains("noodle_detect_latency_us_p95 "));
    }

    #[test]
    fn every_line_is_a_comment_or_a_sample() {
        let text = render_prometheus(&snapshot());
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
            } else {
                let (name, value) = line.rsplit_once(' ').expect("sample has a value");
                assert!(name.starts_with("noodle_"), "bad name: {line}");
                assert!(
                    value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                    "bad value: {line}"
                );
            }
        }
    }

    #[test]
    fn special_values_use_exposition_spelling() {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("weird".into(), f64::NAN);
        let text = render_prometheus(&snap);
        assert!(text.contains("noodle_weird NaN\n"));
    }
}
