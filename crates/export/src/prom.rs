//! Prometheus text-exposition rendering (format version 0.0.4) from a
//! [`MetricsSnapshot`].

use noodle_telemetry::{HistogramSnapshot, MetricsSnapshot};

/// Maps a dotted telemetry metric name (`compute.pool_utilization`) to a
/// Prometheus-legal one (`noodle_compute_pool_utilization`): every
/// non-alphanumeric character becomes `_` and everything is prefixed with
/// `noodle_` (which also guarantees the name never starts with a digit).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("noodle_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline must be escaped inside the quoted value.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value the way the exposition format spells specials.
fn sample(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

fn render_histogram(out: &mut String, base: &str, hist: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {base} histogram\n"));
    for (i, (bound, cumulative)) in hist.cumulative_buckets().into_iter().enumerate() {
        let le = if bound.is_finite() { sample(bound) } else { "+Inf".to_string() };
        out.push_str(&format!("{base}_bucket{{le=\"{le}\"}} {cumulative}"));
        // OpenMetrics exemplar: the most recent traced observation in
        // this bucket, so a latency outlier links straight to its trace.
        if let Some(Some(ex)) = hist.exemplars.get(i) {
            out.push_str(&format!(" # {{trace_id=\"{:016x}\"}} {}", ex.trace_id, sample(ex.value)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{base}_sum {}\n", sample(hist.sum)));
    out.push_str(&format!("{base}_count {}\n", hist.count));
    if let Some(q) = &hist.quantiles {
        for (suffix, value) in [("p50", q.p50), ("p95", q.p95), ("p99", q.p99)] {
            out.push_str(&format!("# TYPE {base}_{suffix} gauge\n"));
            out.push_str(&format!("{base}_{suffix} {}\n", sample(value)));
        }
    }
}

/// Renders a full `/metrics` payload: a `noodle_build_info` identity
/// series and process-uptime gauge, counters as `*_total`, gauges
/// verbatim, histograms as cumulative `_bucket{le=...}` series ending at
/// `+Inf` (each carrying an OpenMetrics `# {trace_id="..."} value`
/// exemplar when a traced observation landed in the bucket) plus
/// `_sum`/`_count`, and exact nearest-rank quantiles as companion
/// `_p50`/`_p95`/`_p99` gauges.
///
/// The snapshot is taken by the caller, so one snapshot can serve one
/// scrape atomically — every series in the payload reflects the same
/// instant.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE noodle_build_info gauge\n");
    out.push_str(&format!(
        "noodle_build_info{{version=\"{}\",git_sha=\"{}\"}} 1\n",
        escape_label_value(env!("CARGO_PKG_VERSION")),
        escape_label_value(env!("NOODLE_GIT_SHA")),
    ));
    out.push_str("# TYPE noodle_process_uptime_seconds gauge\n");
    out.push_str(&format!(
        "noodle_process_uptime_seconds {}\n",
        sample(noodle_trace::now_ns() as f64 / 1e9)
    ));
    for (name, value) in &snapshot.counters {
        let base = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {base}_total counter\n"));
        out.push_str(&format!("{base}_total {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let base = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {base} gauge\n"));
        out.push_str(&format!("{base} {}\n", sample(*value)));
    }
    for (name, hist) in &snapshot.histograms {
        render_histogram(&mut out, &sanitize_metric_name(name), hist);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_telemetry::Histogram;

    fn snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("audit.records".into(), 42);
        snap.gauges.insert("compute.pool_utilization".into(), 0.75);
        let mut h = Histogram::new(&[1.0, 5.0]);
        for v in [0.5, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        snap.histograms.insert("detect.latency_us".into(), h.snapshot());
        snap
    }

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(
            sanitize_metric_name("compute.pool_utilization"),
            "noodle_compute_pool_utilization"
        );
        assert_eq!(sanitize_metric_name("nn.samples_per_sec"), "noodle_nn_samples_per_sec");
    }

    #[test]
    fn counters_get_the_total_suffix() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE noodle_audit_records_total counter\n"));
        assert!(text.contains("noodle_audit_records_total 42\n"));
    }

    #[test]
    fn gauges_render_verbatim() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE noodle_compute_pool_utilization gauge\n"));
        assert!(text.contains("noodle_compute_pool_utilization 0.75\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render_prometheus(&snapshot());
        assert!(text.contains("# TYPE noodle_detect_latency_us histogram\n"));
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"5\"} 3\n"));
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("noodle_detect_latency_us_count 4\n"));
        assert!(text.contains("noodle_detect_latency_us_sum 15.5\n"));
        assert!(text.contains("noodle_detect_latency_us_p95 "));
    }

    #[test]
    fn every_line_is_a_comment_or_a_sample() {
        let text = render_prometheus(&snapshot());
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            // Strip an OpenMetrics exemplar suffix before checking the
            // sample grammar; the suffix has its own fixed shape.
            let (line, exemplar) = match line.split_once(" # ") {
                Some((sample, ex)) => (sample, Some(ex)),
                None => (line, None),
            };
            if let Some(ex) = exemplar {
                let (labels, value) = ex.rsplit_once(' ').expect("exemplar has a value");
                assert!(labels.starts_with("{trace_id=\""), "bad exemplar: {ex}");
                assert!(labels.ends_with("\"}"), "bad exemplar: {ex}");
                assert!(value.parse::<f64>().is_ok(), "bad exemplar value: {ex}");
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(name.starts_with("noodle_"), "bad name: {line}");
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad value: {line}"
            );
        }
    }

    #[test]
    fn special_values_use_exposition_spelling() {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("weird".into(), f64::NAN);
        let text = render_prometheus(&snap);
        assert!(text.contains("noodle_weird NaN\n"));
    }

    #[test]
    fn build_info_and_uptime_lead_the_payload() {
        let text = render_prometheus(&MetricsSnapshot::default());
        assert!(text.starts_with("# TYPE noodle_build_info gauge\n"));
        assert!(text.contains("noodle_build_info{version=\""));
        assert!(text.contains(",git_sha=\""));
        assert!(text.contains("} 1\n"));
        let uptime_line = text
            .lines()
            .find(|l| l.starts_with("noodle_process_uptime_seconds "))
            .expect("uptime gauge present");
        let value: f64 = uptime_line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(value >= 0.0);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn traced_buckets_carry_an_exemplar() {
        let ctx = noodle_trace::TraceContext::mint();
        let mut h = Histogram::new(&[1.0, 5.0]);
        h.record(0.5); // untraced bucket: no exemplar
        {
            let _guard = noodle_trace::set_current(ctx);
            h.record(2.0);
        }
        let mut snap = MetricsSnapshot::default();
        snap.histograms.insert("detect.latency_us".into(), h.snapshot());
        let text = render_prometheus(&snap);
        let hex = noodle_trace::format_trace_id(ctx.trace_id);
        assert!(
            text.contains(&format!(
                "noodle_detect_latency_us_bucket{{le=\"5\"}} 2 # {{trace_id=\"{hex}\"}} 2\n"
            )),
            "{text}"
        );
        assert!(text.contains("noodle_detect_latency_us_bucket{le=\"1\"} 1\n"), "{text}");
    }
}
