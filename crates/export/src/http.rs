//! The background exposition server: bounded accept loop, hand-rolled
//! HTTP/1.1, one short-lived connection per scrape.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use noodle_observe::{Health, StreamingMonitors};

use crate::prom::render_prometheus;

/// How long the accept loop sleeps between polls when no connection is
/// pending. Bounds shutdown latency; scrape latency is unaffected once a
/// connection is accepted.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection read/write timeout. A stalled scraper cannot wedge the
/// accept loop for longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Maximum bytes of request head we read before answering. Scrape
/// requests are one line plus a few headers; anything larger is rejected.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request-body bytes we read for admin endpoints. Reload/drain
/// carry empty or tiny JSON bodies; anything larger is truncated.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// A hook run right before each `/metrics` render, so gauges that are
/// normally only computed at end-of-run (e.g. `compute.pool_utilization`)
/// can be refreshed to live values at scrape time.
pub type RefreshFn = Box<dyn Fn() + Send + Sync>;

/// An admin hook consulted before the built-in GET routes: receives
/// `(method, path, body)` and returns `Some((status, body))` to answer
/// the request itself (e.g. `POST /reload` on the serve daemon), `None`
/// to fall through to the built-in routing (404/405 for unknowns).
/// Response bodies starting with `{` are served as `application/json`.
pub type AdminFn = Box<dyn Fn(&str, &str, &str) -> Option<(u16, String)> + Send + Sync>;

/// A running exposition server. Binds eagerly (so address errors surface
/// at startup), serves from a single background thread, and joins that
/// thread on drop.
#[derive(Debug)]
pub struct ExportServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ExportServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port `0` for ephemeral) and
    /// starts serving `/metrics`, `/monitor`, `/healthz`, `/debug/flight`
    /// and `/debug/trace/<id>`.
    ///
    /// `monitors` is typically a clone of the engine attached to the
    /// detector's audit path, so `/monitor` and `/healthz` reflect every
    /// prediction the moment it is emitted. `refresh` (if any) runs before
    /// each `/metrics` render.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` when the address cannot be bound.
    pub fn start(
        addr: &str,
        monitors: StreamingMonitors,
        refresh: Option<RefreshFn>,
    ) -> std::io::Result<Self> {
        Self::start_with_admin(addr, monitors, refresh, None)
    }

    /// Like [`ExportServer::start`], additionally consulting `admin` for
    /// every request before the built-in GET routes. The serve daemon uses
    /// this to answer `POST /reload` and `POST /drain` on the same port
    /// that `/metrics` and `/healthz` live on.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` when the address cannot be bound.
    pub fn start_with_admin(
        addr: &str,
        monitors: StreamingMonitors,
        refresh: Option<RefreshFn>,
        admin: Option<AdminFn>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("noodle-export".into())
            .spawn(move || serve(listener, monitors, refresh, admin, flag))?;
        Ok(Self { addr, shutdown, handle: Some(handle) })
    }

    /// The actually-bound address (resolves port `0` to the ephemeral
    /// port the OS picked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ExportServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve(
    listener: TcpListener,
    monitors: StreamingMonitors,
    refresh: Option<RefreshFn>,
    admin: Option<AdminFn>,
    shutdown: Arc<AtomicBool>,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, &monitors, refresh.as_deref(), admin.as_deref());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    monitors: &StreamingMonitors,
    refresh: Option<&(dyn Fn() + Send + Sync)>,
    admin: Option<&(dyn Fn(&str, &str, &str) -> Option<(u16, String)> + Send + Sync)>,
) -> std::io::Result<()> {
    // Accepted sockets inherit the listener's non-blocking mode on some
    // platforms; per-connection I/O is blocking with hard timeouts.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let (head, body) = read_request(&mut stream)?;
    let response = match parse_request_line(&head) {
        Some((method, path)) => {
            let body = String::from_utf8_lossy(&body);
            match admin.and_then(|a| a(method, path, &body)) {
                Some((status, body)) => {
                    let content_type = if body.trim_start().starts_with('{') {
                        "application/json"
                    } else {
                        "text/plain; charset=utf-8"
                    };
                    respond(status, reason_for(status), content_type, &body)
                }
                None if method == "GET" => route(path, monitors, refresh),
                None => respond(
                    405,
                    "Method Not Allowed",
                    "text/plain; charset=utf-8",
                    "method not supported on this endpoint\n",
                ),
            }
        }
        None => respond(400, "Bad Request", "text/plain; charset=utf-8", "malformed request\n"),
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads one request: the head up to `\r\n\r\n` (capped at
/// [`MAX_HEAD_BYTES`]) plus as much of the declared `Content-Length` body
/// as fits under [`MAX_BODY_BYTES`]. Returns `(head, body)`; a request
/// with no terminator yields everything read as head (the caller answers
/// 400 when the request line is garbage).
fn read_request(stream: &mut TcpStream) -> std::io::Result<(Vec<u8>, Vec<u8>)> {
    let mut data = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    let mut header_end: Option<usize> = None;
    loop {
        if header_end.is_none() {
            header_end = data.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
        }
        if let Some(end) = header_end {
            let want = content_length(&data[..end]).min(MAX_BODY_BYTES);
            if data.len() - end >= want {
                break;
            }
        } else if data.len() >= MAX_HEAD_BYTES {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => data.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    match header_end {
        Some(end) => {
            let body = data.split_off(end);
            Ok((data, body))
        }
        None => Ok((data, Vec::new())),
    }
}

/// The declared `Content-Length` of a request head, 0 when absent or
/// malformed.
fn content_length(head: &[u8]) -> usize {
    let text = String::from_utf8_lossy(head);
    text.lines()
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, value)| value.trim().parse().ok())
        .unwrap_or(0)
}

/// Canonical reason phrase for the status codes admin hooks return.
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Extracts `(method, path)` from the request line, dropping any query
/// string. Returns `None` on garbage.
fn parse_request_line(head: &[u8]) -> Option<(&str, &str)> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

fn route(
    path: &str,
    monitors: &StreamingMonitors,
    refresh: Option<&(dyn Fn() + Send + Sync)>,
) -> String {
    match path {
        "/metrics" => {
            if let Some(refresh) = refresh {
                refresh();
            }
            let body = render_prometheus(&noodle_telemetry::metrics_snapshot());
            respond(200, "OK", "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/monitor" => {
            let mut body = monitors.report().to_json();
            body.push('\n');
            respond(200, "OK", "application/json", &body)
        }
        "/healthz" => {
            let overall = monitors.overall();
            let body = serde_json::json!({
                "overall": overall,
                "records": monitors.records(),
                "monitors": monitors.statuses(),
            });
            let mut body = serde_json::to_string_pretty(&body).unwrap_or_default();
            body.push('\n');
            if overall == Health::Alert {
                respond(503, "Service Unavailable", "application/json", &body)
            } else {
                respond(200, "OK", "application/json", &body)
            }
        }
        "/debug/flight" => {
            let bundle = noodle_observe::FlightBundle::capture("manual", monitors.report());
            let mut body = bundle.to_json();
            body.push('\n');
            respond(200, "OK", "application/json", &body)
        }
        _ if path.starts_with("/debug/trace/") => {
            let id = &path["/debug/trace/".len()..];
            match noodle_trace::parse_trace_id(id) {
                Some(parsed) => {
                    let hex = noodle_trace::format_trace_id(parsed);
                    let events: Vec<_> = noodle_trace::flight_snapshot()
                        .into_iter()
                        .filter(|e| e.trace_id == hex)
                        .collect();
                    if events.is_empty() {
                        respond(
                            404,
                            "Not Found",
                            "text/plain; charset=utf-8",
                            "no flight-recorder events for that trace id\n",
                        )
                    } else {
                        let body = serde_json::json!({ "trace_id": hex, "events": events });
                        let mut body = serde_json::to_string_pretty(&body).unwrap_or_default();
                        body.push('\n');
                        respond(200, "OK", "application/json", &body)
                    }
                }
                None => respond(
                    400,
                    "Bad Request",
                    "text/plain; charset=utf-8",
                    "trace id must be 1-16 hex digits\n",
                ),
            }
        }
        "/" => respond(
            200,
            "OK",
            "text/plain; charset=utf-8",
            "noodle live observability\n\n/metrics  Prometheus text exposition\n/monitor  MonitorReport JSON\n/healthz  aggregated health (503 on alert)\n/debug/flight  flight-recorder bundle, captured now\n/debug/trace/<id>  flight events for one trace id\n",
        ),
        _ => respond(404, "Not Found", "text/plain; charset=utf-8", "no such endpoint\n"),
    }
}

fn respond(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parsing_handles_queries_and_garbage() {
        assert_eq!(parse_request_line(b"GET /metrics HTTP/1.1\r\n"), Some(("GET", "/metrics")));
        assert_eq!(
            parse_request_line(b"GET /healthz?verbose=1 HTTP/1.1\r\n"),
            Some(("GET", "/healthz"))
        );
        assert_eq!(parse_request_line(b"POST /metrics HTTP/1.1\r\n"), Some(("POST", "/metrics")));
        assert_eq!(parse_request_line(b"\xff\xfe"), None);
        assert_eq!(parse_request_line(b""), None);
    }

    #[test]
    fn content_length_parsing_is_lenient() {
        assert_eq!(content_length(b"POST /reload HTTP/1.1\r\nContent-Length: 12\r\n\r\n"), 12);
        assert_eq!(content_length(b"POST /x HTTP/1.1\r\ncontent-length:  7 \r\n\r\n"), 7);
        assert_eq!(content_length(b"GET / HTTP/1.1\r\n\r\n"), 0);
        assert_eq!(content_length(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"), 0);
    }

    #[test]
    fn responses_carry_length_and_close() {
        let r = respond(200, "OK", "text/plain", "hi");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 2\r\n"));
        assert!(r.contains("Connection: close\r\n"));
        assert!(r.ends_with("\r\n\r\nhi"));
    }
}
