//! Embeds the short git SHA at build time so `/metrics` can expose a
//! `noodle_build_info` series identifying exactly what is running.

use std::process::Command;

fn main() {
    let sha = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=NOODLE_GIT_SHA={sha}");
    // Re-run when HEAD moves so the embedded SHA stays honest; harmless
    // if the path does not exist (e.g. building from a source tarball).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
