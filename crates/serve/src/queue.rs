//! The bounded, per-client-fair admission queue.
//!
//! A ring of per-client FIFO queues under one mutex: push appends to the
//! submitting client's queue (creating it on first use); pop takes the
//! oldest item of the ring's front client and rotates that client to the
//! back. A greedy client that floods the queue therefore gets exactly one
//! slot per rotation while it shares the daemon — round-robin fairness —
//! and each client's own requests stay in FIFO order.
//!
//! Admission is bounded: pushes beyond `cap` (or after [`FairQueue::drain`])
//! are refused and handed back to the caller to shed. Draining is
//! one-way: once set, the queue refuses new work and [`FairQueue::pop_until`]
//! reports [`PopResult::Drained`] when it runs empty, which is the
//! batcher's signal to exit with zero accepted-but-unanswered requests.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Outcome of one bounded-wait pop.
#[derive(Debug)]
pub(crate) enum PopResult<T> {
    /// An item, taken round-robin across clients.
    Item(T),
    /// The deadline passed with the queue still empty.
    TimedOut,
    /// The queue is draining and empty: no item will ever arrive again.
    Drained,
}

struct QueueState<T> {
    /// Ring of (client id, that client's FIFO). Entries exist only while
    /// non-empty, so the front always has an item when `len > 0`.
    clients: VecDeque<(u64, VecDeque<T>)>,
    len: usize,
    draining: bool,
}

/// A bounded multi-producer queue with per-client round-robin fairness.
pub(crate) struct FairQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    cap: usize,
}

impl<T> FairQueue<T> {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            state: Mutex::new(QueueState { clients: VecDeque::new(), len: 0, draining: false }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state.lock().expect("serve queue poisoned")
    }

    /// Admits one item for `client`, or hands it back when the queue is
    /// full or draining (the caller sheds it).
    pub(crate) fn push(&self, client: u64, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.draining || state.len >= self.cap {
            return Err(item);
        }
        state.len += 1;
        match state.clients.iter_mut().find(|(c, _)| *c == client) {
            Some((_, ring)) => ring.push_back(item),
            None => {
                let mut ring = VecDeque::new();
                ring.push_back(item);
                state.clients.push_back((client, ring));
            }
        }
        noodle_telemetry::gauge_set("serve.queue_depth", state.len as f64);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Waits until an item is available (round-robin across clients), the
    /// deadline passes, or the queue drains empty.
    pub(crate) fn pop_until(&self, deadline: Instant) -> PopResult<T> {
        let mut state = self.lock();
        loop {
            if state.len > 0 {
                let (client, mut ring) =
                    state.clients.pop_front().expect("len > 0 implies a client entry");
                let item = ring.pop_front().expect("client entries are non-empty");
                if !ring.is_empty() {
                    state.clients.push_back((client, ring));
                }
                state.len -= 1;
                noodle_telemetry::gauge_set("serve.queue_depth", state.len as f64);
                return PopResult::Item(item);
            }
            if state.draining {
                return PopResult::Drained;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopResult::TimedOut;
            }
            let (guard, _) =
                self.available.wait_timeout(state, deadline - now).expect("serve queue poisoned");
            state = guard;
        }
    }

    /// Flips the queue into draining mode: pushes are refused from now
    /// on, and pops report [`PopResult::Drained`] once the backlog is
    /// flushed. Idempotent.
    pub(crate) fn drain(&self) {
        self.lock().draining = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub(crate) fn depth(&self) -> usize {
        self.lock().len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pop_now<T>(q: &FairQueue<T>) -> PopResult<T> {
        q.pop_until(Instant::now())
    }

    #[test]
    fn round_robin_interleaves_a_greedy_and_a_slow_client() {
        let q = FairQueue::new(16);
        for i in 0..6 {
            q.push(1, format!("greedy-{i}")).unwrap();
        }
        q.push(2, "slow-0".to_string()).unwrap();
        q.push(2, "slow-1".to_string()).unwrap();
        let mut order = Vec::new();
        while let PopResult::Item(item) = pop_now(&q) {
            order.push(item);
        }
        // Client 2's first request is served right after client 1's first,
        // despite client 1 having queued six ahead of it; per-client FIFO
        // order is preserved.
        assert_eq!(
            order,
            vec![
                "greedy-0", "slow-0", "greedy-1", "slow-1", "greedy-2", "greedy-3", "greedy-4",
                "greedy-5"
            ]
        );
    }

    #[test]
    fn pushes_beyond_cap_are_refused() {
        let q = FairQueue::new(2);
        q.push(1, 1).unwrap();
        q.push(2, 2).unwrap();
        assert_eq!(q.push(1, 3), Err(3));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn drain_refuses_new_work_and_flushes_the_backlog() {
        let q = FairQueue::new(8);
        q.push(1, "queued").unwrap();
        q.drain();
        assert_eq!(q.push(1, "late"), Err("late"));
        assert!(matches!(pop_now(&q), PopResult::Item(i) if i == "queued"));
        assert!(matches!(pop_now(&q), PopResult::Drained));
    }

    #[test]
    fn pop_waits_for_a_push_across_threads() {
        let q = std::sync::Arc::new(FairQueue::new(4));
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.push(9, 42u32).unwrap();
            })
        };
        let got = q.pop_until(Instant::now() + Duration::from_secs(5));
        producer.join().unwrap();
        assert!(matches!(got, PopResult::Item(42)));

        // And an empty queue times out rather than hanging.
        let got = q.pop_until(Instant::now() + Duration::from_millis(10));
        assert!(matches!(got, PopResult::TimedOut));
    }
}
