//! The JSONL wire protocol of the serving daemon.
//!
//! One JSON object per line in each direction. Clients may pipeline:
//! responses are correlated by the echoed `id` (or `design`), not by
//! arrival order — shed/error answers are written at admission time and
//! can overtake verdicts for earlier submissions.

use serde::{Deserialize, Serialize};

/// One submission line: a Verilog design to screen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Design identifier, echoed back and stamped into audit records.
    pub design: String,
    /// Verilog source text.
    pub source: String,
    /// Optional ground-truth label (0 = TF, 1 = TI) for the coverage and
    /// Brier monitors.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<usize>,
    /// Optional client-chosen correlation id, echoed verbatim in the
    /// response.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub id: Option<u64>,
}

/// One response line, tagged by `type`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ServeResponse {
    /// The calibrated verdict for one admitted request.
    Verdict {
        /// Echo of the request's correlation id, when one was sent.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<u64>,
        /// Echo of the request's design identifier.
        design: String,
        /// Trace id (16 lowercase hex digits) minted at admission; greps
        /// across the audit log, `/metrics` exemplars and
        /// `/debug/trace/<id>`.
        trace_id: String,
        /// The hedged point decision.
        infected: bool,
        /// Normalized probability of infection.
        probability_infected: f64,
        /// Final per-class Mondrian p-values.
        p_values: [f64; 2],
        /// Classes in the prediction region at the serving ε.
        region: Vec<usize>,
        /// Credibility of the decision (largest p-value).
        credibility: f64,
        /// Confidence of the decision (1 − second-largest p-value).
        confidence: f64,
        /// Whether the region contains both classes.
        uncertain: bool,
        /// Time spent queued before batch formation, in microseconds.
        queue_us: f64,
        /// Wall time of the enclosing inference micro-batch, µs.
        infer_us: f64,
        /// Admission-to-response latency, µs.
        e2e_us: f64,
        /// Number of requests in the micro-batch that served this one.
        batch_size: usize,
    },
    /// Admission refused (429-style): the queue is full or the daemon is
    /// draining. The request was not processed; retry after the hint.
    Shed {
        /// Echo of the request's correlation id, when one was sent.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<u64>,
        /// Echo of the request's design identifier.
        design: String,
        /// Why admission was refused: `"queue full"`, `"draining"` or
        /// `"too many clients"`.
        reason: String,
        /// Suggested backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The request was admitted or parsed but could not be answered with
    /// a verdict.
    Error {
        /// Echo of the request's correlation id, when one was sent.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        id: Option<u64>,
        /// Echo of the request's design identifier (empty when the line
        /// failed to parse).
        design: String,
        /// Human-readable failure description.
        error: String,
    },
}

impl ServeResponse {
    /// Serializes to one newline-terminated JSONL line.
    pub fn to_line(&self) -> String {
        let mut line = serde_json::to_string(self).unwrap_or_else(|_| {
            r#"{"type":"error","design":"","error":"response serialization failed"}"#.to_string()
        });
        line.push('\n');
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_and_default_optionals() {
        let req = ServeRequest {
            design: "alu_tf_001".into(),
            source: "module m; endmodule".into(),
            label: Some(0),
            id: Some(7),
        };
        let json = serde_json::to_string(&req).unwrap();
        let restored: ServeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, restored);

        let bare: ServeRequest =
            serde_json::from_str(r#"{"design":"x","source":"module x; endmodule"}"#).unwrap();
        assert_eq!(bare.label, None);
        assert_eq!(bare.id, None);
    }

    #[test]
    fn responses_are_tagged_one_line_json() {
        let shed = ServeResponse::Shed {
            id: None,
            design: "x".into(),
            reason: "queue full".into(),
            retry_after_ms: 50,
        };
        let line = shed.to_line();
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        let value: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(value["type"], "shed");
        assert_eq!(value["retry_after_ms"], 50);
        assert!(value.get("id").is_none(), "absent id is omitted");

        let restored: ServeResponse = serde_json::from_str(&line).unwrap();
        assert_eq!(restored, shed);
    }
}
