//! `noodle-serve`: the long-running NOODLE detection daemon.
//!
//! A std-only serving layer over [`noodle_core::NoodleDetector`]: clients
//! connect over TCP and submit Verilog designs as JSONL
//! ([`ServeRequest`] in, [`ServeResponse`] out, one object per line).
//! Submissions from all connections funnel through one bounded,
//! per-client-fair admission queue into the existing `detect_batch`
//! micro-batcher: a batch closes at `--batch` items or
//! `--batch-deadline-ms` after its first item, whichever comes first, so
//! light load pays at most one deadline of extra latency while heavy
//! load amortizes inference across full batches.
//!
//! Every request gets a [`noodle_trace::TraceContext`] minted at
//! admission and carried through queueing, batch formation, inference,
//! audit and the response line — so one id greps across the client's
//! verdict, the audit JSONL, `/metrics` exemplars and
//! `/debug/trace/<id>`. The engine records the full lifecycle in live
//! histograms (`serve.queue_us`, `serve.batch_wait_us`,
//! `serve.infer_us`, `serve.e2e_us`) and gauges (`serve.queue_depth`,
//! `serve.inflight`, `serve.clients`, `serve.shed_total`), and feeds
//! per-request latencies and outcomes to the
//! [`noodle_observe`] SLO monitors when wired.
//!
//! Operational controls: bounded admission with 429-style shedding
//! ([`ServeResponse::Shed`] with a retry hint), model hot-swap between
//! batches ([`ServeController::request_reload`], typically from `SIGHUP`
//! or `POST /reload`), and graceful drain
//! ([`ServeController::request_drain`]) that answers every accepted
//! request before the engine exits. The [`signals`] module holds the
//! workspace's only `unsafe` block: raw `signal(2)` registration whose
//! handlers do nothing but set atomics.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod proto;
mod queue;
pub mod signals;

pub use engine::{ModelLoader, ServeConfig, ServeController, ServeEngine, ServeStats};
pub use proto::{ServeRequest, ServeResponse};
