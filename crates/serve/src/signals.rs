//! Minimal signal plumbing for the daemon and the CLI linger path.
//!
//! Handlers only set atomics (the only thing that is async-signal-safe);
//! the serve loop and the interruptible linger sleep poll them. This is
//! the one place in the workspace that needs `unsafe` (the raw
//! `signal(2)` registration), which is why it lives in this crate and
//! not in `noodle-export`/`noodle-observe` (both `forbid(unsafe_code)`).

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

static RELOAD: AtomicBool = AtomicBool::new(false);
static SHUTDOWNS: AtomicU64 = AtomicU64::new(0);
static INSTALL: Once = Once::new();

/// Installs the process signal handlers (idempotent):
///
/// - `SIGHUP` → request a model hot-swap (see [`take_reload`]);
/// - `SIGINT`/`SIGTERM` → request a graceful drain (see
///   [`shutdown_requested`]); repeated signals increment a counter so
///   callers can escalate to a hard exit.
///
/// On non-Unix targets this is a no-op and the flags only change via
/// [`request_shutdown`]/[`request_reload`].
pub fn install() {
    INSTALL.call_once(|| {
        #[cfg(unix)]
        unix::install();
    });
}

/// Consumes a pending reload request, if any.
pub fn take_reload() -> bool {
    RELOAD.swap(false, Ordering::SeqCst)
}

/// Whether at least one shutdown signal (or [`request_shutdown`]) has
/// arrived.
pub fn shutdown_requested() -> bool {
    SHUTDOWNS.load(Ordering::SeqCst) > 0
}

/// How many shutdown requests have arrived; ≥2 means the operator is
/// insisting and callers should exit hard rather than finish draining.
pub fn shutdown_count() -> u64 {
    SHUTDOWNS.load(Ordering::SeqCst)
}

/// Programmatic equivalent of `SIGINT` (used by tests and non-Unix
/// builds).
pub fn request_shutdown() {
    SHUTDOWNS.fetch_add(1, Ordering::SeqCst);
}

/// Programmatic equivalent of `SIGHUP`.
pub fn request_reload() {
    RELOAD.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use std::os::raw::{c_int, c_long};
    use std::sync::atomic::Ordering;

    const SIGHUP: c_int = 1;
    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        /// POSIX `signal(2)`: `sighandler_t` is pointer-sized, declared as
        /// `c_long` here to avoid a libc dependency.
        fn signal(signum: c_int, handler: c_long) -> c_long;
    }

    extern "C" fn on_hup(_: c_int) {
        super::RELOAD.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_term(_: c_int) {
        super::SHUTDOWNS.fetch_add(1, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: the handlers only perform atomic stores, which are
        // async-signal-safe; `signal` itself is safe to call with a valid
        // function pointer.
        unsafe {
            signal(SIGHUP, on_hup as usize as c_long);
            signal(SIGINT, on_term as usize as c_long);
            signal(SIGTERM, on_term as usize as c_long);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_flags_round_trip() {
        install();
        assert!(!take_reload());
        request_reload();
        assert!(take_reload());
        assert!(!take_reload(), "reload requests are consumed");

        let before = shutdown_count();
        request_shutdown();
        assert!(shutdown_requested());
        assert_eq!(shutdown_count(), before + 1);
    }
}
