//! The serving engine: acceptor, per-connection reader/writer threads, and
//! the single batcher thread that owns the detector.
//!
//! Thread model (all std, no async runtime):
//!
//! - **acceptor** polls the listener; each accepted socket gets a
//!   connection thread (refused with a `shed` line beyond
//!   [`ServeConfig::max_clients`]).
//! - **connection reader** parses JSONL submissions, mints one
//!   [`noodle_trace::TraceContext`] per request at admission, and pushes
//!   jobs into the shared [`FairQueue`]; full-queue and draining pushes
//!   are answered immediately with a `shed` line (429-style, with a
//!   retry hint).
//! - **connection writer** drains an mpsc channel of response lines, so
//!   the batcher never blocks on a slow client socket.
//! - **batcher** forms dynamic batches — close at [`ServeConfig::batch`]
//!   items or [`ServeConfig::batch_deadline`] after the first item,
//!   whichever first — and runs them through
//!   [`NoodleDetector::detect_batch`] with each request's admission
//!   context, so audit records, `/metrics` exemplars and flight events
//!   all carry the id the client saw.
//!
//! Hot swap: [`ServeController::request_reload`] sets a flag the batcher
//! consumes *between* batches; the model is replaced on the batcher
//! thread only, so no request ever observes a half-swapped model and
//! in-flight batches finish on the old one. Graceful drain:
//! [`ServeController::request_drain`] stops admission (new submissions
//! get `shed`/`"draining"`), the queue flushes, and every accepted
//! request is answered before the engine reports
//! [`ServeController::finished`].

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use noodle_core::{DetectRequest, Detection, NoodleDetector};
use noodle_observe::{AuditSink, ServeInfo, ServeOutcome, StreamingMonitors};

use crate::proto::{ServeRequest, ServeResponse};
use crate::queue::{FairQueue, PopResult};

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Batcher poll interval while the queue is idle (bounds reload/drain
/// reaction latency).
const IDLE_POLL: Duration = Duration::from_millis(50);

/// Connection read timeout: bounds how long a reader blocks before
/// re-checking the drain/finished flags.
const READ_POLL: Duration = Duration::from_millis(250);

/// Per-connection write timeout; a stalled client only wedges its own
/// writer thread, and only for this long per line.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Tuning for one [`ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Request-plane bind address (port 0 for ephemeral).
    pub addr: String,
    /// Maximum requests per inference micro-batch.
    pub batch: usize,
    /// Batch-formation deadline: a batch closes this long after its first
    /// request even if it is not full.
    pub batch_deadline: Duration,
    /// Bounded admission-queue capacity; pushes beyond it are shed.
    pub queue_cap: usize,
    /// Maximum concurrent client connections; extras are refused with a
    /// `shed` line.
    pub max_clients: usize,
    /// Maximum bytes of one request line; longer submissions close the
    /// connection with an error.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            batch: 32,
            batch_deadline: Duration::from_millis(25),
            queue_cap: 256,
            max_clients: 64,
            max_line_bytes: 1 << 20,
        }
    }
}

/// Lifetime counters of one engine, as of the call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Connected clients right now.
    pub clients: u64,
    /// Admitted requests not yet answered.
    pub inflight: u64,
    /// Requests answered with a verdict.
    pub served: u64,
    /// Admissions refused (queue full, draining, too many clients).
    pub shed: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Model hot-swaps applied.
    pub reloads: u64,
}

#[derive(Debug, Default)]
struct ControlState {
    draining: AtomicBool,
    reload: AtomicBool,
    done: AtomicBool,
    clients: AtomicU64,
    inflight: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    reloads: AtomicU64,
}

/// Shared control surface of one engine: clones address the same state,
/// so the CLI's signal loop and the HTTP admin hook (`POST /reload`,
/// `POST /drain`) can steer an engine they did not start.
#[derive(Debug, Clone, Default)]
pub struct ServeController {
    inner: Arc<ControlState>,
}

impl ServeController {
    /// A fresh controller, to be handed to [`ServeEngine::start`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests a graceful drain: admission stops (new submissions are
    /// shed with reason `"draining"`), the queue flushes, every accepted
    /// request is answered. Idempotent.
    pub fn request_drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// Requests a model hot-swap; the batcher applies it between batches
    /// (never mid-batch), keeping all in-flight requests on the old model.
    pub fn request_reload(&self) {
        self.inner.reload.store(true, Ordering::SeqCst);
    }

    /// Whether the engine has drained completely: queue flushed, every
    /// accepted request answered, batcher exited.
    pub fn finished(&self) -> bool {
        self.inner.done.load(Ordering::SeqCst)
    }

    /// Lifetime counters, read atomically but not as one snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            clients: self.inner.clients.load(Ordering::SeqCst),
            inflight: self.inner.inflight.load(Ordering::SeqCst),
            served: self.inner.served.load(Ordering::SeqCst),
            shed: self.inner.shed.load(Ordering::SeqCst),
            errors: self.inner.errors.load(Ordering::SeqCst),
            reloads: self.inner.reloads.load(Ordering::SeqCst),
        }
    }

    fn take_reload_request(&self) -> bool {
        self.inner.reload.swap(false, Ordering::SeqCst)
    }

    fn set_done(&self) {
        self.inner.done.store(true, Ordering::SeqCst);
    }

    fn client_connected(&self) {
        let now = self.inner.clients.fetch_add(1, Ordering::SeqCst) + 1;
        noodle_telemetry::gauge_set("serve.clients", now as f64);
    }

    fn client_disconnected(&self) {
        let now = self.inner.clients.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        noodle_telemetry::gauge_set("serve.clients", now as f64);
    }

    fn inflight_up(&self) {
        let now = self.inner.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        noodle_telemetry::gauge_set("serve.inflight", now as f64);
    }

    fn inflight_down(&self) {
        let now = self.inner.inflight.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        noodle_telemetry::gauge_set("serve.inflight", now as f64);
    }

    fn note_shed(&self, monitors: Option<&StreamingMonitors>) {
        let total = self.inner.shed.fetch_add(1, Ordering::SeqCst) + 1;
        noodle_telemetry::gauge_set("serve.shed_total", total as f64);
        if let Some(m) = monitors {
            m.observe_serve_outcome(ServeOutcome::Shed);
        }
    }

    fn note_error(&self, monitors: Option<&StreamingMonitors>) {
        self.inner.errors.fetch_add(1, Ordering::SeqCst);
        noodle_telemetry::counter_add("serve.errors", 1);
        if let Some(m) = monitors {
            m.observe_serve_outcome(ServeOutcome::Error);
        }
    }

    fn note_served(&self) {
        self.inner.served.fetch_add(1, Ordering::SeqCst);
        noodle_telemetry::counter_add("serve.served", 1);
    }

    fn note_reload(&self) {
        self.inner.reloads.fetch_add(1, Ordering::SeqCst);
        noodle_telemetry::counter_add("serve.reloads", 1);
    }
}

/// Re-reads a detector from its source of truth (typically the model
/// file) for a hot swap; returns a human-readable error to keep serving
/// the old model on failure.
pub type ModelLoader = Box<dyn FnMut() -> Result<NoodleDetector, String> + Send>;

/// One queued admission.
struct Job {
    design: String,
    source: String,
    label: Option<usize>,
    id: Option<u64>,
    ctx: noodle_trace::TraceContext,
    admitted: Instant,
    reply: mpsc::Sender<String>,
}

/// A running serving daemon. Dropping (or [`ServeEngine::join`]) drains
/// gracefully: accepted requests are all answered first.
#[derive(Debug)]
pub struct ServeEngine {
    addr: SocketAddr,
    ctl: ServeController,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServeEngine {
    /// Binds the request plane and starts serving.
    ///
    /// `audit` (if any) is attached *after* the engine stamps
    /// [`ServeInfo`] into the detector, so the header that opens the log
    /// already carries the daemon's provenance. `monitors` (if any)
    /// receives per-request SLO observations (latency with trace id,
    /// shed/error outcomes) in addition to whatever audit tee the caller
    /// wired. `ctl` is the shared control surface; pass clones to signal
    /// handlers and admin endpoints.
    ///
    /// # Errors
    ///
    /// Returns an `io::Error` when the address cannot be bound or a
    /// thread cannot be spawned.
    pub fn start(
        mut detector: NoodleDetector,
        loader: Option<ModelLoader>,
        audit: Option<Box<dyn AuditSink>>,
        monitors: Option<StreamingMonitors>,
        config: ServeConfig,
        ctl: ServeController,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let serve_info = ServeInfo {
            addr: addr.to_string(),
            batch_deadline_ms: config.batch_deadline.as_millis() as u64,
            queue_cap: config.queue_cap,
        };
        detector.set_serve_info(Some(serve_info.clone()));
        if let Some(sink) = audit {
            detector.set_audit_sink(sink);
        }

        let queue = Arc::new(FairQueue::new(config.queue_cap));
        noodle_telemetry::gauge_set("serve.queue_depth", 0.0);

        let acceptor = {
            let ctl = ctl.clone();
            let queue = Arc::clone(&queue);
            let config = config.clone();
            let monitors = monitors.clone();
            std::thread::Builder::new()
                .name("noodle-serve-accept".into())
                .spawn(move || accept_loop(listener, ctl, queue, config, monitors))?
        };
        let batcher = {
            let ctl = ctl.clone();
            let queue = Arc::clone(&queue);
            let config = config.clone();
            std::thread::Builder::new().name("noodle-serve-batch".into()).spawn(move || {
                batcher_loop(detector, loader, queue, monitors, config, ctl, serve_info);
            })?
        };
        Ok(Self { addr, ctl, acceptor: Some(acceptor), batcher: Some(batcher) })
    }

    /// The actually-bound request-plane address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the engine's control surface.
    pub fn controller(&self) -> ServeController {
        self.ctl.clone()
    }

    /// Drains gracefully and blocks until every accepted request has been
    /// answered and all engine threads have exited.
    pub fn join(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.ctl.request_drain();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The retry hint for shed responses: two batch deadlines, at least 1ms
/// — by then the queue has had a full formation cycle to make room.
fn retry_hint_ms(config: &ServeConfig) -> u64 {
    (config.batch_deadline.as_millis() as u64 * 2).max(1)
}

fn accept_loop(
    listener: TcpListener,
    ctl: ServeController,
    queue: Arc<FairQueue<Job>>,
    config: ServeConfig,
    monitors: Option<StreamingMonitors>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    let mut next_client: u64 = 0;
    while !ctl.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                if ctl.stats().clients >= config.max_clients as u64 {
                    refuse_connection(stream, &config, monitors.as_ref(), &ctl);
                    continue;
                }
                next_client += 1;
                let client = next_client;
                let ctl = ctl.clone();
                let queue = Arc::clone(&queue);
                let config = config.clone();
                let monitors = monitors.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("noodle-serve-conn-{client}"))
                    .spawn(move || connection(stream, client, ctl, queue, config, monitors));
                if let Ok(handle) = spawned {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Stop accepting, then wait for live connections: their readers exit
    // on client EOF or once the batcher reports the drain complete.
    drop(listener);
    for handle in connections {
        let _ = handle.join();
    }
}

/// Answers one over-capacity connection with a shed line and closes it.
fn refuse_connection(
    mut stream: TcpStream,
    config: &ServeConfig,
    monitors: Option<&StreamingMonitors>,
    ctl: &ServeController,
) {
    ctl.note_shed(monitors);
    let line = ServeResponse::Shed {
        id: None,
        design: String::new(),
        reason: "too many clients".into(),
        retry_after_ms: retry_hint_ms(config),
    }
    .to_line();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.write_all(line.as_bytes());
}

fn connection(
    stream: TcpStream,
    client: u64,
    ctl: ServeController,
    queue: Arc<FairQueue<Job>>,
    config: ServeConfig,
    monitors: Option<StreamingMonitors>,
) {
    ctl.client_connected();
    let _ = run_connection(stream, client, &ctl, &queue, &config, monitors.as_ref());
    ctl.client_disconnected();
}

fn run_connection(
    stream: TcpStream,
    client: u64,
    ctl: &ServeController,
    queue: &FairQueue<Job>,
    config: &ServeConfig,
    monitors: Option<&StreamingMonitors>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let write_half = stream.try_clone()?;
    write_half.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let (tx, rx) = mpsc::channel::<String>();
    let writer = std::thread::Builder::new()
        .name(format!("noodle-serve-write-{client}"))
        .spawn(move || writer_loop(write_half, rx))?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if ctl.finished() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.len() > config.max_line_bytes {
                    let _ = tx.send(oversized_line_error().to_line());
                    break;
                }
                if !line.trim().is_empty() {
                    handle_line(line.trim(), client, ctl, queue, config, monitors, &tx);
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // Timeout mid-line: `read_line` keeps the partial bytes in
                // `line` and the next call appends, so nothing is lost —
                // unless the line has already blown the cap.
                if line.len() > config.max_line_bytes {
                    let _ = tx.send(oversized_line_error().to_line());
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
    Ok(())
}

fn oversized_line_error() -> ServeResponse {
    ServeResponse::Error {
        id: None,
        design: String::new(),
        error: "request line exceeds the size cap; closing connection".into(),
    }
}

fn writer_loop(stream: TcpStream, rx: mpsc::Receiver<String>) {
    let mut out = BufWriter::new(stream);
    while let Ok(line) = rx.recv() {
        if out.write_all(line.as_bytes()).is_err() || out.flush().is_err() {
            break;
        }
    }
}

/// Parses and admits one submission line.
fn handle_line(
    line: &str,
    client: u64,
    ctl: &ServeController,
    queue: &FairQueue<Job>,
    config: &ServeConfig,
    monitors: Option<&StreamingMonitors>,
    tx: &mpsc::Sender<String>,
) {
    let request: ServeRequest = match serde_json::from_str(line) {
        Ok(request) => request,
        Err(e) => {
            ctl.note_error(monitors);
            let response = ServeResponse::Error {
                id: None,
                design: String::new(),
                error: format!("malformed request: {e}"),
            };
            let _ = tx.send(response.to_line());
            return;
        }
    };
    noodle_telemetry::counter_add("serve.requests", 1);
    if ctl.draining() {
        ctl.note_shed(monitors);
        let response = ServeResponse::Shed {
            id: request.id,
            design: request.design,
            reason: "draining".into(),
            retry_after_ms: retry_hint_ms(config),
        };
        let _ = tx.send(response.to_line());
        return;
    }
    let job = Job {
        design: request.design,
        source: request.source,
        label: request.label,
        id: request.id,
        ctx: noodle_trace::TraceContext::mint(),
        admitted: Instant::now(),
        reply: tx.clone(),
    };
    match queue.push(client, job) {
        Ok(()) => ctl.inflight_up(),
        Err(job) => {
            ctl.note_shed(monitors);
            let reason = if ctl.draining() { "draining" } else { "queue full" };
            let response = ServeResponse::Shed {
                id: job.id,
                design: job.design,
                reason: reason.into(),
                retry_after_ms: retry_hint_ms(config),
            };
            let _ = tx.send(response.to_line());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn batcher_loop(
    mut detector: NoodleDetector,
    mut loader: Option<ModelLoader>,
    queue: Arc<FairQueue<Job>>,
    monitors: Option<StreamingMonitors>,
    config: ServeConfig,
    ctl: ServeController,
    serve_info: ServeInfo,
) {
    loop {
        if ctl.draining() {
            queue.drain();
        }
        if ctl.take_reload_request() {
            apply_reload(&mut detector, loader.as_mut(), &ctl, &serve_info);
        }
        match queue.pop_until(Instant::now() + IDLE_POLL) {
            PopResult::Drained => break,
            PopResult::TimedOut => continue,
            PopResult::Item(first) => {
                // Dynamic batch formation: close at `batch` items or
                // `batch_deadline` after the first item, whichever first.
                let mut jobs = vec![(first, Instant::now())];
                let deadline = Instant::now() + config.batch_deadline;
                while jobs.len() < config.batch {
                    match queue.pop_until(deadline) {
                        PopResult::Item(job) => jobs.push((job, Instant::now())),
                        PopResult::TimedOut | PopResult::Drained => break,
                    }
                }
                run_batch(&mut detector, &jobs, monitors.as_ref(), &ctl);
            }
        }
    }
    ctl.set_done();
}

fn apply_reload(
    detector: &mut NoodleDetector,
    loader: Option<&mut ModelLoader>,
    ctl: &ServeController,
    serve_info: &ServeInfo,
) {
    let Some(loader) = loader else {
        noodle_telemetry::counter_add("serve.reload_failures", 1);
        return;
    };
    match loader() {
        Ok(mut next) => {
            // The swap happens entirely on this thread, between batches:
            // requests only ever see the old model or the new one, never a
            // mix. The audit sink moves across so one log spans the swap
            // (the re-emitted header marks the boundary).
            next.set_serve_info(Some(serve_info.clone()));
            if let Some(sink) = detector.take_audit_sink() {
                next.set_audit_sink(sink);
            }
            *detector = next;
            ctl.note_reload();
        }
        Err(_) => noodle_telemetry::counter_add("serve.reload_failures", 1),
    }
}

/// Runs one formed batch and answers every job in it.
fn run_batch(
    detector: &mut NoodleDetector,
    jobs: &[(Job, Instant)],
    monitors: Option<&StreamingMonitors>,
    ctl: &ServeController,
) {
    let batch_closed = Instant::now();
    noodle_telemetry::histogram_record("serve.batch_size", jobs.len() as f64);
    for (job, popped) in jobs {
        // Install each request's admission context so the histogram
        // exemplars carry the trace id the client saw.
        let _ctx = noodle_trace::set_current(job.ctx);
        let queue_us = popped.duration_since(job.admitted).as_secs_f64() * 1e6;
        let wait_us = batch_closed.duration_since(*popped).as_secs_f64() * 1e6;
        noodle_telemetry::histogram_record("serve.queue_us", queue_us);
        noodle_telemetry::histogram_record("serve.batch_wait_us", wait_us);
    }
    let requests: Vec<DetectRequest<'_>> = jobs
        .iter()
        .map(|(job, _)| DetectRequest {
            design: &job.design,
            source: &job.source,
            label: job.label,
            trace: Some(job.ctx),
        })
        .collect();
    let infer_start = Instant::now();
    match detector.detect_batch(&requests, requests.len(), None) {
        Ok(detections) => {
            let infer_us = infer_start.elapsed().as_secs_f64() * 1e6;
            for ((job, popped), detection) in jobs.iter().zip(detections) {
                finish_job(job, *popped, Ok((detection, infer_us, jobs.len())), monitors, ctl);
            }
        }
        Err(_) => {
            // One bad source fails the whole call before any audit is
            // emitted; isolate it by re-running each request as a batch of
            // one (bit-identical results, per the batching contract).
            for (job, popped) in jobs {
                let request = DetectRequest {
                    design: &job.design,
                    source: &job.source,
                    label: job.label,
                    trace: Some(job.ctx),
                };
                let retry_start = Instant::now();
                let result = match detector.detect_batch(std::slice::from_ref(&request), 1, None) {
                    Ok(mut one) => {
                        let infer_us = retry_start.elapsed().as_secs_f64() * 1e6;
                        Ok((one.remove(0), infer_us, 1))
                    }
                    Err(e) => Err(e.to_string()),
                };
                finish_job(job, *popped, result, monitors, ctl);
            }
        }
    }
}

fn finish_job(
    job: &Job,
    popped: Instant,
    result: Result<(Detection, f64, usize), String>,
    monitors: Option<&StreamingMonitors>,
    ctl: &ServeController,
) {
    let e2e_us = job.admitted.elapsed().as_secs_f64() * 1e6;
    let queue_us = popped.duration_since(job.admitted).as_secs_f64() * 1e6;
    let line = match result {
        Ok((detection, infer_us, batch_size)) => {
            {
                let _ctx = noodle_trace::set_current(job.ctx);
                noodle_telemetry::histogram_record("serve.infer_us", infer_us);
                noodle_telemetry::histogram_record("serve.e2e_us", e2e_us);
            }
            if let Some(m) = monitors {
                m.observe_serve_latency(e2e_us, job.ctx.trace_id);
                m.observe_serve_outcome(ServeOutcome::Served);
            }
            ctl.note_served();
            let p = detection.prediction.p_values();
            ServeResponse::Verdict {
                id: job.id,
                design: job.design.clone(),
                trace_id: noodle_trace::format_trace_id(job.ctx.trace_id),
                infected: detection.infected,
                probability_infected: detection.probability_infected,
                p_values: [p[0], p[1]],
                region: detection.region.clone(),
                credibility: detection.credibility,
                confidence: detection.confidence,
                uncertain: detection.uncertain,
                queue_us,
                infer_us,
                e2e_us,
                batch_size,
            }
            .to_line()
        }
        Err(error) => {
            ctl.note_error(monitors);
            ServeResponse::Error { id: job.id, design: job.design.clone(), error }.to_line()
        }
    };
    ctl.inflight_down();
    let _ = job.reply.send(line);
}
