//! Ablation: **conformal validity and efficiency** of the late-fusion
//! predictor across significance levels ε — empirical error rate vs the
//! ε guarantee, mean region size, and singleton/empty/uncertain rates.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin ablation_validity
//! ```

use noodle_bench::{fit_detector, paper_scale, scale_from_env};
use noodle_conformal::{region_stats, ConformalPrediction};

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[ablation_validity] scale = {}, seeds = 5", scale.name);
    let mut predictions = Vec::new();
    let mut labels = Vec::new();
    for seed in 0..5u64 {
        let detector = fit_detector(&scale, 100 + seed);
        let eval = detector.evaluation();
        predictions
            .extend(eval.late_p_values.iter().map(|pv| ConformalPrediction::new(pv.to_vec())));
        labels.extend(eval.test_labels.iter().copied());
    }
    println!(
        "Ablation: conformal validity/efficiency of late fusion ({} pooled test designs)",
        labels.len()
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>11}",
        "epsilon", "error rate", "mean |set|", "singleton", "empty", "uncertain"
    );
    for &epsilon in &[0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4] {
        let s = region_stats(&predictions, &labels, epsilon);
        let valid = s.error_rate <= epsilon + 0.05;
        println!(
            "{:>8.2} {:>12.3} {:>12.3} {:>12.3} {:>10.3} {:>11.3}  {}",
            epsilon,
            s.error_rate,
            s.mean_region_size,
            s.singleton_rate,
            s.empty_rate,
            s.uncertain_rate,
            if valid { "OK" } else { "VIOLATION" },
        );
    }
    println!(
        "\nshape check: error rate tracks (stays at or below) ε — the Mondrian \
         label-conditional guarantee the paper relies on for the minority class."
    );
}
