//! Regenerates **Fig. 2**: the Brier-score distribution (with mean
//! interval) for early fusion (2a) and late fusion (2b) over repeated
//! randomized splits.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin fig2
//! ```

use noodle_bench::{fit_detector, paper_scale, scale_from_env};
use noodle_core::FusionStrategy;
use noodle_metrics::summarize;

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[fig2] scale = {}, repeats = {}", scale.name, scale.repeats);
    let mut early = Vec::with_capacity(scale.repeats);
    let mut late = Vec::with_capacity(scale.repeats);
    for seed in 0..scale.repeats as u64 {
        let detector = fit_detector(&scale, 1000 + seed);
        let eval = detector.evaluation();
        early.push(eval.brier_of(FusionStrategy::EarlyFusion));
        late.push(eval.brier_of(FusionStrategy::LateFusion));
        eprintln!(
            "  run {seed:>2}: early = {:.4}, late = {:.4}",
            early.last().unwrap(),
            late.last().unwrap()
        );
    }
    for (name, values) in [("(a) Early fusion", &early), ("(b) Late fusion", &late)] {
        let s = summarize(values, 0.95);
        println!("\nFig. 2{name}: Brier score distribution over {} runs", s.n);
        println!("  mean           : {:.4}", s.mean);
        println!("  std dev        : {:.4}", s.std_dev);
        println!(
            "  min | q25 | median | q75 | max : {:.4} | {:.4} | {:.4} | {:.4} | {:.4}",
            s.min, s.q25, s.median, s.q75, s.max
        );
        println!("  95% interval   : [{:.4}, {:.4}]", s.interval_lo, s.interval_hi);
        print!("  samples        : ");
        for v in values {
            print!("{v:.3} ");
        }
        println!();
    }
    let early_mean = summarize(&early, 0.95).mean;
    let late_mean = summarize(&late, 0.95).mean;
    println!(
        "\nshape check: late-fusion mean ({late_mean:.4}) {} early-fusion mean ({early_mean:.4})",
        if late_mean <= early_mean { "<=" } else { ">" },
    );
}
