//! Ablation: **GAN amplification target**. The paper amplifies the corpus
//! to 500 points; this sweep measures the winning-fusion Brier score as
//! the per-class target grows from "no amplification" upwards, isolating
//! the contribution of the GAN to the headline numbers.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin ablation_gan
//! ```

use noodle_bench::{mean, paper_scale, scale_from_env};
use noodle_core::{MultimodalDataset, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = scale_from_env(paper_scale());
    let targets: &[usize] =
        if scale.name == "paper" { &[0, 60, 125, 250, 400] } else { &[0, 20, 40] };
    eprintln!("[ablation_gan] scale = {}, targets = {targets:?}", scale.name);
    let corpus = noodle_bench_gen::generate_corpus(&scale.corpus);
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus parses");

    println!("Ablation: effect of the GAN amplification target (per class)");
    println!("{:>10} {:>12} {:>12} {:>12} {:>12}", "target", "graph", "tabular", "early", "late");
    for &target in targets {
        let mut briers = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for seed in 0..3u64 {
            let mut config = scale.noodle;
            // target 0 => keep the raw corpus (amplification disabled).
            config.amplify_per_class = target;
            let mut rng = StdRng::seed_from_u64(7 + seed);
            let detector = NoodleDetector::fit(&dataset, &config, &mut rng).expect("fit succeeds");
            for (slot, b) in detector.evaluation().brier.iter().enumerate() {
                briers[slot].push(*b);
            }
        }
        println!(
            "{:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            target,
            mean(&briers[0]),
            mean(&briers[1]),
            mean(&briers[2]),
            mean(&briers[3]),
        );
    }
    println!(
        "\nshape check: moving from 0 (raw, tiny corpus) to the paper's target \
         should reduce fusion Brier scores by densifying the minority class."
    );
}
