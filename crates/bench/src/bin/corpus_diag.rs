//! Diagnostic: per-feature class statistics of the raw corpus, used to
//! verify that no single tabular feature trivially separates Trojan-free
//! from Trojan-infected designs (which would make the benchmark dishonest
//! compared to the TrustHub regime).
//!
//! ```text
//! cargo run --release -p noodle-bench --bin corpus_diag
//! ```

use noodle_bench::{paper_scale, scale_from_env};
use noodle_core::MultimodalDataset;
use noodle_tabular::FEATURE_NAMES;

fn main() {
    let scale = scale_from_env(paper_scale());
    let corpus = noodle_bench_gen::generate_corpus(&scale.corpus);
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus parses");
    let tf = dataset.class_indices(0);
    let ti = dataset.class_indices(1);
    let tf_mat = dataset.tabular_matrix(&tf);
    let ti_mat = dataset.tabular_matrix(&ti);

    let stats = |m: &noodle_nn::Tensor, col: usize| -> (f32, f32) {
        let n = m.shape()[0];
        let mean = (0..n).map(|r| m.row(r)[col]).sum::<f32>() / n as f32;
        let var = (0..n).map(|r| (m.row(r)[col] - mean).powi(2)).sum::<f32>() / n as f32;
        (mean, var.sqrt())
    };

    println!(
        "{:<22} {:>9} {:>8} {:>9} {:>8} {:>8}",
        "feature", "TF mean", "TF sd", "TI mean", "TI sd", "|d'|"
    );
    let mut worst: Vec<(f32, String)> = Vec::new();
    for (col, name) in FEATURE_NAMES.iter().enumerate() {
        let (m0, s0) = stats(&tf_mat, col);
        let (m1, s1) = stats(&ti_mat, col);
        let pooled = ((s0 * s0 + s1 * s1) / 2.0).sqrt().max(1e-6);
        let d = ((m1 - m0) / pooled).abs();
        println!("{name:<22} {m0:>9.2} {s0:>8.2} {m1:>9.2} {s1:>8.2} {d:>8.2}");
        worst.push((d, name.to_string()));
    }
    worst.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("\nmost separating features (Cohen's d):");
    for (d, name) in worst.iter().take(5) {
        println!("  {name:<22} d = {d:.2}");
    }
}
