//! Shape sweep: mean Brier per strategy, late-fusion AUC and per-seed win
//! counts over many independent corpora — the robustness view behind the
//! single-run Table I.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin shape_sweep
//! ```

use noodle_bench::{fit_detector, mean, paper_scale, scale_from_env};
use noodle_core::FusionStrategy;
use noodle_metrics::roc_curve;

fn main() {
    let scale = scale_from_env(paper_scale());
    let seeds: u64 = if scale.name == "paper" { 10 } else { 4 };
    eprintln!("[shape_sweep] scale = {}, seeds = {seeds}", scale.name);
    let mut briers: [Vec<f64>; 4] = Default::default();
    let mut aucs = Vec::new();
    let mut late_wins = 0usize;
    let mut fusion_wins = 0usize;
    let mut graph_wins = 0usize;
    for seed in 0..seeds {
        let detector = fit_detector(&scale, 9000 + seed);
        let eval = detector.evaluation();
        for (slot, b) in eval.brier.iter().enumerate() {
            briers[slot].push(*b);
        }
        let outcomes = eval.test_outcomes();
        aucs.push(roc_curve(eval.probs_of(FusionStrategy::LateFusion), &outcomes).auc());
        if eval.brier[3] <= eval.brier[2] {
            late_wins += 1;
        }
        if eval.brier[2].min(eval.brier[3]) <= eval.brier[0].min(eval.brier[1]) {
            fusion_wins += 1;
        }
        if eval.brier[0] <= eval.brier[1] {
            graph_wins += 1;
        }
        eprintln!(
            "  seed {seed}: brier = {:.3}/{:.3}/{:.3}/{:.3}, auc = {:.3}",
            eval.brier[0],
            eval.brier[1],
            eval.brier[2],
            eval.brier[3],
            aucs.last().unwrap()
        );
    }
    println!("Shape sweep over {seeds} independent corpora:");
    for (strategy, series) in FusionStrategy::ALL.iter().zip(&briers) {
        println!("  mean Brier {:<45} {:.4}", strategy.label(), mean(series));
    }
    println!("  mean late-fusion AUC: {:.3}", mean(&aucs));
    println!("  late beats early    : {late_wins}/{seeds} seeds");
    println!("  fusion beats singles: {fusion_wins}/{seeds} seeds");
    println!("  graph beats tabular : {graph_wins}/{seeds} seeds");
}
