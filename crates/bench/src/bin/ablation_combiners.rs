//! Ablation: **p-value combination method** for late fusion.
//!
//! The paper builds its fusion on the p-value combination framework of
//! Balasubramanian et al. (the paper's reference 36), which compares Fisher, Stouffer,
//! min/max and mean combiners. This ablation recombines the stored
//! per-modality p-values with every method and reports the late-fusion
//! Brier score of each — no retraining, so differences are purely due to
//! the combiner.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin ablation_combiners
//! ```

use noodle_bench::{fit_detector, mean, paper_scale, scale_from_env};
use noodle_conformal::Combiner;
use noodle_metrics::brier_score;

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[ablation_combiners] scale = {}, seeds = 5", scale.name);
    let mut rows: Vec<(Combiner, Vec<f64>)> =
        Combiner::ALL.iter().map(|&c| (c, Vec::new())).collect();
    for seed in 0..5u64 {
        let detector = fit_detector(&scale, 42 + seed);
        let eval = detector.evaluation();
        let outcomes = eval.test_outcomes();
        for (combiner, briers) in &mut rows {
            let probs: Vec<f64> = eval
                .graph_p_values
                .iter()
                .zip(&eval.tabular_p_values)
                .map(|(pg, pt)| {
                    let p0 = combiner.combine(&[pg[0], pt[0]]);
                    let p1 = combiner.combine(&[pg[1], pt[1]]);
                    p1 / (p0 + p1)
                })
                .collect();
            briers.push(brier_score(&probs, &outcomes));
        }
    }
    println!("Ablation: late-fusion Brier score by p-value combination method");
    println!("{:<14} {:>12} {:>24}", "combiner", "mean Brier", "per-seed");
    let mut best = (Combiner::Fisher, f64::INFINITY);
    for (combiner, briers) in &rows {
        let m = mean(briers);
        if m < best.1 {
            best = (*combiner, m);
        }
        let series: Vec<String> = briers.iter().map(|b| format!("{b:.3}")).collect();
        println!("{:<14} {:>12.4} {:>24}", combiner.name(), m, series.join(" "));
    }
    println!("\nbest combiner at this scale: {} ({:.4})", best.0.name(), best.1);
}
