//! Ablation: **evaluation protocol**. The paper amplifies the corpus to
//! ~500 points *before* splitting, so its test split contains GAN-synthetic
//! samples (interpolations of the training distribution). The alternative
//! holds out real designs and amplifies only the training/calibration pool.
//! This sweep quantifies how much of the headline performance is protocol:
//! synthetic-in-test evaluation looks substantially easier than testing on
//! held-out real designs.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin ablation_protocol
//! ```

use noodle_bench::{mean, paper_scale, scale_from_env};
use noodle_bench_gen::CorpusConfig;
use noodle_core::{MultimodalDataset, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = scale_from_env(paper_scale());
    let seeds = if scale.name == "paper" { 6u64 } else { 3 };
    eprintln!("[ablation_protocol] scale = {}, seeds = {seeds}", scale.name);
    println!("Ablation: paper protocol (synthetic in test) vs real-holdout protocol");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "protocol", "graph", "tabular", "early", "late", "n_test"
    );
    for holdout in [false, true] {
        let mut briers = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let mut n_test = 0usize;
        for seed in 0..seeds {
            let corpus_config =
                CorpusConfig { seed: scale.corpus.seed ^ (seed + 1), ..scale.corpus };
            let corpus = noodle_bench_gen::generate_corpus(&corpus_config);
            let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus parses");
            let mut config = scale.noodle;
            config.holdout_real_test = holdout;
            let mut rng = StdRng::seed_from_u64(31 + seed);
            let detector = NoodleDetector::fit(&dataset, &config, &mut rng).expect("fit succeeds");
            for (slot, b) in detector.evaluation().brier.iter().enumerate() {
                briers[slot].push(*b);
            }
            n_test = detector.evaluation().test_labels.len();
        }
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>8}",
            if holdout { "real holdout" } else { "paper (synthetic)" },
            mean(&briers[0]),
            mean(&briers[1]),
            mean(&briers[2]),
            mean(&briers[3]),
            n_test,
        );
    }
    println!(
        "\nreading: the gap between rows estimates how much the amplify-then-split \
         protocol flatters the numbers; the real-holdout row is the deployable figure."
    );
}
