//! Regenerates **Fig. 4**: the ROC curve and AUC of NOODLE under late
//! fusion (the paper reports AUC = 0.928).
//!
//! ```text
//! cargo run --release -p noodle-bench --bin fig4
//! ```

use noodle_bench::{fit_detector, paper_scale, scale_from_env, PAPER_AUC};
use noodle_core::FusionStrategy;
use noodle_metrics::roc_curve;

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[fig4] scale = {}", scale.name);
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation();
    let probs = eval.probs_of(FusionStrategy::LateFusion);
    let outcomes = eval.test_outcomes();
    let roc = roc_curve(probs, &outcomes);

    println!("Fig. 4: ROC curve under late fusion ({} test designs)", probs.len());
    println!("{:>12} {:>8} {:>8}", "threshold", "FPR", "TPR");
    for point in roc.points() {
        println!("{:>12.4} {:>8.3} {:>8.3}", point.threshold, point.fpr, point.tpr);
    }
    println!("\nmeasured AUC: {:.3}", roc.auc());
    println!("paper AUC   : {PAPER_AUC:.3}");
    println!(
        "shape check: AUC {} 0.85 (the paper's 'performing well' zone)",
        if roc.auc() >= 0.85 { ">=" } else { "<" },
    );

    // ASCII rendering of the curve.
    println!("\n     ROC (x = FPR, y = TPR)");
    const GRID: usize = 20;
    let mut cells = vec![vec![' '; GRID + 1]; GRID + 1];
    for p in roc.points() {
        let x = (p.fpr * GRID as f64).round() as usize;
        let y = (p.tpr * GRID as f64).round() as usize;
        cells[y][x] = '*';
    }
    for y in (0..=GRID).rev() {
        let row: String = cells[y].iter().collect();
        println!("{:>4.2} |{row}", y as f64 / GRID as f64);
    }
    println!("      {}", "-".repeat(GRID + 1));
}
