//! Simulation-throughput benchmark: tree-walking interpreter vs the
//! compiled instruction-tape engine.
//!
//! Composes three benign designs of increasing size from the bench-gen
//! circuit families (small: 1 core, medium: 8 cores, large: 24 cores,
//! all merged into a single flat module sharing `clk`/`rst`), then runs
//! each design on both backends for the same number of clock cycles and
//! records cycles/sec. The headline number is `speedup.compile` — the
//! compiled/interpreted ratio on the medium design, which CI gates at
//! 10x.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin sim_throughput -- \
//!     [--out PATH] [--iters N] [--cycles N]
//! ```
//!
//! Correctness rides along: after the timed runs (which execute the
//! identical cycle count on both engines), every signal the interpreter
//! exposes must read back identically from the compiled engine, or the
//! benchmark aborts — the numbers are only published for two engines
//! that finished in the same state.

use std::time::Instant;

use noodle_bench_gen::{compose, families, CircuitFamily, GeneratedCircuit};
use noodle_verilog::{compile, CompiledSim, Module, PortDirection, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Composes `cores` family instances (cycling through every family so
/// sequential and combinational cores are both represented) into one
/// flat module.
fn build_design(name: &str, cores: usize, rng: &mut StdRng) -> Module {
    let all = CircuitFamily::ALL;
    let instances: Vec<GeneratedCircuit> = (0..cores)
        .map(|i| families::generate(all[i % all.len()], &format!("core{i}"), rng))
        .collect();
    compose(name, instances).module
}

/// Drives both backends through `iters + 1` runs of `cycles` clock
/// cycles each (first run untimed), checks the final visible state
/// matches, and returns (interp cycles/sec, compiled cycles/sec).
fn bench_design(module: &Module, cycles: usize, iters: usize) -> (f64, f64) {
    let mut interp = Simulator::new(module).expect("interpreter accepts the design");
    let mut compiled: CompiledSim = compile(module).expect("compiler accepts the design");

    // A fixed input vector: reset pulse, then a busy data pattern.
    let inputs: Vec<String> = module
        .resolved_ports()
        .iter()
        .filter(|p| p.direction == PortDirection::Input && p.name != "clk")
        .map(|p| p.name.clone())
        .collect();
    for name in &inputs {
        let value = if name.contains("rst") { 0 } else { 0xA5A5_5A5A_A5A5_5A5A };
        interp.set(name, value).expect("interp set");
        compiled.set(name, value).expect("compiled set");
    }

    let interp_ns = median_ns(iters, || interp.run("clk", cycles).expect("interp run"));
    let compiled_ns = median_ns(iters, || compiled.run("clk", cycles).expect("compiled run"));

    // Both engines executed the same total cycle count on the same
    // stimulus; their visible state must be identical.
    for signal in interp.signal_names() {
        assert_eq!(
            compiled.get(&signal),
            interp.get(&signal),
            "backends diverged on `{signal}` of `{}`",
            module.name
        );
    }

    let cps = |ns: u128| cycles as f64 / (ns as f64 / 1e9);
    (cps(interp_ns), cps(compiled_ns))
}

fn main() {
    let mut out_path = String::from("BENCH_sim.json");
    let mut iters: usize = 5;
    let mut cycles: usize = 2000;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--iters" if i + 1 < args.len() => {
                iters = args[i + 1].parse().expect("--iters expects a number");
                i += 2;
            }
            "--cycles" if i + 1 < args.len() => {
                cycles = args[i + 1].parse().expect("--cycles expects a number");
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: sim_throughput [--out PATH] [--iters N] [--cycles N] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    let cycles = cycles.max(10);

    let mut rng = StdRng::seed_from_u64(0x51B0);
    let sizes = [("small", 1usize), ("medium", 8), ("large", 24)];
    let mut rows = Vec::new();
    for (label, cores) in sizes {
        let module = build_design(&format!("bench_{label}"), cores, &mut rng);
        eprintln!("benchmarking {label} ({cores} cores, {cycles} cycles x {iters} iters)...");
        let (interp_cps, compiled_cps) = bench_design(&module, cycles, iters);
        eprintln!(
            "  interp {interp_cps:.0} cyc/s, compiled {compiled_cps:.0} cyc/s ({:.1}x)",
            compiled_cps / interp_cps
        );
        rows.push((label, interp_cps, compiled_cps));
    }

    let speedup_of = |label: &str| {
        let row = rows.iter().find(|r| r.0 == label).unwrap();
        row.2 / row.1
    };
    let cps_entries = rows
        .iter()
        .map(|(label, interp, compiled)| {
            format!("    \"{label}_interp\": {interp:.1},\n    \"{label}_compiled\": {compiled:.1}")
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"iters\": {iters},\n  \"cycles\": {cycles},\n  \"cycles_per_sec\": {{\n{cps_entries}\n  }},\n  \"speedup\": {{\n    \"compile\": {:.3},\n    \"compile_small\": {:.3},\n    \"compile_large\": {:.3}\n  }}\n}}\n",
        speedup_of("medium"),
        speedup_of("small"),
        speedup_of("large"),
    );
    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("{json}");
    eprintln!("benchmark results written to {out_path}");
}

/// Median wall-clock nanoseconds per call over `iters` timed calls (one
/// untimed warmup call first).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut times: Vec<u128> = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}
