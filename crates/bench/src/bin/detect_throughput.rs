//! Scripts-free serving-throughput benchmark for the batched detect engine.
//!
//! Fits a fast detector once, then screens the same probe corpus two ways:
//!
//! - **batch_1**: the sequential path (`detect_named` per file) pinned to a
//!   single thread — one-request-at-a-time serving;
//! - **batch_32**: `detect_batch` with 32-file micro-batches on the full
//!   compute pool — the high-throughput serving configuration;
//! - **batch_32_quantized**: the same batched engine with CNN forwards
//!   served from the int8 post-training-quantized twins (`--quantize` on
//!   the CLI). Zero verdict flips against the float path is asserted on
//!   every run and recorded as `verdict_flips` in the JSON.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin detect_throughput -- \
//!     [--out PATH] [--iters N] [--files N]
//! ```
//!
//! Writes a machine-readable `BENCH_detect.json` with files/sec for both
//! configurations plus their ratio, so CI can assert the batched engine
//! stays ahead without carrying a criterion baseline around. Verdicts are
//! bit-identical between the two paths (asserted here on every run).

use std::hint::black_box;
use std::time::Instant;

use noodle_bench_gen::{generate_corpus, CorpusConfig};
use noodle_core::{DetectRequest, MultimodalDataset, NoodleConfig, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut out_path = String::from("BENCH_detect.json");
    let mut iters: usize = 5;
    let mut files: usize = 32;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--iters" if i + 1 < args.len() => {
                iters = args[i + 1].parse().expect("--iters expects a number");
                i += 2;
            }
            "--files" if i + 1 < args.len() => {
                files = args[i + 1].parse().expect("--files expects a number");
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: detect_throughput [--out PATH] [--iters N] [--files N] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    let files = files.max(2);

    eprintln!("fitting detector (fast config)...");
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 11 });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus extracts cleanly");
    let mut rng = StdRng::seed_from_u64(1);
    let mut detector =
        NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).expect("fit succeeds");

    let infected = files / 3;
    let probe = generate_corpus(&CorpusConfig {
        trojan_free: files - infected,
        trojan_infected: infected,
        seed: 997,
    });
    let requests: Vec<DetectRequest<'_>> = probe
        .iter()
        .map(|b| DetectRequest { design: &b.name, source: &b.source, label: None, trace: None })
        .collect();

    // The two paths must agree bitwise before their speeds mean anything.
    let sequential: Vec<_> = probe
        .iter()
        .map(|b| detector.detect_named(&b.name, &b.source, None).expect("detect succeeds"))
        .collect();
    let batched = detector.detect_batch(&requests, 32, None).expect("detect_batch succeeds");
    assert_eq!(batched, sequential, "batched verdicts diverge from sequential");

    // Batch-of-one serving: one request at a time on a single stream.
    noodle_compute::set_thread_override(Some(1));
    let seq_ns = median_ns(iters, || {
        for r in &requests {
            black_box(detector.detect_named(r.design, r.source, None).expect("detect succeeds"));
        }
    });

    // Batched serving: 32-file micro-batches on the full compute pool.
    noodle_compute::set_thread_override(None);
    let batch_ns = median_ns(iters, || {
        black_box(detector.detect_batch(&requests, 32, None).expect("detect_batch succeeds"));
    });

    // Quantized serving: same micro-batched engine, CNN forwards routed to
    // the int8 post-training-quantized twins. Verdict parity with the float
    // path is a hard requirement — a flip here means the calibration scheme
    // broke, and the numbers are meaningless.
    detector.set_quantized(true).expect("fit always emits a quantized section");
    let quantized = detector.detect_batch(&requests, 32, None).expect("detect_batch succeeds");
    let verdict_flips =
        quantized.iter().zip(&batched).filter(|(q, f)| q.infected != f.infected).count();
    assert_eq!(verdict_flips, 0, "int8 serving flipped verdicts against the float path");
    let quant_ns = median_ns(iters, || {
        black_box(detector.detect_batch(&requests, 32, None).expect("detect_batch succeeds"));
    });
    detector.set_quantized(false).expect("disabling quantized serving is infallible");

    let fps_seq = files as f64 / (seq_ns as f64 / 1e9);
    let fps_batch = files as f64 / (batch_ns as f64 / 1e9);
    let fps_quant = files as f64 / (quant_ns as f64 / 1e9);
    let speedup = fps_batch / fps_seq;
    let speedup_quant = fps_quant / fps_batch;
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"threads\": {},\n  \"files\": {files},\n  \"iters\": {iters},\n  \"simd\": \"{}\",\n  \"files_per_sec\": {{\n    \"batch_1\": {fps_seq:.2},\n    \"batch_32\": {fps_batch:.2},\n    \"batch_32_quantized\": {fps_quant:.2}\n  }},\n  \"verdict_flips\": {verdict_flips},\n  \"speedup\": {{\n    \"batch\": {speedup:.3},\n    \"quantize\": {speedup_quant:.3}\n  }}\n}}\n",
        noodle_compute::num_threads(),
        noodle_compute::active_isa().name(),
    );
    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("{json}");
    eprintln!("benchmark results written to {out_path}");
}

/// Median wall-clock nanoseconds per call over `iters` timed calls (one
/// untimed warmup call first — it also warms the inference arena path).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    f();
    let mut times: Vec<u128> = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}
