//! Stratified k-fold cross-validation over real designs — the deployable
//! performance estimate (every real design tested exactly once, GAN
//! amplification confined to the training pool of each fold).
//!
//! ```text
//! cargo run --release -p noodle-bench --bin crossval
//! ```

use noodle_bench::{paper_scale, scale_from_env};
use noodle_core::{cross_validate, FusionStrategy, MultimodalDataset};
use noodle_metrics::{brier_score, roc_curve};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = scale_from_env(paper_scale());
    let k = if scale.name == "paper" { 5 } else { 3 };
    eprintln!("[crossval] scale = {}, k = {k}", scale.name);
    let corpus = noodle_bench_gen::generate_corpus(&scale.corpus);
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus parses");
    for (label, amplify) in
        [("with GAN amplification", scale.noodle.amplify_per_class), ("without GAN (raw pool)", 0)]
    {
        let mut config = scale.noodle;
        config.amplify_per_class = amplify;
        let mut rng = StdRng::seed_from_u64(42);
        let cv = cross_validate(&dataset, &config, k, &mut rng).expect("cross-validation runs");
        println!("\n{k}-fold cross-validation over {} real designs — {label}:", dataset.len());
        println!("{:<46} {:>12} {:>10} {:>12}", "strategy", "mean Brier", "std", "pooled Brier");
        for strategy in FusionStrategy::ALL {
            let summary = cv.summary_of(strategy);
            let (probs, outcomes) = cv.pooled(strategy);
            println!(
                "{:<46} {:>12.4} {:>10.4} {:>12.4}",
                strategy.label(),
                summary.mean,
                summary.std_dev,
                brier_score(&probs, &outcomes),
            );
        }
        let (probs, outcomes) = cv.pooled(FusionStrategy::LateFusion);
        println!(
            "pooled late-fusion AUC over all real designs: {:.3}",
            roc_curve(&probs, &outcomes).auc()
        );
    }
    println!(
        "\nnote: these are the leakage-free numbers; compare with the paper-protocol \
         figures in table1/EXPERIMENTS.md."
    );
}
