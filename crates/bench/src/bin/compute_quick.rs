//! Scripts-free quick benchmark for the compute kernels.
//!
//! Times the lowered (im2col + blocked GEMM) convolution and matmul paths
//! against faithful copies of the pre-lowering naive kernels, and writes a
//! machine-readable `BENCH_compute.json`:
//!
//! ```text
//! cargo run --release -p noodle-bench --bin compute_quick -- [--out PATH] [--iters N]
//! ```
//!
//! The JSON reports the median ns/iter per kernel plus naive-vs-lowered
//! speedups, so CI can assert the GEMM path stays ahead without carrying
//! a criterion baseline around. The headline kernels are also re-timed
//! with the SIMD dispatch pinned to the scalar reference bodies
//! (`*_scalar` keys), and the vector-vs-scalar ratios land under
//! `speedup.simd_*`; the active ISA is recorded in the `simd` field.

use std::time::Instant;

use noodle_nn::{Conv2d, Layer, Mode, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Graph-image geometry from the modality classifiers.
const CHANNELS: usize = 2;
const SIZE: usize = 12;
const COUT: usize = 8;
const KERNEL: usize = 3;
const PAD: usize = 1;
const BATCH: usize = 16;

fn main() {
    let mut out_path = String::from("BENCH_compute.json");
    let mut iters: usize = 200;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--iters" if i + 1 < args.len() => {
                iters = args[i + 1].parse().expect("--iters expects a number");
                i += 2;
            }
            other => {
                eprintln!("usage: compute_quick [--out PATH] [--iters N] (got `{other}`)");
                std::process::exit(2);
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(0);
    let mut results: Vec<(String, u128)> = Vec::new();

    // --- conv2d forward: lowered vs naive --------------------------------
    let mut conv: Layer = Conv2d::new(CHANNELS, COUT, KERNEL, PAD, &mut rng).into();
    let x = Tensor::rand_uniform(&[BATCH, CHANNELS, SIZE, SIZE], -1.0, 1.0, &mut rng);
    let weight = Tensor::rand_uniform(&[COUT * CHANNELS * KERNEL * KERNEL], -1.0, 1.0, &mut rng);
    let bias = vec![0.1f32; COUT];
    results.push((
        "conv2d_forward_b16".into(),
        median_ns(iters, || {
            black_box(conv.forward(black_box(&x), Mode::Train));
        }),
    ));
    let mut naive_out = vec![0.0f32; BATCH * COUT * SIZE * SIZE];
    results.push((
        "conv2d_forward_b16_naive".into(),
        median_ns(iters, || {
            conv2d_forward_naive(black_box(x.data()), weight.data(), &bias, &mut naive_out);
            black_box(&naive_out);
        }),
    ));

    // --- conv2d backward (lowered only; the naive path is gone) ----------
    let gy = conv.forward(&x, Mode::Train);
    results.push((
        "conv2d_backward_b16".into(),
        median_ns(iters, || {
            black_box(conv.backward(black_box(&gy)));
        }),
    ));

    // --- head matmul: lowered vs naive ------------------------------------
    let (m, k, n) = (BATCH, 144, 32);
    let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
    results.push((
        "matmul_16x144x32".into(),
        median_ns(iters, || {
            black_box(black_box(&a).matmul(&b));
        }),
    ));
    let mut naive_mm = vec![0.0f32; m * n];
    results.push((
        "matmul_16x144x32_naive".into(),
        median_ns(iters, || {
            matmul_naive(m, k, n, black_box(a.data()), b.data(), &mut naive_mm);
            black_box(&naive_mm);
        }),
    ));

    // --- im2col lowering ---------------------------------------------------
    let sample = &x.data()[..CHANNELS * SIZE * SIZE];
    let mut cols = vec![0.0f32; CHANNELS * KERNEL * KERNEL * SIZE * SIZE];
    results.push((
        "im2col_2d_2x12x12_k3".into(),
        median_ns(iters, || {
            noodle_nn::lowering::im2col_2d(
                black_box(sample),
                CHANNELS,
                SIZE,
                SIZE,
                KERNEL,
                PAD,
                SIZE,
                SIZE,
                &mut cols,
            );
            black_box(&cols);
        }),
    ));

    // --- scalar-pinned reruns of the SIMD headline kernels -----------------
    // The lowered paths above dispatch to the widest ISA the host offers;
    // pinning the override to the scalar reference bodies re-times the same
    // code with vectorization off, so the JSON carries the SIMD speedup as a
    // first-class metric (`speedup.simd_*`) that CI can gate on.
    noodle_compute::set_simd_override(Some(false));
    results.push((
        "conv2d_forward_b16_scalar".into(),
        median_ns(iters, || {
            black_box(conv.forward(black_box(&x), Mode::Train));
        }),
    ));
    results.push((
        "matmul_16x144x32_scalar".into(),
        median_ns(iters, || {
            black_box(black_box(&a).matmul(&b));
        }),
    ));
    noodle_compute::set_simd_override(None);

    let json = render_json(&results, iters);
    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("{json}");
    eprintln!("benchmark results written to {out_path}");
}

/// Median wall-clock nanoseconds per call over `iters` timed calls (three
/// untimed warmup calls first).
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    for _ in 0..3 {
        f();
    }
    let mut times: Vec<u128> = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_nanos());
    }
    times.sort_unstable();
    times[times.len() / 2]
}

/// Faithful copy of the pre-lowering Conv2d forward (six nested loops over
/// `[batch, cout, oh, ow, cin, kh, kw]` with per-tap bounds checks), kept
/// here as the speedup baseline.
fn conv2d_forward_naive(x: &[f32], wt: &[f32], bias: &[f32], o: &mut [f32]) {
    let (batch, cin, h, w) = (BATCH, CHANNELS, SIZE, SIZE);
    let (cout, k, pad) = (COUT, KERNEL, PAD);
    let (oh, ow) = (h + 2 * pad - k + 1, w + 2 * pad - k + 1);
    for b in 0..batch {
        for co in 0..cout {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[co];
                    for ci in 0..cin {
                        for ky in 0..k {
                            let sy = oy + ky;
                            if sy < pad || sy >= pad + h {
                                continue;
                            }
                            for kx in 0..k {
                                let sx = ox + kx;
                                if sx < pad || sx >= pad + w {
                                    continue;
                                }
                                let xi = x[((b * cin + ci) * h + (sy - pad)) * w + (sx - pad)];
                                acc += xi * wt[((co * cin + ci) * k + ky) * k + kx];
                            }
                        }
                    }
                    o[((b * cout + co) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
}

/// Faithful copy of the pre-lowering `Tensor::matmul` inner loops,
/// including its `a == 0.0` skip branch.
fn matmul_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    out.fill(0.0);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += av * b[p * n + j];
            }
        }
    }
}

/// Renders the results as the `BENCH_compute.json` schema by hand, so the
/// insertion order above is the key order on disk and baseline diffs stay
/// small.
fn render_json(results: &[(String, u128)], iters: usize) -> String {
    let lookup = |name: &str| results.iter().find(|(n, _)| n == name).map(|(_, ns)| *ns);
    let mut kernels = String::new();
    for (idx, (name, ns)) in results.iter().enumerate() {
        if idx > 0 {
            kernels.push_str(",\n");
        }
        kernels.push_str(&format!("    \"{name}\": {{\"median_ns\": {ns}, \"iters\": {iters}}}"));
    }
    let mut speedups = String::new();
    for (label, kernel, slow_key) in [
        ("conv2d_forward_b16", "conv2d_forward_b16", "conv2d_forward_b16_naive"),
        ("matmul_16x144x32", "matmul_16x144x32", "matmul_16x144x32_naive"),
        ("simd_conv2d_forward_b16", "conv2d_forward_b16", "conv2d_forward_b16_scalar"),
        ("simd_matmul_16x144x32", "matmul_16x144x32", "matmul_16x144x32_scalar"),
    ] {
        if let (Some(fast), Some(slow)) = (lookup(kernel), lookup(slow_key)) {
            if !speedups.is_empty() {
                speedups.push_str(",\n");
            }
            let ratio = slow as f64 / fast.max(1) as f64;
            speedups.push_str(&format!("    \"{label}\": {ratio:.3}"));
        }
    }
    format!(
        "{{\n  \"schema_version\": 1,\n  \"threads\": {},\n  \"simd\": \"{}\",\n  \"kernels\": {{\n{kernels}\n  }},\n  \"speedup\": {{\n{speedups}\n  }}\n}}\n",
        noodle_compute::num_threads(),
        noodle_compute::active_isa().name(),
    )
}
