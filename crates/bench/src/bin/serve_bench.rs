//! Load generator for the `noodle-serve` daemon: latency vs offered QPS.
//!
//! Fits a fast detector once, starts an in-process [`ServeEngine`] on an
//! ephemeral port, then drives it over real TCP in three phases:
//!
//! - **calibration**: N closed-loop clients (send, wait, repeat) measure
//!   the sustainable ceiling `max_qps`;
//! - **light**: open-loop paced traffic at 0.5x the ceiling — the
//!   latency here is deadline-dominated and should be stable across
//!   machines;
//! - **overload**: open-loop at 2x the ceiling — admission control must
//!   shed rather than let latency grow without bound.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin serve_bench -- \
//!     [--out PATH] [--clients N] [--requests N]
//! ```
//!
//! Writes `BENCH_serve.json` with client-observed p50/p99 end-to-end
//! latency per level plus the shed fraction. `shed_frac` is skipped by
//! `bench_compare` (overload sheds by design; the fraction tracks the
//! machine's ceiling, not code quality), and every request is asserted
//! to receive exactly one response at every level.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use noodle_bench_gen::{generate_corpus, Benchmark, CorpusConfig};
use noodle_core::{MultimodalDataset, NoodleConfig, NoodleDetector};
use noodle_serve::{ServeConfig, ServeController, ServeEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut out_path = String::from("BENCH_serve.json");
    let mut clients: usize = 8;
    let mut requests: usize = 24;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--clients" if i + 1 < args.len() => {
                clients = args[i + 1].parse().expect("--clients expects a number");
                i += 2;
            }
            "--requests" if i + 1 < args.len() => {
                requests = args[i + 1].parse().expect("--requests expects a number");
                i += 2;
            }
            other => {
                eprintln!(
                    "usage: serve_bench [--out PATH] [--clients N] [--requests N] (got `{other}`)"
                );
                std::process::exit(2);
            }
        }
    }
    let clients = clients.max(1);
    let requests = requests.max(4);

    eprintln!("fitting detector (fast config)...");
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 11 });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus extracts cleanly");
    let mut rng = StdRng::seed_from_u64(1);
    let detector =
        NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).expect("fit succeeds");

    let probe: Arc<Vec<Benchmark>> =
        Arc::new(generate_corpus(&CorpusConfig { trojan_free: 8, trojan_infected: 4, seed: 997 }));

    let config = ServeConfig {
        batch_deadline: Duration::from_millis(10),
        queue_cap: 4 * clients,
        ..ServeConfig::default()
    };
    let deadline_ms = config.batch_deadline.as_millis() as u64;
    let engine = ServeEngine::start(detector, None, None, None, config, ServeController::new())
        .expect("engine binds an ephemeral port");
    let addr = engine.addr();
    eprintln!("daemon at {addr}, {clients} clients, {requests} requests/client/level");

    // Phase 1 — closed loop: each client keeps exactly one request in
    // flight, so aggregate throughput is the daemon's sustainable ceiling.
    let calib_start = Instant::now();
    let calib: Vec<LevelStats> =
        run_clients(clients, |_| closed_loop(addr, requests, Arc::clone(&probe)));
    let calib_wall = calib_start.elapsed().as_secs_f64();
    let served: usize = calib.iter().map(|s| s.latencies_us.len()).sum();
    assert_eq!(served, clients * requests, "calibration lost responses");
    let max_qps = served as f64 / calib_wall;
    eprintln!("ceiling: {max_qps:.1} req/s over {calib_wall:.2}s");

    // Phases 2 and 3 — open loop at fixed offered rates around the
    // ceiling.
    let light = offered_level(addr, clients, requests, max_qps * 0.5, &probe);
    let overload = offered_level(addr, clients, requests, max_qps * 2.0, &probe);

    engine.join();

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"threads\": {},\n  \"simd\": \"{}\",\n  \
         \"clients\": {clients},\n  \"batch_deadline_ms\": {deadline_ms},\n  \
         \"max_qps\": {max_qps:.2},\n  \"latency_us\": {{\n    \
         \"light\": {{ \"p50\": {:.0}, \"p99\": {:.0} }},\n    \
         \"overload\": {{ \"p50\": {:.0}, \"p99\": {:.0} }}\n  }},\n  \
         \"shed_frac\": {{ \"light\": {:.4}, \"overload\": {:.4} }}\n}}\n",
        noodle_compute::num_threads(),
        noodle_compute::active_isa().name(),
        light.p50(),
        light.p99(),
        overload.p50(),
        overload.p99(),
        light.shed_frac(),
        overload.shed_frac(),
    );
    std::fs::write(&out_path, &json).expect("cannot write benchmark JSON");
    println!("{json}");
    eprintln!("benchmark results written to {out_path}");
}

/// Per-client tally of one load level.
#[derive(Debug, Default)]
struct LevelStats {
    /// Client-observed end-to-end latency of each verdict, µs.
    latencies_us: Vec<f64>,
    shed: usize,
    errors: usize,
}

impl LevelStats {
    fn merge(mut tallies: Vec<LevelStats>) -> LevelStats {
        let mut total = LevelStats::default();
        for tally in &mut tallies {
            total.latencies_us.append(&mut tally.latencies_us);
            total.shed += tally.shed;
            total.errors += tally.errors;
        }
        total.latencies_us.sort_by(|a, b| a.total_cmp(b));
        total
    }

    fn quantile(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1]
    }

    fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    fn shed_frac(&self) -> f64 {
        let total = self.latencies_us.len() + self.shed + self.errors;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

/// Spawns `clients` threads and merges their tallies.
fn run_clients(
    clients: usize,
    client: impl Fn(usize) -> LevelStats + Send + Sync,
) -> Vec<LevelStats> {
    let client = &client;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients).map(|c| scope.spawn(move || client(c))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    })
}

fn request_line(id: usize, probe: &[Benchmark]) -> String {
    let bench = &probe[id % probe.len()];
    format!(
        "{}\n",
        serde_json::json!({ "design": bench.name, "source": bench.source, "id": id as u64 })
    )
}

/// Classifies one response line into the tally; returns the echoed id.
fn tally_response(line: &str, stats: &mut LevelStats) -> u64 {
    let value: serde_json::Value = serde_json::from_str(line).expect("daemon speaks JSON");
    let id = value["id"].as_u64().expect("responses echo the request id");
    match value["type"].as_str() {
        Some("verdict") => {}
        Some("shed") => stats.shed += 1,
        _ => stats.errors += 1,
    }
    id
}

/// One closed-loop client: send, wait for the answer, repeat.
fn closed_loop(
    addr: std::net::SocketAddr,
    requests: usize,
    probe: Arc<Vec<Benchmark>>,
) -> LevelStats {
    let stream = TcpStream::connect(addr).expect("daemon accepts connections");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("socket configures");
    let mut writer = stream.try_clone().expect("socket clones");
    let mut reader = BufReader::new(stream);
    let mut stats = LevelStats::default();
    let mut line = String::new();
    for id in 0..requests {
        let sent = Instant::now();
        writer.write_all(request_line(id, &probe).as_bytes()).expect("request writes");
        line.clear();
        reader.read_line(&mut line).expect("daemon answers within the timeout");
        let echoed = tally_response(&line, &mut stats);
        assert_eq!(echoed, id as u64, "closed loop has one request in flight");
        if line.contains("\"verdict\"") {
            stats.latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    stats
}

/// One open-loop load level: every client paces `requests` submissions at
/// `offered_qps / clients` each and a companion reader correlates the
/// responses by id. Asserts exactly one response per request.
fn offered_level(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    offered_qps: f64,
    probe: &Arc<Vec<Benchmark>>,
) -> LevelStats {
    let interval = Duration::from_secs_f64(clients as f64 / offered_qps.max(1.0));
    let tallies = run_clients(clients, |_| {
        let stream = TcpStream::connect(addr).expect("daemon accepts connections");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("socket configures");
        let mut writer = stream.try_clone().expect("socket clones");
        // The sender stamps each request's send time here before the line
        // hits the socket, so the reader always finds it populated (a
        // response cannot overtake its own request).
        let sent_at: Arc<std::sync::Mutex<Vec<Option<Instant>>>> =
            Arc::new(std::sync::Mutex::new(vec![None; requests]));
        let reader = std::thread::spawn({
            let stream = stream.try_clone().expect("socket clones");
            let sent_at = Arc::clone(&sent_at);
            move || {
                let mut stats = LevelStats::default();
                let mut reader = BufReader::new(stream);
                let mut pending = requests;
                let mut line = String::new();
                while pending > 0 {
                    line.clear();
                    reader.read_line(&mut line).expect("daemon answers within the timeout");
                    assert!(!line.is_empty(), "daemon closed with responses outstanding");
                    let id = tally_response(&line, &mut stats) as usize;
                    if line.contains("\"verdict\"") {
                        let sent = sent_at.lock().unwrap()[id].expect("send precedes response");
                        stats.latencies_us.push(sent.elapsed().as_secs_f64() * 1e6);
                    }
                    pending -= 1;
                }
                stats
            }
        });
        // Paced sender: target send times are fixed on the level clock, so
        // a slow daemon does not slow the offered rate down (open loop).
        let start = Instant::now();
        for id in 0..requests {
            let target = start + interval.mul_f64(id as f64);
            if let Some(wait) = target.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            sent_at.lock().unwrap()[id] = Some(Instant::now());
            writer.write_all(request_line(id, probe).as_bytes()).expect("request writes");
        }
        reader.join().expect("reader thread panicked")
    });
    let total: usize = tallies.iter().map(|t| t.latencies_us.len() + t.shed + t.errors).sum();
    assert_eq!(total, clients * requests, "a request went unanswered at {offered_qps:.0} qps");
    LevelStats::merge(tallies)
}
