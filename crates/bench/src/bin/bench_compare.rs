//! Compares a fresh benchmark JSON against a checked-in baseline and
//! flags regressions, so CI can catch performance cliffs without carrying
//! criterion state around:
//!
//! ```text
//! cargo run --release -p noodle-bench --bin bench_compare -- \
//!     <baseline.json> <current.json> [--warn-pct 10] [--fail-pct 25]
//! ```
//!
//! Both files are flattened to dotted numeric leaves
//! (`kernels.matmul_16x144x32.median_ns`, `files_per_sec.batch_32`, ...).
//! Keys whose last segment is environment metadata (`schema_version`,
//! `threads`, `files`, `iters`) are skipped. Direction is inferred from
//! the key: `*_ns` / `*latency*` leaves regress when they grow,
//! everything else (`speedup`, `files_per_sec`) regresses when it
//! shrinks. A regression past `--warn-pct` prints a warning; past
//! `--fail-pct` the process exits non-zero. Keys present on only one
//! side are reported but never fatal, so baselines survive added
//! kernels.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut warn_pct = 10.0f64;
    let mut fail_pct = 25.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--warn-pct" if i + 1 < args.len() => {
                warn_pct = args[i + 1].parse().expect("--warn-pct expects a number");
                i += 2;
            }
            "--fail-pct" if i + 1 < args.len() => {
                fail_pct = args[i + 1].parse().expect("--fail-pct expects a number");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "usage: bench_compare <baseline.json> <current.json> \
                     [--warn-pct P] [--fail-pct P] (got `{flag}`)"
                );
                return ExitCode::from(2);
            }
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <current.json> [--warn-pct P] [--fail-pct P]"
        );
        return ExitCode::from(2);
    };

    let baseline = load(baseline_path);
    let current = load(current_path);
    let mut worst: Option<(String, f64)> = None;
    let mut warned = 0usize;

    println!("{:<44} {:>14} {:>14} {:>9}", "metric", "baseline", "current", "delta");
    for (key, base) in &baseline {
        let Some(now) = current.get(key) else {
            println!("{key:<44} {base:>14.3} {:>14} {:>9}", "missing", "-");
            continue;
        };
        if *base == 0.0 {
            continue;
        }
        // Positive = regression, in percent, regardless of direction.
        let regression = if lower_is_better(key) {
            (now - base) / base * 100.0
        } else {
            (base - now) / base * 100.0
        };
        let marker = if regression > fail_pct {
            "FAIL"
        } else if regression > warn_pct {
            "WARN"
        } else {
            "ok"
        };
        println!("{key:<44} {base:>14.3} {now:>14.3} {regression:>+8.1}% {marker}");
        if regression > warn_pct {
            warned += 1;
        }
        if worst.as_ref().is_none_or(|(_, w)| regression > *w) {
            worst = Some((key.clone(), regression));
        }
    }
    for key in current.keys() {
        if !baseline.contains_key(key) {
            println!("{key:<44} {:>14} (new metric, no baseline)", "-");
        }
    }

    match worst {
        Some((key, regression)) if regression > fail_pct => {
            eprintln!(
                "FAIL: `{key}` regressed {regression:.1}% (threshold {fail_pct}%) \
                 against {baseline_path}"
            );
            ExitCode::FAILURE
        }
        _ => {
            if warned > 0 {
                eprintln!(
                    "WARN: {warned} metric(s) regressed past {warn_pct}% (fail at {fail_pct}%)"
                );
            } else {
                eprintln!("ok: no metric regressed past {warn_pct}% against {baseline_path}");
            }
            ExitCode::SUCCESS
        }
    }
}

fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let value: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
    let mut flat = BTreeMap::new();
    flatten("", &value, &mut flat);
    flat
}

/// Flattens numeric leaves into dotted paths, dropping environment
/// metadata that legitimately differs between machines and runs.
fn flatten(prefix: &str, value: &serde_json::Value, out: &mut BTreeMap<String, f64>) {
    const SKIP: &[&str] = &["schema_version", "threads", "files", "iters"];
    match value {
        serde_json::Value::Object(map) => {
            for (key, child) in map {
                if SKIP.contains(&key.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                flatten(&path, child, out);
            }
        }
        serde_json::Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                out.insert(prefix.to_string(), f);
            }
        }
        // Strings (provenance notes), bools, nulls and arrays are not
        // benchmark metrics.
        _ => {}
    }
}

/// Whether a smaller value is the better one for this metric key.
fn lower_is_better(key: &str) -> bool {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    leaf.ends_with("_ns") || leaf == "ns" || leaf.contains("latency")
}
