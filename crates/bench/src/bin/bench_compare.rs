//! Compares a fresh benchmark JSON against a checked-in baseline and
//! flags regressions, so CI can catch performance cliffs without carrying
//! criterion state around:
//!
//! ```text
//! cargo run --release -p noodle-bench --bin bench_compare -- \
//!     <baseline.json> <current.json> [--warn-pct 10] [--fail-pct 25]
//! ```
//!
//! Both files are flattened to dotted numeric leaves
//! (`kernels.matmul_16x144x32.median_ns`, `files_per_sec.batch_32`, ...).
//! Keys whose segment is environment metadata (`schema_version`,
//! `threads`, `files`, `iters`) or deliberately load-dependent
//! (`shed_frac`: the serve bench induces shedding at its overload level,
//! and direction inference would misread a smaller fraction as a
//! regression) are skipped. Direction is inferred from
//! the key: `*_ns` / `*latency*` leaves regress when they grow,
//! everything else (`speedup`, `files_per_sec`) regresses when it
//! shrinks. A regression past `--warn-pct` prints a warning; past
//! `--fail-pct` the process exits non-zero. Keys present on only one
//! side — a baseline metric the current run no longer emits, or a new
//! metric with no baseline yet — are warned about but never fatal, so
//! baselines survive added and renamed kernels (the warning is the cue
//! to regenerate).

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut warn_pct = 10.0f64;
    let mut fail_pct = 25.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--warn-pct" if i + 1 < args.len() => {
                warn_pct = args[i + 1].parse().expect("--warn-pct expects a number");
                i += 2;
            }
            "--fail-pct" if i + 1 < args.len() => {
                fail_pct = args[i + 1].parse().expect("--fail-pct expects a number");
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "usage: bench_compare <baseline.json> <current.json> \
                     [--warn-pct P] [--fail-pct P] (got `{flag}`)"
                );
                return ExitCode::from(2);
            }
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_compare <baseline.json> <current.json> [--warn-pct P] [--fail-pct P]"
        );
        return ExitCode::from(2);
    };

    let baseline = load(baseline_path);
    let current = load(current_path);
    let outcome = compare(&baseline, &current, warn_pct, fail_pct);

    println!("{:<44} {:>14} {:>14} {:>9}", "metric", "baseline", "current", "delta");
    for line in &outcome.lines {
        println!("{line}");
    }
    for key in &outcome.missing {
        eprintln!("WARN: baseline metric `{key}` is missing from {current_path} (not fatal)");
    }
    for key in &outcome.added {
        eprintln!("WARN: `{key}` has no baseline in {baseline_path} (not fatal)");
    }

    match &outcome.worst {
        Some((key, regression)) if *regression > fail_pct => {
            eprintln!(
                "FAIL: `{key}` regressed {regression:.1}% (threshold {fail_pct}%) \
                 against {baseline_path}"
            );
            ExitCode::FAILURE
        }
        _ => {
            if outcome.warned > 0 {
                eprintln!(
                    "WARN: {} metric(s) regressed past {warn_pct}% (fail at {fail_pct}%)",
                    outcome.warned
                );
            } else {
                eprintln!("ok: no metric regressed past {warn_pct}% against {baseline_path}");
            }
            ExitCode::SUCCESS
        }
    }
}

/// What a baseline-vs-current comparison found. Only `worst` past the fail
/// threshold makes the run fatal; one-sided keys are advisory.
struct Outcome {
    /// One formatted table row per metric present on both sides.
    lines: Vec<String>,
    /// Baseline keys the current run no longer emits.
    missing: Vec<String>,
    /// Current keys with no baseline yet.
    added: Vec<String>,
    /// Metrics whose regression exceeded the warn threshold.
    warned: usize,
    /// The single worst regression (positive percent), if any metric was
    /// comparable at all.
    worst: Option<(String, f64)>,
}

/// Pure comparison over flattened metric maps; `main` only does IO around
/// this so the warn/fail semantics are unit-testable.
fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    warn_pct: f64,
    fail_pct: f64,
) -> Outcome {
    let mut outcome = Outcome {
        lines: Vec::new(),
        missing: Vec::new(),
        added: Vec::new(),
        warned: 0,
        worst: None,
    };
    for (key, base) in baseline {
        let Some(now) = current.get(key) else {
            outcome.missing.push(key.clone());
            continue;
        };
        if *base == 0.0 {
            continue;
        }
        // Positive = regression, in percent, regardless of direction.
        let regression = if lower_is_better(key) {
            (now - base) / base * 100.0
        } else {
            (base - now) / base * 100.0
        };
        let marker = if regression > fail_pct {
            "FAIL"
        } else if regression > warn_pct {
            "WARN"
        } else {
            "ok"
        };
        outcome
            .lines
            .push(format!("{key:<44} {base:>14.3} {now:>14.3} {regression:>+8.1}% {marker}"));
        if regression > warn_pct {
            outcome.warned += 1;
        }
        if outcome.worst.as_ref().is_none_or(|(_, w)| regression > *w) {
            outcome.worst = Some((key.clone(), regression));
        }
    }
    for key in current.keys() {
        if !baseline.contains_key(key) {
            outcome.added.push(key.clone());
        }
    }
    outcome
}

fn load(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let value: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} is not JSON: {e}"));
    let mut flat = BTreeMap::new();
    flatten("", &value, &mut flat);
    flat
}

/// Flattens numeric leaves into dotted paths, dropping environment
/// metadata that legitimately differs between machines and runs.
fn flatten(prefix: &str, value: &serde_json::Value, out: &mut BTreeMap<String, f64>) {
    const SKIP: &[&str] = &["schema_version", "threads", "files", "iters", "shed_frac"];
    match value {
        serde_json::Value::Object(map) => {
            for (key, child) in map {
                if SKIP.contains(&key.as_str()) {
                    continue;
                }
                let path = if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                flatten(&path, child, out);
            }
        }
        serde_json::Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                out.insert(prefix.to_string(), f);
            }
        }
        // Strings (provenance notes), bools, nulls and arrays are not
        // benchmark metrics.
        _ => {}
    }
}

/// Whether a smaller value is the better one for this metric key. Any
/// `latency` segment marks the whole subtree (`latency_us.light.p50`
/// regresses when it grows, even though the leaf is just `p50`).
fn lower_is_better(key: &str) -> bool {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    leaf.ends_with("_ns") || leaf == "ns" || key.contains("latency")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    /// A baseline key absent from the current run is a warning, never a
    /// failure — CI keeps passing while the baseline catches up.
    #[test]
    fn missing_baseline_key_warns_but_never_fails() {
        let baseline = metrics(&[("speedup.batch", 3.0), ("speedup.quantize", 1.4)]);
        let current = metrics(&[("speedup.batch", 3.0)]);
        let outcome = compare(&baseline, &current, 10.0, 25.0);
        assert_eq!(outcome.missing, vec!["speedup.quantize".to_string()]);
        assert_eq!(outcome.warned, 0);
        let worst = outcome.worst.expect("the shared key is comparable");
        assert!(worst.1 <= 25.0, "a one-sided key must not register as a regression: {worst:?}");
    }

    /// New metrics with no baseline are reported as additions, and do not
    /// affect the worst-regression verdict.
    #[test]
    fn new_metric_without_baseline_is_advisory() {
        let baseline = metrics(&[("kernels.matmul.median_ns", 1000.0)]);
        let current = metrics(&[
            ("kernels.matmul.median_ns", 1000.0),
            ("kernels.matmul_scalar.median_ns", 5000.0),
        ]);
        let outcome = compare(&baseline, &current, 10.0, 25.0);
        assert_eq!(outcome.added, vec!["kernels.matmul_scalar.median_ns".to_string()]);
        assert_eq!(outcome.warned, 0);
        assert!(outcome.worst.unwrap().1 <= 25.0);
    }

    /// Direction inference: `*_ns` regresses when it grows, throughput-like
    /// keys regress when they shrink; crossing the fail threshold surfaces
    /// in `worst`.
    #[test]
    fn regressions_respect_metric_direction() {
        let baseline =
            metrics(&[("kernels.gemm.median_ns", 1000.0), ("files_per_sec.batch_32", 600.0)]);
        let faster =
            metrics(&[("kernels.gemm.median_ns", 500.0), ("files_per_sec.batch_32", 900.0)]);
        let outcome = compare(&baseline, &faster, 10.0, 25.0);
        assert_eq!(outcome.warned, 0, "improvements in both directions are not regressions");

        let slower =
            metrics(&[("kernels.gemm.median_ns", 2000.0), ("files_per_sec.batch_32", 300.0)]);
        let outcome = compare(&baseline, &slower, 10.0, 25.0);
        assert_eq!(outcome.warned, 2);
        let (_, pct) = outcome.worst.expect("both metrics regressed");
        assert!(pct > 25.0, "a 2x cliff must cross the fail threshold: {pct}");
    }

    /// Quantile leaves under a `latency` segment inherit lower-is-better
    /// from the path, not the leaf.
    #[test]
    fn latency_quantiles_are_lower_is_better() {
        let baseline = metrics(&[("latency_us.light.p99", 1000.0)]);
        let faster = metrics(&[("latency_us.light.p99", 500.0)]);
        assert_eq!(compare(&baseline, &faster, 10.0, 25.0).warned, 0);
        let slower = metrics(&[("latency_us.light.p99", 2000.0)]);
        let outcome = compare(&baseline, &slower, 10.0, 25.0);
        assert!(outcome.worst.unwrap().1 > 25.0, "a 2x latency cliff is a regression");
    }

    /// `shed_frac` subtrees are environment/load-dependent (the overload
    /// level of the serve bench sheds by design) and never flattened into
    /// comparable metrics.
    #[test]
    fn shed_fraction_subtrees_are_skipped() {
        let value: serde_json::Value = serde_json::from_str(
            r#"{"latency_us":{"light":{"p50":900.0}},"shed_frac":{"light":0.0,"overload":0.4}}"#,
        )
        .unwrap();
        let mut flat = BTreeMap::new();
        flatten("", &value, &mut flat);
        assert!(flat.contains_key("latency_us.light.p50"));
        assert!(
            !flat.keys().any(|k| k.contains("shed_frac")),
            "shed fractions must not be compared: {flat:?}"
        );
    }

    /// A zero-valued baseline leaf (e.g. `verdict_flips: 0`) cannot be
    /// expressed as a percentage and is skipped rather than dividing by
    /// zero.
    #[test]
    fn zero_baseline_leaves_are_skipped() {
        let baseline = metrics(&[("verdict_flips", 0.0)]);
        let current = metrics(&[("verdict_flips", 3.0)]);
        let outcome = compare(&baseline, &current, 10.0, 25.0);
        assert!(outcome.lines.is_empty());
        assert!(outcome.worst.is_none());
    }
}
