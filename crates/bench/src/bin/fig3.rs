//! Regenerates **Fig. 3**: the confidence calibration (reliability) curve
//! of the winning fusion model on the test split, plus the sharpness
//! histogram of predicted probabilities shown beneath it in the paper.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin fig3
//! ```

use noodle_bench::{fit_detector, paper_scale, scale_from_env};
use noodle_metrics::calibration_curve;

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[fig3] scale = {}", scale.name);
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation();
    let probs = eval.probs_of(eval.winner);
    let outcomes = eval.test_outcomes();
    let curve = calibration_curve(probs, &outcomes, 10);

    println!(
        "Fig. 3: confidence calibration curve ({:?}, {} test designs)",
        eval.winner,
        probs.len()
    );
    println!(
        "{:>12} {:>12} {:>14} {:>8}   diagonal-gap",
        "bin", "mean pred", "observed freq", "count"
    );
    for bin in curve.bins() {
        if bin.count == 0 {
            println!("{:>5.2}-{:>5.2} {:>12} {:>14} {:>8}", bin.lo, bin.hi, "-", "-", 0);
            continue;
        }
        println!(
            "{:>5.2}-{:>5.2} {:>12.3} {:>14.3} {:>8}   {:+.3}",
            bin.lo,
            bin.hi,
            bin.mean_predicted,
            bin.observed_frequency,
            bin.count,
            bin.observed_frequency - bin.mean_predicted,
        );
    }
    println!("\nexpected calibration error: {:.4}", curve.expected_calibration_error());
    println!("sharpness (variance of predictions): {:.4}", curve.sharpness());

    println!("\nsharpness histogram of the {} test predictions:", probs.len());
    let histogram = curve.histogram();
    let max = histogram.iter().copied().max().unwrap_or(1).max(1);
    for (bin, &count) in curve.bins().iter().zip(&histogram) {
        let bar = "#".repeat(count * 40 / max);
        println!("{:>5.2}-{:>5.2} | {bar} {count}", bin.lo, bin.hi);
    }
    println!(
        "\nshape check: the paper reports imperfect calibration due to the \
         imbalanced data — a nonzero ECE ({:.3}) with mass at the extremes is expected.",
        curve.expected_calibration_error()
    );
}
