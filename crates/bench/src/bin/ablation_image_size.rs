//! Ablation: **graph-image resolution**. The pipeline embeds each circuit
//! graph into a fixed `size × size × 2` heatmap (default 12). This sweep
//! measures how much label information the embedding retains at each
//! resolution, using leave-one-out 1-nearest-neighbour accuracy on *real*
//! designs (no CNN, no GAN — pure representation quality).
//!
//! ```text
//! cargo run --release -p noodle-bench --bin ablation_image_size
//! ```

use noodle_bench::{paper_scale, scale_from_env};
use noodle_bench_gen::{generate_corpus, CorpusConfig, Label};
use noodle_graph::{build_graph, graph_image_with_size};
use noodle_verilog::parse;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
}

/// Leave-one-out 1-NN accuracy.
fn loo_1nn(vectors: &[Vec<f32>], labels: &[usize]) -> f64 {
    let mut correct = 0usize;
    for i in 0..vectors.len() {
        let mut best = None;
        let mut best_dist = f32::INFINITY;
        for j in 0..vectors.len() {
            if i == j {
                continue;
            }
            let d = euclidean(&vectors[i], &vectors[j]);
            if d < best_dist {
                best_dist = d;
                best = Some(labels[j]);
            }
        }
        if best == Some(labels[i]) {
            correct += 1;
        }
    }
    correct as f64 / vectors.len() as f64
}

fn main() {
    let scale = scale_from_env(paper_scale());
    let n_corpora = if scale.name == "paper" { 6u64 } else { 2 };
    eprintln!("[ablation_image_size] scale = {}, corpora = {n_corpora}", scale.name);
    println!("Ablation: graph-image resolution vs 1-NN label recovery on real designs");
    println!("{:>8} {:>10} {:>14}", "size", "dims", "1-NN accuracy");
    // Parse and build every corpus's graphs once; only the embedding
    // resolution varies inside the sweep.
    let corpora: Vec<(Vec<noodle_graph::CircuitGraph>, Vec<usize>)> = (0..n_corpora)
        .map(|c| {
            let corpus = generate_corpus(&CorpusConfig {
                seed: scale.corpus.seed ^ (c + 1),
                ..scale.corpus
            });
            let graphs = corpus
                .iter()
                .map(|bench| {
                    let file = parse(&bench.source).expect("corpus parses");
                    build_graph(&file.modules[0])
                })
                .collect();
            let labels = corpus
                .iter()
                .map(|bench| (bench.label == Label::TrojanInfected) as usize)
                .collect();
            (graphs, labels)
        })
        .collect();
    for size in [2usize, 4, 6, 8, 12, 16, 24, 32] {
        let mut accs = Vec::new();
        for (graphs, labels) in &corpora {
            let vectors: Vec<Vec<f32>> =
                graphs.iter().map(|g| graph_image_with_size(g, size).data().to_vec()).collect();
            accs.push(loo_1nn(&vectors, labels));
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{:>8} {:>10} {:>14.3}", size, 2 * size * size, mean);
    }
    println!(
        "\nreading: on this confounder-matched corpus, unsupervised nearest-\
         neighbour distance in embedding space stays below the majority-class \
         baseline (0.700) at every resolution — the Trojan signal is not a \
         proximity signal but a multivariate pattern that needs the supervised \
         CNN to extract. Resolution is therefore not the pipeline's bottleneck; \
         the default 12 is chosen for CNN input economy, and very high \
         resolutions only dilute the heatmap (accuracy dips as sparsity grows)."
    );
}
