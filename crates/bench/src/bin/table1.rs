//! Regenerates **Table I**: Brier score for graph-only, tabular-only,
//! early fusion and late fusion, side by side with the paper's values.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin table1
//! ```

use noodle_bench::{fit_detector, paper_scale, print_table1, scale_from_env};

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[table1] scale = {}", scale.name);
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation();
    print_table1(eval);
    println!();
    println!("test designs: {}", eval.test_labels.len());
    println!("winning fusion strategy: {:?}", eval.winner);
    let single_best = eval.brier[0].min(eval.brier[1]);
    let fusion_best = eval.brier[2].min(eval.brier[3]);
    println!(
        "shape check: best fusion ({fusion_best:.4}) {} best single modality ({single_best:.4})",
        if fusion_best <= single_best { "beats" } else { "DOES NOT beat" },
    );
}
