//! Regenerates **Fig. 5**: the radar plot of consolidated metrics —
//! discrimination (AUC, resolution, refinement loss), combined
//! calibration+discrimination (Brier score, Brier skill score) and
//! headline metrics (sensitivity, accuracy) — for the winning fusion model.
//!
//! ```text
//! cargo run --release -p noodle-bench --bin fig5
//! ```

use noodle_bench::{fit_detector, paper_scale, scale_from_env};
use noodle_metrics::{RadarMetrics, RADAR_AXES};

fn main() {
    let scale = scale_from_env(paper_scale());
    eprintln!("[fig5] scale = {}", scale.name);
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation();
    let probs = eval.probs_of(eval.winner);
    let outcomes = eval.test_outcomes();
    let metrics = RadarMetrics::compute(probs, &outcomes);

    println!("Fig. 5: consolidated metrics radar ({:?})", eval.winner);
    println!("\nraw values:");
    println!("  AUC               : {:.4}", metrics.auc);
    println!("  resolution        : {:.4}", metrics.resolution);
    println!("  refinement loss   : {:.4}", metrics.refinement_loss);
    println!("  Brier score       : {:.4}", metrics.brier);
    println!("  Brier skill score : {:.4}", metrics.brier_skill);
    println!("  sensitivity       : {:.4}", metrics.sensitivity);
    println!("  accuracy          : {:.4}", metrics.accuracy);

    println!("\nnormalized radial axes (0 = poor, 1 = ideal):");
    let axes = metrics.normalized_axes();
    for (name, value) in RADAR_AXES.iter().zip(axes) {
        let bar = "#".repeat((value * 40.0).round() as usize);
        println!("  {name:<18} {value:>5.2} |{bar}");
    }
    println!(
        "\nshape check: the paper's radar shows high accuracy with lower \
         sensitivity (false negatives on the rare TI class): accuracy={:.2} vs \
         sensitivity={:.2}.",
        metrics.accuracy, metrics.sensitivity
    );
}
