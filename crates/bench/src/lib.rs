//! # noodle-bench
//!
//! The experiment harness regenerating every table and figure of the
//! NOODLE paper's evaluation section, plus ablations. Each artifact has a
//! binary (`cargo run --release -p noodle-bench --bin <name>`) that prints
//! the same rows/series the paper reports, and a Criterion bench measuring
//! the regeneration cost of a down-scaled variant.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — Brier per modality/fusion |
//! | `fig2` | Fig. 2 — Brier distributions (early/late) with mean interval |
//! | `fig3` | Fig. 3 — confidence calibration curve + sharpness histogram |
//! | `fig4` | Fig. 4 — ROC-AUC under late fusion |
//! | `fig5` | Fig. 5 — radar plot of consolidated metrics |
//! | `ablation_combiners` | p-value combination method sweep |
//! | `ablation_gan` | GAN amplification target sweep |
//! | `ablation_validity` | conformal validity/efficiency vs ε |
//!
//! Scale is controlled by the `NOODLE_SCALE` environment variable:
//! `paper` (default for binaries) reproduces the paper's setup — a ~40
//! design corpus amplified to 500 points with ~110 test points; `quick`
//! (default for Criterion benches) is a down-scaled smoke configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noodle_bench_gen::CorpusConfig;
use noodle_core::{
    EvaluationReport, FusionStrategy, MultimodalDataset, NoodleConfig, NoodleDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully specified experiment scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Pipeline hyperparameters.
    pub noodle: NoodleConfig,
    /// Number of repeated splits for distribution experiments (Fig. 2).
    pub repeats: usize,
    /// Human-readable name.
    pub name: &'static str,
}

/// The paper-faithful scale: 40-design corpus (28 TF / 12 TI) amplified to
/// 500 points, ~110 test designs (the paper's Fig. 3 histogram shows 109).
pub fn paper_scale() -> Scale {
    Scale {
        corpus: CorpusConfig::default(),
        noodle: NoodleConfig { train_imputers: false, ..NoodleConfig::default() },
        repeats: 20,
        name: "paper",
    }
}

/// A down-scaled smoke configuration for Criterion runs and CI.
pub fn quick_scale() -> Scale {
    Scale {
        corpus: CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 0x0D00D1E },
        noodle: NoodleConfig::fast(),
        repeats: 5,
        name: "quick",
    }
}

/// Reads `NOODLE_SCALE` (`paper`/`quick`), defaulting to the given scale.
pub fn scale_from_env(default: Scale) -> Scale {
    match std::env::var("NOODLE_SCALE").as_deref() {
        Ok("paper") => paper_scale(),
        Ok("quick") => quick_scale(),
        _ => default,
    }
}

/// Generates the corpus, extracts modalities and fits a detector for one
/// seed.
///
/// # Panics
///
/// Panics if the corpus fails to build or the fit fails — experiment
/// binaries want a loud failure, not a hedge.
pub fn fit_detector(scale: &Scale, seed: u64) -> NoodleDetector {
    // Each experiment seed draws its own corpus, so repeated-run
    // distributions (Fig. 2) capture dataset-level variability and means
    // are not hostage to one corpus draw's sampling noise.
    let corpus_config = CorpusConfig { seed: scale.corpus.seed ^ seed, ..scale.corpus };
    let corpus = noodle_bench_gen::generate_corpus(&corpus_config);
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus must parse cleanly");
    let mut rng = StdRng::seed_from_u64(seed);
    NoodleDetector::fit(&dataset, &scale.noodle, &mut rng).expect("pipeline fit must succeed")
}

/// The paper's Table I reference values, for side-by-side printing.
pub const PAPER_TABLE1: [(FusionStrategy, f64); 4] = [
    (FusionStrategy::GraphOnly, 0.1798),
    (FusionStrategy::TabularOnly, 0.1913),
    (FusionStrategy::EarlyFusion, 0.1685),
    (FusionStrategy::LateFusion, 0.1589),
];

/// The paper's reported late-fusion ROC-AUC (Fig. 4).
pub const PAPER_AUC: f64 = 0.928;

/// Prints Table I (measured vs paper) for one evaluation.
pub fn print_table1(eval: &EvaluationReport) {
    println!("Table I: Brier score comparison for different modalities");
    println!("{:<46} {:>10} {:>10}", "Dataset", "Measured", "Paper");
    for (strategy, paper) in PAPER_TABLE1 {
        println!("{:<46} {:>10.4} {:>10.4}", strategy.label(), eval.brier_of(strategy), paper);
    }
}

/// Convenience: mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_fits() {
        let det = fit_detector(&quick_scale(), 1);
        assert!(det.evaluation().brier.iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn scale_from_env_defaults() {
        // Without the env var set, the default passes through.
        std::env::remove_var("NOODLE_SCALE");
        assert_eq!(scale_from_env(quick_scale()).name, "quick");
    }

    #[test]
    fn paper_reference_values_match_publication() {
        assert_eq!(PAPER_TABLE1[3].1, 0.1589);
        assert_eq!(PAPER_AUC, 0.928);
    }
}
