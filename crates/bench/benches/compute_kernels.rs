//! Criterion benches for the compute kernels the CNN training loop lowers
//! onto: GEMM at the exact sizes the modality heads use, the Conv2d
//! forward/backward passes at training batch size, and the im2col lowering
//! in isolation.
//!
//! Thread count follows `NOODLE_THREADS`; run with `NOODLE_THREADS=1` to
//! measure the single-core kernels themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_nn::lowering::im2col_2d;
use noodle_nn::{Conv2d, Layer, Mode, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Graph-image geometry from the modality classifiers: `[2, 12, 12]`
/// inputs, 8 first-layer channels, 3×3 kernels, same-padding.
const CHANNELS: usize = 2;
const SIZE: usize = 12;
const COUT: usize = 8;
const KERNEL: usize = 3;
const BATCH: usize = 16;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    // Sizes taken from the CNN heads: the graph head's Dense(144, 32) and
    // Dense(32, 2) at batch 16, and the conv-as-GEMM shape [8, 18] @ [18, 144].
    for (m, k, n) in [(BATCH, 144, 32), (BATCH, 32, 2), (COUT, 18, 144)] {
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        group.bench_function(format!("{m}x{k}x{n}"), |bench| {
            bench.iter(|| black_box(black_box(&a).matmul(&b)))
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv: Layer = Conv2d::new(CHANNELS, COUT, KERNEL, 1, &mut rng).into();
    let x = Tensor::rand_uniform(&[BATCH, CHANNELS, SIZE, SIZE], -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("conv2d");
    group.bench_function("forward_b16", |bench| {
        bench.iter(|| black_box(conv.forward(black_box(&x), Mode::Train)))
    });
    let gy = conv.forward(&x, Mode::Train);
    group.bench_function("backward_b16", |bench| {
        bench.iter(|| black_box(conv.backward(black_box(&gy))))
    });
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::rand_uniform(&[CHANNELS, SIZE, SIZE], -1.0, 1.0, &mut rng);
    let mut cols = vec![0.0f32; CHANNELS * KERNEL * KERNEL * SIZE * SIZE];
    c.bench_function("im2col_2d/2x12x12_k3", |bench| {
        bench.iter(|| {
            im2col_2d(black_box(x.data()), CHANNELS, SIZE, SIZE, KERNEL, 1, SIZE, SIZE, &mut cols);
            black_box(&cols);
        })
    });
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_im2col);
criterion_main!(benches);
