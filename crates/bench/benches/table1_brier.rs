//! Criterion bench for the Table I regeneration: one full pipeline fit
//! (GAN amplification + three CNNs + conformal calibration + fusion) at
//! quick scale, producing the four Brier scores.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_bench::{fit_detector, quick_scale, scale_from_env};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let scale = scale_from_env(quick_scale());
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("full_pipeline_fit", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let detector = fit_detector(&scale, seed);
            black_box(detector.evaluation().brier)
        });
    });
    group.finish();

    // Print the regenerated table once so `cargo bench` output carries it.
    let detector = fit_detector(&scale, 42);
    noodle_bench::print_table1(detector.evaluation());
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
