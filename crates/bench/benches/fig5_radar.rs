//! Criterion bench for the Fig. 5 regeneration: the consolidated radar
//! metric set of the winning model.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_bench::{fit_detector, quick_scale, scale_from_env};
use noodle_metrics::RadarMetrics;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let scale = scale_from_env(quick_scale());
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation().clone();
    let probs = eval.probs_of(eval.winner).to_vec();
    let outcomes = eval.test_outcomes();

    let mut group = c.benchmark_group("fig5");
    group.bench_function("radar_metrics", |b| {
        b.iter(|| black_box(RadarMetrics::compute(&probs, &outcomes).normalized_axes()))
    });
    group.finish();

    let m = RadarMetrics::compute(&probs, &outcomes);
    println!(
        "Fig5 (quick): AUC {:.3}, Brier {:.3}, sensitivity {:.3}, accuracy {:.3}",
        m.auc, m.brier, m.sensitivity, m.accuracy
    );
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
