//! Criterion bench for the Fig. 4 regeneration: ROC/AUC of the late-fusion
//! probabilities.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_bench::{fit_detector, quick_scale, scale_from_env};
use noodle_core::FusionStrategy;
use noodle_metrics::roc_curve;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let scale = scale_from_env(quick_scale());
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation().clone();
    let probs = eval.probs_of(FusionStrategy::LateFusion).to_vec();
    let outcomes = eval.test_outcomes();

    let mut group = c.benchmark_group("fig4");
    group.bench_function("roc_curve", |b| b.iter(|| black_box(roc_curve(&probs, &outcomes).auc())));
    group.finish();

    println!("Fig4 (quick): late-fusion AUC {:.3}", roc_curve(&probs, &outcomes).auc());
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
