//! Criterion bench for the Fig. 3 regeneration: reliability-curve
//! computation over the winner's test probabilities.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_bench::{fit_detector, quick_scale, scale_from_env};
use noodle_metrics::calibration_curve;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let scale = scale_from_env(quick_scale());
    let detector = fit_detector(&scale, 42);
    let eval = detector.evaluation().clone();
    let probs = eval.probs_of(eval.winner).to_vec();
    let outcomes = eval.test_outcomes();

    let mut group = c.benchmark_group("fig3");
    group.bench_function("calibration_curve", |b| {
        b.iter(|| black_box(calibration_curve(&probs, &outcomes, 10)))
    });
    group.finish();

    let curve = calibration_curve(&probs, &outcomes, 10);
    println!(
        "Fig3 (quick): ECE {:.4}, sharpness {:.4}, {} test designs",
        curve.expected_calibration_error(),
        curve.sharpness(),
        probs.len()
    );
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
