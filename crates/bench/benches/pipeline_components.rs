//! Criterion micro-benches of the pipeline's individual stages: Verilog
//! parsing, graph/tabular modality extraction, CNN inference, conformal
//! p-value fusion and GAN sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_bench::{fit_detector, quick_scale};
use noodle_bench_gen::{generate_corpus, CorpusConfig};
use noodle_conformal::{Combiner, MondrianIcp};
use noodle_core::extract_modalities;
use noodle_gan::{GanConfig, VanillaGan};
use noodle_graph::{build_graph, graph_image};
use noodle_nn::Tensor;
use noodle_tabular::extract_features;
use noodle_verilog::{compile, parse, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_components(c: &mut Criterion) {
    let corpus = generate_corpus(&CorpusConfig::default());
    let source = corpus[0].source.clone();
    let module = parse(&source).unwrap().modules.remove(0);

    c.bench_function("verilog_parse", |b| b.iter(|| black_box(parse(&source).unwrap())));
    c.bench_function("graph_extraction", |b| {
        b.iter(|| black_box(graph_image(&build_graph(&module))))
    });
    c.bench_function("tabular_extraction", |b| {
        b.iter(|| black_box(extract_features(&module).to_vec()))
    });

    // Detection latency of a fitted detector (the deployment-critical path).
    let mut detector = fit_detector(&quick_scale(), 42);
    let (graph, tabular) = extract_modalities(&source).unwrap();
    c.bench_function("detect_single_design", |b| {
        b.iter(|| black_box(detector.detect_features(Some(&graph), Some(&tabular)).unwrap()))
    });

    // Conformal p-value fusion.
    let calib: Vec<(f32, usize)> = (0..200).map(|i| (i as f32 / 200.0, i % 2)).collect();
    let icp = MondrianIcp::fit(&calib, 2).unwrap();
    c.bench_function("conformal_fusion", |b| {
        b.iter(|| {
            let pg = icp.p_values(&[0.3, 0.8]);
            let pt = icp.p_values(&[0.4, 0.7]);
            black_box([
                Combiner::Fisher.combine(&[pg[0], pt[0]]),
                Combiner::Fisher.combine(&[pg[1], pt[1]]),
            ])
        })
    });

    // Corpus generation (one full TrustHub-like corpus).
    c.bench_function("corpus_generation_40", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(generate_corpus(&CorpusConfig { seed, ..CorpusConfig::default() }))
        })
    });

    // RTL simulation: 100 clock cycles of the first corpus design, on
    // the tree-walking interpreter and on the compiled tape engine.
    let sim_file = parse(&corpus[0].source).unwrap();
    c.bench_function("simulate_100_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&sim_file.modules[0]).unwrap();
            sim.set("rst", 1).unwrap();
            sim.step("clk").unwrap();
            sim.set("rst", 0).unwrap();
            sim.run("clk", 100).unwrap();
            black_box(sim.get("clk"))
        })
    });
    c.bench_function("simulate_100_cycles_compiled", |b| {
        b.iter(|| {
            let mut sim = compile(&sim_file.modules[0]).unwrap();
            sim.set("rst", 1).unwrap();
            sim.step("clk").unwrap();
            sim.set("rst", 0).unwrap();
            sim.run("clk", 100).unwrap();
            black_box(sim.get("clk"))
        })
    });

    // GAN sampling (amplification inner loop).
    let mut rng = StdRng::seed_from_u64(1);
    let real = Tensor::rand_uniform(&[24, 32], 0.0, 1.0, &mut rng);
    let config = GanConfig { epochs: 10, hidden_dim: 16, ..GanConfig::default() };
    let mut gan = VanillaGan::train(&real, &config, &mut rng);
    c.bench_function("gan_sample_100", |b| b.iter(|| black_box(gan.sample(100, &mut rng))));
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
