//! Criterion bench for the Fig. 2 regeneration: the repeated-split Brier
//! distribution for early vs late fusion at quick scale.

use criterion::{criterion_group, criterion_main, Criterion};
use noodle_bench::{fit_detector, quick_scale, scale_from_env};
use noodle_core::FusionStrategy;
use noodle_metrics::summarize;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let scale = scale_from_env(quick_scale());
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("three_split_distribution", |b| {
        let mut base = 0u64;
        b.iter(|| {
            base += 10;
            let briers: Vec<f64> = (0..3)
                .map(|s| {
                    fit_detector(&scale, base + s).evaluation().brier_of(FusionStrategy::LateFusion)
                })
                .collect();
            black_box(summarize(&briers, 0.95).mean)
        });
    });
    group.finish();

    let early: Vec<f64> = (0..scale.repeats as u64)
        .map(|s| fit_detector(&scale, 1000 + s).evaluation().brier_of(FusionStrategy::EarlyFusion))
        .collect();
    let late: Vec<f64> = (0..scale.repeats as u64)
        .map(|s| fit_detector(&scale, 1000 + s).evaluation().brier_of(FusionStrategy::LateFusion))
        .collect();
    println!(
        "Fig2 (quick): early mean {:.4}, late mean {:.4} over {} runs",
        summarize(&early, 0.95).mean,
        summarize(&late, 0.95).mean,
        scale.repeats
    );
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
