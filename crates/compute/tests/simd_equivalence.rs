//! Property tests pinning the SIMD microkernels to the scalar reference
//! bodies across ragged shapes.
//!
//! The float kernels are allowed to differ from the scalar path only by
//! FMA/lane-reduction rounding: the bound scales with the reduction
//! depth `k` (each element is a length-`k` sum, so the two schedules can
//! drift by at most a few ULP per accumulation step). The int8 kernel
//! accumulates exactly and must match bit-for-bit.
//!
//! The SIMD override is process-global, so every test that flips it
//! holds [`OVERRIDE_LOCK`] — `#[test]` functions in this binary run on
//! parallel threads.

use std::sync::Mutex;

use noodle_compute::{
    active_isa, gemm, gemm_at, gemm_bt, gemm_bt_i8, set_simd_override, transpose, SimdIsa,
};
use proptest::prelude::*;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the scalar bodies pinned, then with the detected ISA
/// pinned, restoring auto resolution afterwards even on panic.
fn scalar_then_simd<T>(mut f: impl FnMut() -> T) -> (T, T) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_simd_override(None);
        }
    }
    let _restore = Restore;
    set_simd_override(Some(false));
    let scalar = f();
    set_simd_override(Some(true));
    let simd = f();
    (scalar, simd)
}

/// `|x - y|` must be within `steps` float-spacing units of the scalar
/// value: one fused-vs-unfused rounding step per accumulation, so the
/// budget scales with the reduction depth.
fn assert_close(scalar: &[f32], simd: &[f32], k: usize, tag: &str) {
    let steps = 8.0 * (k as f32 + 1.0);
    for (i, (x, y)) in scalar.iter().zip(simd).enumerate() {
        let tol = steps * f32::EPSILON * x.abs().max(1.0);
        assert!(
            (x - y).abs() <= tol,
            "{tag}: element {i} drifted beyond {steps} steps: scalar {x} vs simd {y}"
        );
    }
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..24, 1usize..80, 1usize..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_simd_matches_scalar_within_ulp((m, k, n) in dims(),
                                           seed in any::<u32>()) {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = fill(m * k, seed);
        let b = fill(k * n, seed.wrapping_mul(2654435761));
        let (scalar, simd) = scalar_then_simd(|| {
            let mut out = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            out
        });
        assert_close(&scalar, &simd, k, "gemm");
    }

    #[test]
    fn gemm_bt_simd_matches_scalar_within_ulp((m, k, n) in dims(),
                                              seed in any::<u32>()) {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = fill(m * k, seed);
        let bt = fill(n * k, seed.wrapping_mul(0x9e3779b9));
        let (scalar, simd) = scalar_then_simd(|| {
            let mut out = vec![0.0f32; m * n];
            gemm_bt(m, k, n, &a, &bt, &mut out);
            out
        });
        assert_close(&scalar, &simd, k, "gemm_bt");
    }

    #[test]
    fn gemm_at_simd_matches_scalar_within_ulp((m, k, n) in dims(),
                                              seed in any::<u32>()) {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let at = fill(k * m, seed);
        let b = fill(k * n, seed.wrapping_add(0x85ebca6b));
        let (scalar, simd) = scalar_then_simd(|| {
            let mut out = vec![0.0f32; m * n];
            gemm_at(k, m, n, &at, &b, &mut out);
            out
        });
        assert_close(&scalar, &simd, k, "gemm_at");
    }

    /// The three layouts must agree with each other under SIMD too, not
    /// just with their own scalar twins.
    #[test]
    fn transposed_layouts_agree_under_simd((m, k, n) in dims(),
                                           seed in any::<u32>()) {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                set_simd_override(None);
            }
        }
        let _restore = Restore;
        set_simd_override(Some(true));
        let a = fill(m * k, seed);
        let b = fill(k * n, seed.wrapping_mul(747796405));
        let mut at = vec![0.0f32; m * k];
        transpose(m, k, &a, &mut at);
        let mut bt = vec![0.0f32; k * n];
        transpose(k, n, &b, &mut bt);
        let mut base = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut base);
        let mut via_at = vec![0.0f32; m * n];
        gemm_at(k, m, n, &at, &b, &mut via_at);
        let mut via_bt = vec![0.0f32; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut via_bt);
        assert_close(&base, &via_at, k, "gemm vs gemm_at");
        assert_close(&base, &via_bt, k, "gemm vs gemm_bt");
    }

    #[test]
    fn int8_simd_is_bit_exact((m, k, n) in dims(), seed in any::<u32>()) {
        let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a: Vec<i8> = (0..m * k)
            .map(|i| (mix(seed, i as u32) & 0xff) as u8 as i8)
            .collect();
        let bt: Vec<i8> = (0..n * k)
            .map(|i| (mix(seed ^ 0xdead_beef, i as u32) & 0xff) as u8 as i8)
            .collect();
        let (scalar, simd) = scalar_then_simd(|| {
            let mut out = vec![3i32; m * n];
            gemm_bt_i8(m, k, n, &a, &bt, &mut out);
            out
        });
        prop_assert_eq!(scalar, simd);
    }
}

#[test]
fn override_restores_auto_resolution() {
    let _guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_simd_override(Some(false));
    assert_eq!(active_isa(), SimdIsa::Scalar);
    set_simd_override(None);
    // Auto resolution honours NOODLE_SIMD, so either outcome is legal;
    // the call must simply not be stuck on the scalar pin.
    let _ = active_isa();
}

/// Deterministic pseudo-random fill in `[-8, 8)` (splitmix-style hash so
/// failures minimize to stable inputs).
fn fill(len: usize, seed: u32) -> Vec<f32> {
    (0..len).map(|i| (mix(seed, i as u32) % 4096) as f32 / 256.0 - 8.0).collect()
}

fn mix(seed: u32, i: u32) -> u32 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9));
    z = (z ^ (z >> 16)).wrapping_mul(0x85eb_ca6b);
    z = (z ^ (z >> 13)).wrapping_mul(0xc2b2_ae35);
    z ^ (z >> 16)
}
