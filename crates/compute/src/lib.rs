//! # noodle-compute
//!
//! The std-only data-parallel compute backend for the NOODLE pipeline: a
//! lazily-initialized thread pool with a chunk-claiming work queue
//! ([`par_for`], [`par_map_collect`], [`par_map_reduce`]) and the
//! cache-blocked GEMM kernels ([`gemm`], [`gemm_at`], [`gemm_bt`],
//! [`transpose`]) the neural-network layers lower onto.
//!
//! ## Determinism contract
//!
//! Everything in this crate is **bit-deterministic across thread counts**:
//!
//! * chunk boundaries depend only on problem size and grain, never on the
//!   number of threads;
//! * parallelism only partitions *outputs* — each output element is
//!   written by exactly one thread with a fixed accumulation order;
//! * reductions combine per-chunk partials in ascending chunk order on a
//!   single thread.
//!
//! A seeded pipeline run therefore produces byte-identical models at
//! `NOODLE_THREADS=1` and `NOODLE_THREADS=16`; the thread count is purely
//! a throughput knob. See `DESIGN.md` § "Parallelism & determinism model".
//!
//! ## Thread-count resolution
//!
//! [`set_thread_override`] (tests/benches) → `NOODLE_THREADS` env var →
//! serial under this crate's own `cfg(test)` → available parallelism.
//!
//! ## SIMD dispatch
//!
//! The GEMM inner loops are runtime-dispatched to explicit-width SIMD
//! bodies (AVX2+FMA on x86-64, NEON on aarch64, scalar fallback) probed
//! once per process; [`set_simd_override`] (tests / `--no-simd`) and the
//! `NOODLE_SIMD=off` env var pin the scalar bodies. [`active_isa`]
//! reports the selection for run reports and audit headers. The vector
//! bodies use fixed lane-reduction schedules, so the determinism
//! contract above is unchanged. See `DESIGN.md` § "SIMD dispatch model".
//!
//! ## Quickstart
//!
//! ```
//! let squares = noodle_compute::par_map_collect(8, 2, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let (m, k, n) = (2, 3, 2);
//! let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
//! let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
//! let mut out = [0.0; 4];
//! noodle_compute::gemm(m, k, n, &a, &b, &mut out);
//! assert_eq!(out, [4.0, 5.0, 10.0, 11.0]);
//! ```

#![warn(missing_docs)]
// `unsafe` is confined to three well-commented patterns: type-erasing the
// parallel-region closure for the persistent workers, handing each worker
// a disjoint row range of an exclusively borrowed output buffer, and the
// `#[target_feature]` SIMD bodies in `simd/` (which opt out of
// `unsafe_op_in_unsafe_fn` locally — they are wall-to-wall intrinsics and
// only callable through the feature-checked dispatcher).
#![deny(unsafe_op_in_unsafe_fn)]

mod gemm;
mod pool;
mod simd;

pub use gemm::{gemm, gemm_at, gemm_bt, gemm_bt_i8, gemm_peak_gflops, transpose};
pub use pool::{
    add_flops, busy_ns, flops, jobs, num_threads, par_chunks_mut, par_for, par_map_collect,
    par_map_reduce, queue_wait_ns, set_thread_override,
};
pub use simd::{active_isa, set_simd_override, SimdIsa};
