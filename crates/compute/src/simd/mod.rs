//! Runtime-dispatched SIMD microkernel bodies for the GEMM family.
//!
//! The instruction set is probed **once** per process (AVX2+FMA on
//! x86-64, NEON on aarch64, portable scalar everywhere else) and every
//! kernel call routes its per-row-range body through the selected
//! implementation. Selection order: [`set_simd_override`] (tests / the
//! `--no-simd` CLI flag) → the `NOODLE_SIMD` environment variable
//! (`off`/`0`/`false`/`scalar` force the scalar bodies) → hardware
//! feature detection.
//!
//! ## Determinism
//!
//! The vector bodies keep the PR 3 contract — bit-identical results at
//! every thread count — because:
//!
//! * `gemm`/`gemm_at` vectorize across *output columns*: each output
//!   element still accumulates over the shared dimension in ascending
//!   order, one FMA per step, so its value depends only on the problem,
//!   never on chunking.
//! * `gemm_bt` splits each dot product into a fixed number of lane
//!   accumulators (`k mod LANES` decides which element lands in which
//!   lane), reduces the lanes in a **fixed tree order**, then folds the
//!   scalar tail in ascending index order. The whole schedule is a pure
//!   function of `k`.
//! * The int8 kernels accumulate in `i32`, which is exact: integer
//!   addition is associative, so any fixed reduction is bit-stable.
//!
//! Results *do* differ from the pre-SIMD scalar path (FMA keeps the
//! intermediate product unrounded; the lane split reorders float sums),
//! which is why the checked-in benchmark goldens were regenerated once
//! when this module landed — see `DESIGN.md` § "SIMD dispatch model".

use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub(crate) mod scalar;

#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Column-block width for the `i-p-j` kernels: 1024 floats = 4 KiB per
/// `b` row segment, comfortably L1-resident alongside the output row.
pub(crate) const COL_BLOCK: usize = 1024;

/// The instruction set the GEMM kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdIsa {
    /// x86-64 AVX2 with FMA: 8-lane `f32` vectors, fused multiply-add.
    Avx2Fma,
    /// aarch64 NEON: 4-lane `f32` vectors, fused multiply-add.
    Neon,
    /// Portable scalar loops (also the `NOODLE_SIMD=off` fallback).
    Scalar,
}

impl SimdIsa {
    /// Stable lowercase label for run reports, audit headers and logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Avx2Fma => "avx2+fma",
            SimdIsa::Neon => "neon",
            SimdIsa::Scalar => "scalar",
        }
    }
}

/// Runtime override: 0 = auto (env var, then detection), 1 = force
/// scalar, 2 = force detection (ignore the env var).
static SIMD_OVERRIDE: AtomicU8 = AtomicU8::new(0);

static DETECTED: OnceLock<SimdIsa> = OnceLock::new();
static ENV_DISABLED: OnceLock<bool> = OnceLock::new();

fn detected_isa() -> SimdIsa {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdIsa::Avx2Fma;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdIsa::Neon;
            }
        }
        SimdIsa::Scalar
    })
}

fn env_disabled() -> bool {
    *ENV_DISABLED.get_or_init(|| {
        std::env::var("NOODLE_SIMD")
            .map(|v| {
                let v = v.trim().to_ascii_lowercase();
                matches!(v.as_str(), "off" | "0" | "false" | "scalar")
            })
            .unwrap_or(false)
    })
}

/// Forces the kernel dispatch: `Some(false)` pins the scalar bodies
/// (the `--no-simd` CLI flag), `Some(true)` pins hardware detection
/// even when `NOODLE_SIMD=off` is set, `None` restores the default
/// resolution. Takes effect on the next kernel call; used by tests to
/// compare the scalar and vector bodies within one process.
pub fn set_simd_override(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SIMD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The instruction set the next kernel call will dispatch to, after
/// applying [`set_simd_override`] and the `NOODLE_SIMD` env var.
pub fn active_isa() -> SimdIsa {
    match SIMD_OVERRIDE.load(Ordering::Relaxed) {
        1 => SimdIsa::Scalar,
        2 => detected_isa(),
        _ => {
            if env_disabled() {
                SimdIsa::Scalar
            } else {
                detected_isa()
            }
        }
    }
}

/// Dispatched body of `gemm` over output rows `rows`, writing into
/// `chunk` (the sub-slice covering exactly those rows).
pub(crate) fn gemm_rows(
    isa: SimdIsa,
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` is only produced by detection confirming
        // the `avx2` and `fma` features on the running CPU.
        SimdIsa::Avx2Fma => unsafe { x86::gemm_rows(rows, k, n, a, b, chunk) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` is only produced by detection confirming NEON.
        SimdIsa::Neon => unsafe { neon::gemm_rows(rows, k, n, a, b, chunk) },
        _ => scalar::gemm_rows(rows, k, n, a, b, chunk),
    }
}

/// Dispatched body of `gemm_bt` over output rows `rows`.
pub(crate) fn gemm_bt_rows(
    isa: SimdIsa,
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    bt: &[f32],
    chunk: &mut [f32],
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` implies the CPU supports avx2+fma.
        SimdIsa::Avx2Fma => unsafe { x86::gemm_bt_rows(rows, k, n, a, bt, chunk) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` implies the CPU supports NEON.
        SimdIsa::Neon => unsafe { neon::gemm_bt_rows(rows, k, n, a, bt, chunk) },
        _ => scalar::gemm_bt_rows(rows, k, n, a, bt, chunk),
    }
}

/// Dispatched body of `gemm_at` over output rows `rows` (`a: [k, m]`,
/// `b: [k, n]`; `m` is the lhs row stride).
pub(crate) fn gemm_at_rows(
    isa: SimdIsa,
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` implies the CPU supports avx2+fma.
        SimdIsa::Avx2Fma => unsafe { x86::gemm_at_rows(rows, k, m, n, a, b, chunk) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` implies the CPU supports NEON.
        SimdIsa::Neon => unsafe { neon::gemm_at_rows(rows, k, m, n, a, b, chunk) },
        _ => scalar::gemm_at_rows(rows, k, m, n, a, b, chunk),
    }
}

/// Dispatched body of the int8 `gemm_bt` over output rows `rows`:
/// exact `i32` accumulation, so every implementation returns identical
/// bits regardless of lane width.
pub(crate) fn gemm_bt_rows_i8(
    isa: SimdIsa,
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    chunk: &mut [i32],
) {
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Avx2Fma` implies the CPU supports avx2.
        SimdIsa::Avx2Fma => unsafe { x86::gemm_bt_rows_i8(rows, k, n, a, bt, chunk) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `Neon` implies the CPU supports NEON.
        SimdIsa::Neon => unsafe { neon::gemm_bt_rows_i8(rows, k, n, a, bt, chunk) },
        _ => scalar::gemm_bt_rows_i8(rows, k, n, a, bt, chunk),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_pins_scalar_and_detection() {
        set_simd_override(Some(false));
        assert_eq!(active_isa(), SimdIsa::Scalar);
        set_simd_override(Some(true));
        assert_eq!(active_isa(), detected_isa());
        set_simd_override(None);
        let auto = active_isa();
        assert!(auto == SimdIsa::Scalar || auto == detected_isa());
    }

    #[test]
    fn isa_names_are_stable() {
        assert_eq!(SimdIsa::Avx2Fma.name(), "avx2+fma");
        assert_eq!(SimdIsa::Neon.name(), "neon");
        assert_eq!(SimdIsa::Scalar.name(), "scalar");
    }

    /// The vector bodies must agree with the scalar reference to within
    /// FMA rounding on every lane-alignment combination (ragged `k`/`n`
    /// exercise the tails). Tight ULP proptests live in
    /// `tests/simd_equivalence.rs`; this is the cheap smoke check.
    #[test]
    fn dispatched_bodies_match_scalar_reference() {
        let isa = detected_isa();
        for (m, k, n) in [(3, 9, 11), (2, 16, 8), (1, 5, 3), (4, 33, 17)] {
            let a: Vec<f32> =
                (0..m * k).map(|i| ((i * 37 + 11) % 97) as f32 * 0.25 - 12.0).collect();
            let b: Vec<f32> =
                (0..k * n).map(|i| ((i * 31 + 7) % 89) as f32 * 0.125 - 5.0).collect();
            let mut want = vec![0.0f32; m * n];
            scalar::gemm_rows(0..m, k, n, &a, &b, &mut want);
            let mut got = vec![0.0f32; m * n];
            gemm_rows(isa, 0..m, k, n, &a, &b, &mut got);
            for (x, y) in got.iter().zip(&want) {
                assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0), "{x} vs {y} at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn int8_bodies_are_bit_exact_across_isas() {
        let (m, k, n) = (3, 37, 5);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 29 + 3) % 255) as i8).collect();
        let bt: Vec<i8> = (0..n * k).map(|i| ((i * 41 + 13) % 255) as i8).collect();
        let mut want = vec![0i32; m * n];
        scalar::gemm_bt_rows_i8(0..m, k, n, &a, &bt, &mut want);
        let mut got = vec![0i32; m * n];
        gemm_bt_rows_i8(detected_isa(), 0..m, k, n, &a, &bt, &mut got);
        assert_eq!(want, got, "int8 accumulation must be exact on every ISA");
    }
}
