//! aarch64 NEON kernel bodies: 4-lane `f32` vectors with fused
//! multiply-add, plus an 8-lane int8 dot product (`vmull_s8` to `i16`,
//! pairwise-accumulate to `i32`).
//!
//! Same accumulation-order guarantees as the AVX2 bodies (see
//! [`super::x86`]), with `LANES = 4`: element `p` of a dot product lands
//! in lane `p mod 4`, lanes reduce in a fixed pairwise tree, and the
//! `k mod 4` tail folds serially afterwards.

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::aarch64::*;
use std::ops::Range;

use super::COL_BLOCK;

/// `dst[i] += a * src[i]`, 4 lanes at a time with an FMA tail.
#[target_feature(enable = "neon")]
unsafe fn axpy4(dst: &mut [f32], a: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let len = dst.len();
    let va = vdupq_n_f32(a);
    let mut j = 0;
    while j + 4 <= len {
        let vb = vld1q_f32(src.as_ptr().add(j));
        let vd = vld1q_f32(dst.as_ptr().add(j));
        vst1q_f32(dst.as_mut_ptr().add(j), vfmaq_f32(vd, va, vb));
        j += 4;
    }
    while j < len {
        *dst.get_unchecked_mut(j) = a.mul_add(*src.get_unchecked(j), *dst.get_unchecked(j));
        j += 1;
    }
}

/// Dot product with a fixed lane-reduction order: lanes (0+2, 1+3),
/// then lane0 + lane1, then the serial tail.
#[target_feature(enable = "neon")]
unsafe fn dot4(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let mut acc = vdupq_n_f32(0.0);
    let mut p = 0;
    while p + 4 <= len {
        let va = vld1q_f32(a.as_ptr().add(p));
        let vb = vld1q_f32(b.as_ptr().add(p));
        acc = vfmaq_f32(acc, va, vb);
        p += 4;
    }
    let s = vadd_f32(vget_low_f32(acc), vget_high_f32(acc));
    let mut sum = vget_lane_f32::<0>(s) + vget_lane_f32::<1>(s);
    while p < len {
        sum = a.get_unchecked(p).mul_add(*b.get_unchecked(p), sum);
        p += 1;
    }
    sum
}

/// Int8 dot product: 8-lane `i8 × i8 → i16` widening multiply,
/// pairwise-accumulated into 4 × `i32`. Integer addition is exact, so
/// the reduction order cannot change the result.
#[target_feature(enable = "neon")]
unsafe fn dot8_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let mut acc = vdupq_n_s32(0);
    let mut p = 0;
    while p + 8 <= len {
        let va = vld1_s8(a.as_ptr().add(p));
        let vb = vld1_s8(b.as_ptr().add(p));
        acc = vpadalq_s16(acc, vmull_s8(va, vb));
        p += 8;
    }
    let mut sum = vaddvq_s32(acc);
    while p < len {
        sum += i32::from(*a.get_unchecked(p)) * i32::from(*b.get_unchecked(p));
        p += 1;
    }
    sum
}

/// NEON body of `gemm` (blocked `i-p-j`, vectorized innermost axpy).
#[target_feature(enable = "neon")]
pub(crate) unsafe fn gemm_rows(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    let mut jb = 0;
    while jb < n {
        let je = n.min(jb + COL_BLOCK);
        for (ci, i) in rows.clone().enumerate() {
            let dst = &mut chunk[ci * n + jb..ci * n + je];
            let arow = &a[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                axpy4(dst, av, &b[p * n + jb..p * n + je]);
            }
        }
        jb += COL_BLOCK;
    }
}

/// NEON body of `gemm_bt`: one [`dot4`] per output element.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn gemm_bt_rows(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    bt: &[f32],
    chunk: &mut [f32],
) {
    for (ci, i) in rows.clone().enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            chunk[ci * n + j] += dot4(arow, &bt[j * k..(j + 1) * k]);
        }
    }
}

/// NEON body of `gemm_at`: `p` outermost, vectorized axpy per row.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn gemm_at_rows(
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    for p in 0..k {
        let brow = &b[p * n..(p + 1) * n];
        let acol = &a[p * m..(p + 1) * m];
        for (ci, i) in rows.clone().enumerate() {
            axpy4(&mut chunk[ci * n..(ci + 1) * n], acol[i], brow);
        }
    }
}

/// NEON body of the int8 `gemm_bt`: one [`dot8_i8`] per output element.
#[target_feature(enable = "neon")]
pub(crate) unsafe fn gemm_bt_rows_i8(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    chunk: &mut [i32],
) {
    for (ci, i) in rows.clone().enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            chunk[ci * n + j] += dot8_i8(arow, &bt[j * k..(j + 1) * k]);
        }
    }
}
