//! Portable scalar kernel bodies: the reference implementation every
//! vector body is property-tested against, and the fallback when no
//! supported ISA is detected or SIMD is disabled (`NOODLE_SIMD=off`,
//! `--no-simd`, [`super::set_simd_override`]).
//!
//! These are byte-for-byte the pre-SIMD kernels, so a scalar-pinned run
//! reproduces historic results exactly.

use std::ops::Range;

use super::COL_BLOCK;

/// Serial blocked `i-p-j` body of `gemm` over rows `rows.start..rows.end`,
/// writing into `chunk` (the sub-slice covering exactly those rows).
pub(crate) fn gemm_rows(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    let mut jb = 0;
    while jb < n {
        let je = n.min(jb + COL_BLOCK);
        for (ci, i) in rows.clone().enumerate() {
            let dst = &mut chunk[ci * n + jb..ci * n + je];
            let arow = &a[i * k..(i + 1) * k];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &b[p * n + jb..p * n + je];
                for (d, &bv) in dst.iter_mut().zip(brow) {
                    *d += av * bv;
                }
            }
        }
        jb += COL_BLOCK;
    }
}

/// Dot-product body of `gemm_bt` over rows `rows` (`a: [m, k]`,
/// `bt: [n, k]`): each output element is one ascending-order dot over `k`.
pub(crate) fn gemm_bt_rows(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    bt: &[f32],
    chunk: &mut [f32],
) {
    for (ci, i) in rows.clone().enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bt[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            chunk[ci * n + j] += acc;
        }
    }
}

/// `p`-outermost body of `gemm_at` over rows `rows` (`a: [k, m]`,
/// `b: [k, n]`); each element accumulates over ascending `p`.
pub(crate) fn gemm_at_rows(
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    for p in 0..k {
        let brow = &b[p * n..(p + 1) * n];
        let acol = &a[p * m..(p + 1) * m];
        for (ci, i) in rows.clone().enumerate() {
            let av = acol[i];
            let dst = &mut chunk[ci * n..(ci + 1) * n];
            for (d, &bv) in dst.iter_mut().zip(brow) {
                *d += av * bv;
            }
        }
    }
}

/// Int8 dot-product body of `gemm_bt_i8` over rows `rows`: `i8 × i8`
/// products accumulated exactly in `i32`.
pub(crate) fn gemm_bt_rows_i8(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    chunk: &mut [i32],
) {
    for (ci, i) in rows.clone().enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bt[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += i32::from(av) * i32::from(bv);
            }
            chunk[ci * n + j] += acc;
        }
    }
}
