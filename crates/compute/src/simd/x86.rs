//! AVX2+FMA kernel bodies: a register-blocked 8-lane `f32` microkernel
//! for `gemm`, fixed-tree dot products for `gemm_bt`, and an exact
//! 32-byte int8 kernel (widen to `i16`, `madd` to `i32`).
//!
//! Every function here carries `#[target_feature(enable = "avx2,fma")]`
//! (or `"avx2"` for the integer bodies) and must only be called after
//! runtime detection has confirmed the features — the dispatcher in
//! [`super`] is the sole caller.
//!
//! Accumulation-order notes (the determinism contract):
//! * `gemm_rows` holds a 4-row × 16-column block of accumulators in
//!   registers across the whole `k` loop. Each output element still
//!   accumulates over the shared dimension in ascending order, one fused
//!   multiply-add per step — bit-identical to a scalar `mul_add` chain,
//!   and independent of how rows are grouped or chunked. The masked
//!   column tail uses the same FMA schedule, so column position never
//!   changes a value's rounding.
//! * `gemm_at_rows` vectorizes across output columns with one FMA per
//!   step — the same ascending-`p` fused chain as `gemm_rows`.
//! * `dot8` assigns element `p` to lane `p mod 8`, reduces the eight
//!   lane partials in a fixed tree (`lo+hi`, then pairwise), and folds
//!   the `k mod 8` tail serially afterwards. The schedule depends only
//!   on `k`.
//! * The int8 bodies accumulate in `i32`, which is exact — no schedule
//!   can change the result.

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;
use std::ops::Range;

/// Lane mask with the first `rem` (< 8) lanes enabled, for
/// `maskload`/`maskstore` column tails.
#[target_feature(enable = "avx2,fma")]
unsafe fn tail_mask(rem: usize) -> __m256i {
    debug_assert!(rem < 8);
    let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    _mm256_cmpgt_epi32(_mm256_set1_epi32(rem as i32), idx)
}

/// `dst[i] += a * src[i]` over equal-length slices, 8 lanes at a time
/// with an FMA tail (scalar `mul_add` rounds identically to a vector
/// lane, so alignment never changes a value's rounding).
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy8(dst: &mut [f32], a: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let len = dst.len();
    let va = _mm256_set1_ps(a);
    let mut j = 0;
    while j + 8 <= len {
        let vb = _mm256_loadu_ps(src.as_ptr().add(j));
        let vd = _mm256_loadu_ps(dst.as_ptr().add(j));
        _mm256_storeu_ps(dst.as_mut_ptr().add(j), _mm256_fmadd_ps(va, vb, vd));
        j += 8;
    }
    while j < len {
        *dst.get_unchecked_mut(j) = a.mul_add(*src.get_unchecked(j), *dst.get_unchecked(j));
        j += 1;
    }
}

/// Dot product over equal-length slices with the fixed lane-reduction
/// order described in the module docs.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let mut acc = _mm256_setzero_ps();
    let mut p = 0;
    while p + 8 <= len {
        let va = _mm256_loadu_ps(a.as_ptr().add(p));
        let vb = _mm256_loadu_ps(b.as_ptr().add(p));
        acc = _mm256_fmadd_ps(va, vb, acc);
        p += 8;
    }
    // Fixed reduction tree: (lo, hi) halves, then (0+2, 1+3), then +1.
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps::<1>(acc);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps::<0b01>(s, s));
    let mut sum = _mm_cvtss_f32(s);
    while p < len {
        sum = a.get_unchecked(p).mul_add(*b.get_unchecked(p), sum);
        p += 1;
    }
    sum
}

/// Fixed horizontal sum of 8 × `i32` (exact, order-free).
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256::<1>(v);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b0100_1110>(s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b0000_0001>(s));
    _mm_cvtsi128_si32(s)
}

/// AVX2+FMA body of `gemm`: 4-row × 16-column register-blocked
/// microkernel (8 independent FMA chains fill the pipelines; the
/// accumulator block stays in registers for the whole `k` loop, so the
/// output is loaded and stored exactly once per element).
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn gemm_rows(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    debug_assert_eq!(chunk.len(), (rows.end - rows.start) * n);
    let nrows = rows.end - rows.start;
    let mut ci = 0;
    while ci < nrows {
        let rb = (nrows - ci).min(4);
        let mut j = 0;
        while j + 16 <= n {
            match rb {
                4 => kern16::<4>(rows.start + ci, ci, j, k, n, a, b, chunk),
                3 => kern16::<3>(rows.start + ci, ci, j, k, n, a, b, chunk),
                2 => kern16::<2>(rows.start + ci, ci, j, k, n, a, b, chunk),
                _ => kern16::<1>(rows.start + ci, ci, j, k, n, a, b, chunk),
            }
            j += 16;
        }
        while j + 8 <= n {
            match rb {
                4 => kern8::<4>(rows.start + ci, ci, j, k, n, a, b, chunk),
                3 => kern8::<3>(rows.start + ci, ci, j, k, n, a, b, chunk),
                2 => kern8::<2>(rows.start + ci, ci, j, k, n, a, b, chunk),
                _ => kern8::<1>(rows.start + ci, ci, j, k, n, a, b, chunk),
            }
            j += 8;
        }
        if j < n {
            match rb {
                4 => kern_tail::<4>(rows.start + ci, ci, j, k, n, a, b, chunk),
                3 => kern_tail::<3>(rows.start + ci, ci, j, k, n, a, b, chunk),
                2 => kern_tail::<2>(rows.start + ci, ci, j, k, n, a, b, chunk),
                _ => kern_tail::<1>(rows.start + ci, ci, j, k, n, a, b, chunk),
            }
        }
        ci += rb;
    }
}

/// `R`-row × 16-column accumulator block (2 vectors per row).
#[target_feature(enable = "avx2,fma")]
unsafe fn kern16<const R: usize>(
    i0: usize,
    ci: usize,
    j: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    let mut acc0 = [_mm256_setzero_ps(); R];
    let mut acc1 = [_mm256_setzero_ps(); R];
    for r in 0..R {
        let dst = chunk.as_ptr().add((ci + r) * n + j);
        acc0[r] = _mm256_loadu_ps(dst);
        acc1[r] = _mm256_loadu_ps(dst.add(8));
    }
    for p in 0..k {
        let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
        let b1 = _mm256_loadu_ps(b.as_ptr().add(p * n + j + 8));
        for r in 0..R {
            let va = _mm256_set1_ps(*a.get_unchecked((i0 + r) * k + p));
            acc0[r] = _mm256_fmadd_ps(va, b0, acc0[r]);
            acc1[r] = _mm256_fmadd_ps(va, b1, acc1[r]);
        }
    }
    for r in 0..R {
        let dst = chunk.as_mut_ptr().add((ci + r) * n + j);
        _mm256_storeu_ps(dst, acc0[r]);
        _mm256_storeu_ps(dst.add(8), acc1[r]);
    }
}

/// `R`-row × 8-column accumulator block.
#[target_feature(enable = "avx2,fma")]
unsafe fn kern8<const R: usize>(
    i0: usize,
    ci: usize,
    j: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    let mut acc = [_mm256_setzero_ps(); R];
    for r in 0..R {
        acc[r] = _mm256_loadu_ps(chunk.as_ptr().add((ci + r) * n + j));
    }
    for p in 0..k {
        let bv = _mm256_loadu_ps(b.as_ptr().add(p * n + j));
        for r in 0..R {
            let va = _mm256_set1_ps(*a.get_unchecked((i0 + r) * k + p));
            acc[r] = _mm256_fmadd_ps(va, bv, acc[r]);
        }
    }
    for r in 0..R {
        _mm256_storeu_ps(chunk.as_mut_ptr().add((ci + r) * n + j), acc[r]);
    }
}

/// `R`-row masked block for the `n mod 8` column tail — same FMA
/// schedule as the full-width blocks, inactive lanes never touched.
#[target_feature(enable = "avx2,fma")]
unsafe fn kern_tail<const R: usize>(
    i0: usize,
    ci: usize,
    j: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    let mask = tail_mask(n - j);
    let mut acc = [_mm256_setzero_ps(); R];
    for r in 0..R {
        acc[r] = _mm256_maskload_ps(chunk.as_ptr().add((ci + r) * n + j), mask);
    }
    for p in 0..k {
        let bv = _mm256_maskload_ps(b.as_ptr().add(p * n + j), mask);
        for r in 0..R {
            let va = _mm256_set1_ps(*a.get_unchecked((i0 + r) * k + p));
            acc[r] = _mm256_fmadd_ps(va, bv, acc[r]);
        }
    }
    for r in 0..R {
        _mm256_maskstore_ps(chunk.as_mut_ptr().add((ci + r) * n + j), mask, acc[r]);
    }
}

/// AVX2+FMA body of `gemm_bt`: one [`dot8`] per output element.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn gemm_bt_rows(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[f32],
    bt: &[f32],
    chunk: &mut [f32],
) {
    for (ci, i) in rows.clone().enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            chunk[ci * n + j] += dot8(arow, &bt[j * k..(j + 1) * k]);
        }
    }
}

/// AVX2+FMA body of `gemm_at`: `p` outermost, vectorized axpy per row.
#[target_feature(enable = "avx2,fma")]
pub(crate) unsafe fn gemm_at_rows(
    rows: Range<usize>,
    k: usize,
    m: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    chunk: &mut [f32],
) {
    for p in 0..k {
        let brow = &b[p * n..(p + 1) * n];
        let acol = &a[p * m..(p + 1) * m];
        for (ci, i) in rows.clone().enumerate() {
            axpy8(&mut chunk[ci * n..(ci + 1) * n], acol[i], brow);
        }
    }
}

/// AVX2 body of the int8 `gemm_bt`: two output columns at a time, 32
/// bytes per step (two `cvtepi8_epi16` + `madd_epi16` chains per
/// column), exact `i32` accumulation for the full `i8` range.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gemm_bt_rows_i8(
    rows: Range<usize>,
    k: usize,
    n: usize,
    a: &[i8],
    bt: &[i8],
    chunk: &mut [i32],
) {
    for (ci, i) in rows.clone().enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &bt[j * k..(j + 1) * k];
            let b1 = &bt[(j + 1) * k..(j + 2) * k];
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut p = 0;
            while p + 32 <= k {
                let a_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.as_ptr().add(p).cast()));
                let a_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.as_ptr().add(p + 16).cast()));
                let b0_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.as_ptr().add(p).cast()));
                let b0_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.as_ptr().add(p + 16).cast()));
                let b1_lo = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.as_ptr().add(p).cast()));
                let b1_hi = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.as_ptr().add(p + 16).cast()));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a_lo, b0_lo));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a_hi, b0_hi));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a_lo, b1_lo));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a_hi, b1_hi));
                p += 32;
            }
            while p + 16 <= k {
                let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.as_ptr().add(p).cast()));
                let vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.as_ptr().add(p).cast()));
                let vb1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b1.as_ptr().add(p).cast()));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, vb0));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, vb1));
                p += 16;
            }
            let mut s0 = hsum_epi32(acc0);
            let mut s1 = hsum_epi32(acc1);
            while p < k {
                s0 += i32::from(*arow.get_unchecked(p)) * i32::from(*b0.get_unchecked(p));
                s1 += i32::from(*arow.get_unchecked(p)) * i32::from(*b1.get_unchecked(p));
                p += 1;
            }
            chunk[ci * n + j] += s0;
            chunk[ci * n + j + 1] += s1;
            j += 2;
        }
        if j < n {
            let b0 = &bt[j * k..(j + 1) * k];
            let mut acc = _mm256_setzero_si256();
            let mut p = 0;
            while p + 16 <= k {
                let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(arow.as_ptr().add(p).cast()));
                let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b0.as_ptr().add(p).cast()));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
                p += 16;
            }
            let mut sum = hsum_epi32(acc);
            while p < k {
                sum += i32::from(*arow.get_unchecked(p)) * i32::from(*b0.get_unchecked(p));
                p += 1;
            }
            chunk[ci * n + j] += sum;
        }
    }
}
