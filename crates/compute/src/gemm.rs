//! Cache-blocked, row-parallel GEMM kernels over `f32` slices (plus an
//! int8 variant for the quantized serving path).
//!
//! Every kernel accumulates each output element over the shared dimension
//! in a **fixed schedule** (ascending index order, with dot products
//! optionally lane-split by the SIMD bodies — see [`crate::simd`]), and
//! parallelism only ever partitions the *output* rows (each element is
//! written by exactly one thread). Results are therefore bit-identical at
//! every thread count, which is what lets the training loops built on top
//! assert byte-identical weights between `NOODLE_THREADS=1` and
//! `NOODLE_THREADS>=4` runs.
//!
//! Layouts are row-major. `a @ b` uses the classic `i-p-j` loop with the
//! inner `j` loop blocked so the active panel of `b` stays cache-resident;
//! the `j` blocking does not reorder the `p` accumulation of any element.
//! The per-row-range inner bodies live in [`crate::simd`] and are selected
//! once per kernel call from the runtime-detected instruction set.

use std::sync::OnceLock;

use noodle_profile::{EventKind, KernelTimer};

use crate::pool::{add_flops, par_for};
use crate::simd;

/// Tile side for the blocked transpose.
const TRANSPOSE_TILE: usize = 32;

/// Rough number of multiply-adds we want per parallel chunk, so tiny
/// matrices stay serial and large ones split into enough chunks to load
/// every core. Depends only on the problem shape — never on the thread
/// count — so chunk boundaries (and thus any reduction order) are stable.
const MADDS_PER_CHUNK: usize = 1 << 15;

/// Rows per parallel chunk for an output with `row_cost` multiply-adds
/// per row.
fn row_grain(row_cost: usize) -> usize {
    (MADDS_PER_CHUNK / row_cost.max(1)).max(1)
}

/// A mutable output pointer shared across the row-partitioned workers.
struct OutPtr<T>(*mut T);

// SAFETY: each parallel chunk touches a disjoint row range of the output,
// and the unique borrow lives for the whole parallel region.
unsafe impl<T: Send> Send for OutPtr<T> {}
unsafe impl<T: Send> Sync for OutPtr<T> {}

impl<T> OutPtr<T> {
    /// Reborrows rows `rows.start..rows.end` of an `[_, n]` matrix.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and disjoint from every other chunk.
    unsafe fn rows(&self, rows: &std::ops::Range<usize>, n: usize) -> &mut [T] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(rows.start * n), rows.len() * n) }
    }
}

fn check_dims(name: &str, m: usize, k: usize, n: usize, a: usize, b: usize, out: usize) {
    assert_eq!(a, m * k, "{name}: lhs has {a} elements, expected {m}x{k}");
    assert_eq!(b, k * n, "{name}: rhs has {b} elements, expected {k}x{n}");
    assert_eq!(out, m * n, "{name}: out has {out} elements, expected {m}x{n}");
}

/// Bytes-touched estimate for a kernel over the given slices (used as the
/// profiler's byte payload; counts each operand once).
fn kernel_bytes(a: usize, b: usize, out: usize) -> u64 {
    (4 * (a + b + out)) as u64
}

/// `out += a @ b` for row-major `a: [m, k]`, `b: [k, n]`, `out: [m, n]`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    check_dims("gemm", m, k, n, a.len(), b.len(), out.len());
    if m == 0 || n == 0 {
        return;
    }
    add_flops(2 * (m * n * k) as u64);
    let _prof = KernelTimer::start(
        EventKind::Gemm,
        2 * (m * n * k) as u64,
        kernel_bytes(a.len(), b.len(), out.len()),
    );
    let isa = simd::active_isa();
    let optr = OutPtr(out.as_mut_ptr());
    par_for(m, row_grain(k * n), |rows| {
        // SAFETY: chunks partition `0..m`, so row ranges are disjoint.
        let chunk = unsafe { optr.rows(&rows, n) };
        simd::gemm_rows(isa, rows, k, n, a, b, chunk);
    });
}

/// `out += a @ bt^T` for row-major `a: [m, k]`, `bt: [n, k]`, `out: [m, n]`.
///
/// The transposed-operand form of [`gemm`]: both operands stream
/// row-major, so backward passes avoid materializing an explicit
/// transpose. Each output element is a single dot product over `k`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the dimensions.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], bt: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_bt: lhs has {} elements, expected {m}x{k}", a.len());
    assert_eq!(bt.len(), n * k, "gemm_bt: rhs has {} elements, expected {n}x{k}", bt.len());
    assert_eq!(out.len(), m * n, "gemm_bt: out has {} elements, expected {m}x{n}", out.len());
    if m == 0 || n == 0 {
        return;
    }
    add_flops(2 * (m * n * k) as u64);
    let _prof = KernelTimer::start(
        EventKind::GemmBt,
        2 * (m * n * k) as u64,
        kernel_bytes(a.len(), bt.len(), out.len()),
    );
    let isa = simd::active_isa();
    let optr = OutPtr(out.as_mut_ptr());
    par_for(m, row_grain(k * n), |rows| {
        // SAFETY: chunks partition `0..m`, so row ranges are disjoint.
        let chunk = unsafe { optr.rows(&rows, n) };
        simd::gemm_bt_rows(isa, rows, k, n, a, bt, chunk);
    });
}

/// `out += a @ bt^T` over int8 operands with exact `i32` accumulation:
/// the quantized serving path's matmul (`a: [m, k]` row-quantized
/// activations, `bt: [n, k]` per-channel-quantized weights,
/// `out: [m, n]` accumulators).
///
/// Integer accumulation is exact, so results are bit-identical across
/// thread counts *and* instruction sets — the scalar and SIMD bodies
/// agree to the bit, unlike the float kernels which agree only to
/// rounding.
///
/// # Panics
///
/// Panics if any slice length disagrees with the dimensions.
pub fn gemm_bt_i8(m: usize, k: usize, n: usize, a: &[i8], bt: &[i8], out: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_bt_i8: lhs has {} elements, expected {m}x{k}", a.len());
    assert_eq!(bt.len(), n * k, "gemm_bt_i8: rhs has {} elements, expected {n}x{k}", bt.len());
    assert_eq!(out.len(), m * n, "gemm_bt_i8: out has {} elements, expected {m}x{n}", out.len());
    if m == 0 || n == 0 {
        return;
    }
    add_flops(2 * (m * n * k) as u64);
    let _prof = KernelTimer::start(
        EventKind::GemmI8,
        2 * (m * n * k) as u64,
        (a.len() + bt.len() + 4 * out.len()) as u64,
    );
    let isa = simd::active_isa();
    let optr = OutPtr(out.as_mut_ptr());
    par_for(m, row_grain(k * n), |rows| {
        // SAFETY: chunks partition `0..m`, so row ranges are disjoint.
        let chunk = unsafe { optr.rows(&rows, n) };
        simd::gemm_bt_rows_i8(isa, rows, k, n, a, bt, chunk);
    });
}

/// `out += a^T @ b` for row-major `a: [k, m]`, `b: [k, n]`, `out: [m, n]`.
///
/// The other transposed-operand form: gradient kernels compute
/// `dW += dY^T @ X` without materializing `dY^T`. The `p` (shared-dim)
/// loop runs outermost so both operands stream row-major; each element
/// still accumulates over ascending `p`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the dimensions.
pub fn gemm_at(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_at: lhs has {} elements, expected {k}x{m}", a.len());
    assert_eq!(b.len(), k * n, "gemm_at: rhs has {} elements, expected {k}x{n}", b.len());
    assert_eq!(out.len(), m * n, "gemm_at: out has {} elements, expected {m}x{n}", out.len());
    if m == 0 || n == 0 {
        return;
    }
    add_flops(2 * (m * n * k) as u64);
    let _prof = KernelTimer::start(
        EventKind::GemmAt,
        2 * (m * n * k) as u64,
        kernel_bytes(a.len(), b.len(), out.len()),
    );
    let isa = simd::active_isa();
    let optr = OutPtr(out.as_mut_ptr());
    par_for(m, row_grain(k * n), |rows| {
        // SAFETY: chunks partition `0..m`, so row ranges are disjoint.
        let chunk = unsafe { optr.rows(&rows, n) };
        simd::gemm_at_rows(isa, rows, k, m, n, a, b, chunk);
    });
}

/// Writes the transpose of row-major `src: [m, n]` into `dst: [n, m]`,
/// walking `TRANSPOSE_TILE`-square tiles so both the reads and the writes
/// stay within a cache-line-friendly window (the naive column-major write
/// loop misses on every store once `m` exceeds a few cache lines).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the dimensions.
pub fn transpose(m: usize, n: usize, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), m * n, "transpose: src has {} elements, expected {m}x{n}", src.len());
    assert_eq!(dst.len(), m * n, "transpose: dst has {} elements, expected {n}x{m}", dst.len());
    let mut i0 = 0;
    while i0 < m {
        let i1 = m.min(i0 + TRANSPOSE_TILE);
        let mut j0 = 0;
        while j0 < n {
            let j1 = n.min(j0 + TRANSPOSE_TILE);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * m + i] = src[i * n + j];
                }
            }
            j0 = j1;
        }
        i0 = i1;
    }
}

static GEMM_PEAK: OnceLock<f64> = OnceLock::new();

/// Measured single-core GEMM peak throughput in GFLOP/s: the roofline
/// ceiling profile summaries compare achieved kernel throughput against.
///
/// Times the same dispatched inner-loop body [`gemm`] runs — including
/// the SIMD microkernel when one is active, so the ceiling and the
/// attributed kernels move together and the roofline gap stays honest —
/// on an L1-resident 48³ problem, serially on the calling thread (no
/// pool, no profiler events, no FLOP accounting). Measured once per
/// process (~1 ms) and cached under the instruction set active at the
/// first call (the CLI resolves `--no-simd` before any kernel runs).
pub fn gemm_peak_gflops() -> f64 {
    const DIM: usize = 48;
    const REPS: u32 = 24;
    *GEMM_PEAK.get_or_init(|| {
        let isa = simd::active_isa();
        let a: Vec<f32> = (0..DIM * DIM).map(|i| ((i * 31 + 7) % 61) as f32 * 0.1 - 3.0).collect();
        let b: Vec<f32> = (0..DIM * DIM).map(|i| ((i * 17 + 3) % 53) as f32 * 0.1 - 2.5).collect();
        let mut out = vec![0.0f32; DIM * DIM];
        for _ in 0..4 {
            simd::gemm_rows(isa, 0..DIM, DIM, DIM, &a, &b, &mut out);
        }
        let start = std::time::Instant::now();
        for _ in 0..REPS {
            simd::gemm_rows(isa, 0..DIM, DIM, DIM, &a, &b, &mut out);
        }
        let ns = start.elapsed().as_nanos().max(1) as f64;
        std::hint::black_box(&out);
        2.0 * (DIM * DIM * DIM) as f64 * f64::from(REPS) / ns
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::set_thread_override;

    fn naive_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    out[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        out
    }

    fn ramp(len: usize) -> Vec<f32> {
        (0..len).map(|i| ((i * 37 + 11) % 97) as f32 * 0.25 - 12.0).collect()
    }

    #[test]
    fn gemm_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 2), (7, 13, 5), (16, 144, 32), (33, 65, 40)] {
            let a = ramp(m * k);
            let b = ramp(k * n);
            let mut out = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            let expect = naive_gemm(m, k, n, &a, &b);
            for (x, y) in out.iter().zip(&expect) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y} at {m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn transposed_variants_match_gemm() {
        let (m, k, n) = (9, 17, 6);
        let a = ramp(m * k);
        let b = ramp(k * n);
        let mut at = vec![0.0; m * k];
        transpose(m, k, &a, &mut at); // at: [k, m]
        let mut bt = vec![0.0; k * n];
        transpose(k, n, &b, &mut bt); // bt: [n, k]

        let mut base = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut base);
        let mut via_at = vec![0.0; m * n];
        gemm_at(k, m, n, &at, &b, &mut via_at);
        let mut via_bt = vec![0.0; m * n];
        gemm_bt(m, k, n, &a, &bt, &mut via_bt);
        for ((x, y), z) in base.iter().zip(&via_at).zip(&via_bt) {
            assert!((x - y).abs() < 1e-4 && (x - z).abs() < 1e-4, "{x} {y} {z}");
        }
    }

    #[test]
    fn gemm_accumulates_into_out() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut out = [10.0f32];
        gemm(1, 2, 1, &a, &b, &mut out);
        assert_eq!(out[0], 21.0);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let (m, k, n) = (64, 50, 48);
        let a = ramp(m * k);
        let b = ramp(k * n);
        let run = |threads: usize| {
            set_thread_override(Some(threads));
            let mut out = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            set_thread_override(None);
            out
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let par = run(threads);
            assert!(
                serial.iter().zip(&par).all(|(x, y)| x.to_bits() == y.to_bits()),
                "gemm differs at {threads} threads"
            );
        }
    }

    #[test]
    fn transpose_round_trip() {
        for (m, n) in [(1, 1), (3, 5), (40, 33), (64, 64)] {
            let src = ramp(m * n);
            let mut t = vec![0.0; m * n];
            transpose(m, n, &src, &mut t);
            let mut back = vec![0.0; m * n];
            transpose(n, m, &t, &mut back);
            assert_eq!(src, back, "round trip failed for {m}x{n}");
            if m > 1 && n > 1 {
                assert_eq!(t[m], src[1], "t[1][0] must be src[0][1]");
            }
        }
    }

    #[test]
    fn zero_sized_edges() {
        gemm(0, 3, 4, &[], &ramp(12), &mut []);
        gemm(3, 0, 4, &[], &[], &mut [0.0; 12]);
        gemm_bt(2, 0, 2, &[], &[], &mut [0.0; 4]);
        gemm_at(0, 2, 2, &[], &[], &mut [0.0; 4]);
        gemm_bt_i8(2, 0, 2, &[], &[], &mut [0i32; 4]);
        transpose(0, 5, &[], &mut []);
    }

    #[test]
    fn gemm_bt_i8_matches_naive_and_accumulates() {
        let (m, k, n) = (3, 21, 4);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 7) % 255) as i8).collect();
        let bt: Vec<i8> = (0..n * k).map(|i| ((i * 13 + 5) % 255) as i8).collect();
        let mut out = vec![1i32; m * n];
        gemm_bt_i8(m, k, n, &a, &bt, &mut out);
        for i in 0..m {
            for j in 0..n {
                let want: i32 =
                    (0..k).map(|p| i32::from(a[i * k + p]) * i32::from(bt[j * k + p])).sum::<i32>()
                        + 1;
                assert_eq!(out[i * n + j], want, "mismatch at ({i}, {j})");
            }
        }
    }

    #[test]
    fn gemm_bt_i8_is_thread_count_invariant() {
        let (m, k, n) = (40, 50, 12);
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 19 + 2) % 255) as i8).collect();
        let bt: Vec<i8> = (0..n * k).map(|i| ((i * 23 + 9) % 255) as i8).collect();
        let run = |threads: usize| {
            set_thread_override(Some(threads));
            let mut out = vec![0i32; m * n];
            gemm_bt_i8(m, k, n, &a, &bt, &mut out);
            set_thread_override(None);
            out
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(serial, run(threads), "gemm_bt_i8 differs at {threads} threads");
        }
    }

    #[test]
    #[should_panic(expected = "gemm: lhs")]
    fn dimension_mismatch_panics() {
        gemm(2, 2, 2, &[0.0; 3], &[0.0; 4], &mut [0.0; 4]);
    }

    #[test]
    fn peak_measurement_is_positive_and_cached() {
        let peak = gemm_peak_gflops();
        assert!(peak > 0.0, "measured GEMM peak must be positive, got {peak}");
        // Cached: a second call returns the identical bits instantly.
        assert_eq!(peak.to_bits(), gemm_peak_gflops().to_bits());
    }
}
