//! A lazily-initialized thread pool with a chunk-claiming work queue.
//!
//! # Design
//!
//! Parallel regions are expressed as *chunked index loops*: the caller
//! supplies a total length and a grain size, the range `0..len` is split
//! into `ceil(len / grain)` contiguous chunks, and idle threads claim
//! chunks off a shared atomic counter (a degenerate work-stealing deque:
//! every chunk lives in one global queue and workers steal the next
//! unclaimed index). Chunk *boundaries* depend only on `len` and `grain`,
//! never on the number of threads, so any reduction that combines
//! per-chunk results in index order is bit-identical at every thread
//! count — including the inline serial path.
//!
//! The pool is created lazily on the first parallel call and its worker
//! threads are reused for the life of the process. The submitting thread
//! always participates in the loop it submitted, so completion never
//! depends on a worker being free, and a parallel region entered from
//! inside another parallel region runs inline (no nested fan-out, no
//! deadlock, no oversubscription).
//!
//! # Thread count
//!
//! The effective thread count is resolved per call, in priority order:
//!
//! 1. [`set_thread_override`] — a programmatic override for tests and
//!    benchmarks;
//! 2. the `NOODLE_THREADS` environment variable;
//! 3. under `cfg(test)` (this crate's own unit tests): serial;
//! 4. [`std::thread::available_parallelism`].
//!
//! `NOODLE_THREADS=1` (or an override of 1) forces the inline serial
//! path: no worker threads are touched and closures run on the calling
//! thread in chunk order.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Thread-count override installed by [`set_thread_override`]
/// (0 = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Total floating-point operations reported by kernels via [`add_flops`].
static FLOPS: AtomicU64 = AtomicU64::new(0);

/// Total parallel regions executed (inline or fanned out), for telemetry.
static JOBS: AtomicU64 = AtomicU64::new(0);

/// Total nanoseconds threads spent executing chunk bodies (outermost
/// regions only — nested inline regions are already inside a timed body).
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// Total nanoseconds between a region's submission and each participating
/// worker claiming its first chunk of it.
static QUEUE_WAIT_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Nesting depth of parallel regions on this thread. Non-zero means we
    /// are already inside a chunk body, so inner regions run inline.
    static REGION_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Overrides the effective thread count for subsequent parallel calls.
///
/// Intended for tests and benchmarks that compare thread counts within one
/// process (the `NOODLE_THREADS` environment variable is only read once
/// per call, so this simply takes priority over it). `None` removes the
/// override.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The effective thread count the next parallel region will use.
pub fn num_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("NOODLE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    if cfg!(test) {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Records `n` floating-point operations executed by a kernel.
///
/// One relaxed atomic add per kernel invocation; used by the telemetry
/// layer to estimate per-stage GFLOP throughput.
#[inline]
pub fn add_flops(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Total floating-point operations recorded since process start.
pub fn flops() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Total parallel regions executed since process start.
pub fn jobs() -> u64 {
    JOBS.load(Ordering::Relaxed)
}

/// Total nanoseconds threads have spent executing parallel-region chunk
/// bodies since process start (summed across threads, so this can exceed
/// wall clock). Feeds the `compute.pool_utilization` gauge.
pub fn busy_ns() -> u64 {
    BUSY_NS.load(Ordering::Relaxed)
}

/// Total nanoseconds workers have spent between region submission and
/// claiming their first chunk. Feeds the `compute.queue_wait_frac` gauge.
pub fn queue_wait_ns() -> u64 {
    QUEUE_WAIT_NS.load(Ordering::Relaxed)
}

/// One submitted parallel region: a type-erased chunk body plus the
/// claim/completion state shared between the submitter and the workers.
struct Task {
    /// Calls the erased closure on one chunk range.
    run: unsafe fn(*const (), Range<usize>),
    /// Pointer to the caller's closure; valid until `remaining` hits zero,
    /// which the submitter awaits before returning.
    ctx: *const (),
    len: usize,
    grain: usize,
    chunks: usize,
    /// Profiler timestamp at submission, for queue-wait attribution.
    submit_ns: u64,
    /// The submitter's ambient trace context, adopted by every worker for
    /// the duration of its chunks so causality survives the pool boundary.
    /// Carried *alongside* the chunks — it never influences chunk
    /// boundaries or claim order, so the determinism contract is intact.
    trace: Option<noodle_trace::TraceContext>,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Chunks not yet finished; completion signal below.
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

// SAFETY: `ctx` points at a closure that is `Sync` (enforced by the
// `par_for` bounds) and outlives the task (the submitter blocks until all
// chunks complete before returning, and workers never dereference `ctx`
// after claiming past the last chunk).
unsafe impl Send for Task {}
unsafe impl Sync for Task {}

impl Task {
    fn chunk_range(&self, chunk: usize) -> Range<usize> {
        let lo = chunk * self.grain;
        lo..self.len.min(lo + self.grain)
    }

    /// Claims and runs chunks until the queue is empty; returns how many
    /// chunk bodies this thread actually ran (0 for a stale wake-up, which
    /// tells the caller to skip busy/queue-wait attribution).
    fn work(&self) -> usize {
        let mut ran = 0;
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.chunks {
                return ran;
            }
            ran += 1;
            let range = self.chunk_range(chunk);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: `ctx` is live (see `Send`/`Sync` justification)
                // and `run` was instantiated for the closure's real type.
                unsafe { (self.run)(self.ctx, range) }
            }));
            let mut finished = 1;
            if outcome.is_err() {
                self.panicked.store(true, Ordering::SeqCst);
                // Drain the queue so other threads stop promptly. Chunks
                // that were never claimed must still be accounted for in
                // `remaining`, or the submitter would wait forever; the
                // swap hands them all to this thread exactly once (a
                // second panicker swaps `chunks` for `chunks` and gets 0).
                let claimed = self.next.swap(self.chunks, Ordering::Relaxed).min(self.chunks);
                finished += self.chunks - claimed;
            }
            let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
            *remaining -= finished;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }
}

/// The announcement board workers watch: a sequence number plus the most
/// recently submitted task. Workers that miss a task are harmless — the
/// submitter always completes its own region.
#[derive(Default)]
struct Board {
    seq: u64,
    task: Option<Arc<Task>>,
}

struct Pool {
    board: Mutex<Board>,
    bell: Condvar,
    /// Number of worker threads spawned so far.
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        board: Mutex::new(Board::default()),
        bell: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Ensures at least `target` worker threads exist.
fn ensure_workers(target: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap_or_else(|e| e.into_inner());
    while *spawned < target {
        let id = *spawned;
        std::thread::Builder::new()
            .name(format!("noodle-compute-{id}"))
            .spawn(worker_loop)
            .expect("failed to spawn compute worker");
        *spawned += 1;
    }
}

fn worker_loop() {
    let p = pool();
    let mut last_seen = 0u64;
    loop {
        let task = {
            let mut board = p.board.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if board.seq != last_seen {
                    last_seen = board.seq;
                    break board.task.clone();
                }
                board = p.bell.wait(board).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(task) = task {
            let start_ns = noodle_profile::now_ns();
            // Adopt the submitter's trace context for the chunks *and* the
            // profiler events below, so kernel and pool-job events recorded
            // on this worker join the submitting request's trace.
            let prev_trace = noodle_trace::swap_current(task.trace);
            REGION_DEPTH.with(|d| d.set(d.get() + 1));
            let ran = task.work();
            REGION_DEPTH.with(|d| d.set(d.get() - 1));
            if ran > 0 {
                let busy = noodle_profile::now_ns().saturating_sub(start_ns);
                let wait = start_ns.saturating_sub(task.submit_ns);
                BUSY_NS.fetch_add(busy, Ordering::Relaxed);
                QUEUE_WAIT_NS.fetch_add(wait, Ordering::Relaxed);
                if noodle_profile::enabled() {
                    noodle_profile::record(
                        noodle_profile::EventKind::QueueWait,
                        task.submit_ns,
                        wait,
                        0,
                        0,
                    );
                    noodle_profile::record(
                        noodle_profile::EventKind::PoolJob,
                        start_ns,
                        busy,
                        ran as u64,
                        0,
                    );
                }
            }
            noodle_trace::swap_current(prev_trace);
        }
    }
}

/// Runs `body` over every chunk of `0..len` (chunk size `grain`), in
/// parallel when the effective thread count allows it.
///
/// Chunk boundaries depend only on `len` and `grain`, so writes into
/// disjoint per-index output regions are deterministic at every thread
/// count. The calling thread participates; the call returns only when
/// every chunk has run.
///
/// # Panics
///
/// Propagates a panic from any chunk body (other chunks may be skipped).
pub fn par_for<F>(len: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    if len == 0 {
        return;
    }
    JOBS.fetch_add(1, Ordering::Relaxed);
    let chunks = len.div_ceil(grain);
    let threads = num_threads();
    let nested = REGION_DEPTH.with(|d| d.get()) > 0;
    if threads <= 1 || chunks == 1 || nested {
        // Nested regions run inside an already-timed outer chunk body, so
        // timing them again would double-count busy time.
        let start_ns = if nested { 0 } else { noodle_profile::now_ns() };
        let mut lo = 0;
        while lo < len {
            let hi = len.min(lo + grain);
            body(lo..hi);
            lo = hi;
        }
        if !nested {
            let busy = noodle_profile::now_ns().saturating_sub(start_ns);
            BUSY_NS.fetch_add(busy, Ordering::Relaxed);
            if noodle_profile::enabled() {
                noodle_profile::record(
                    noodle_profile::EventKind::PoolJob,
                    start_ns,
                    busy,
                    chunks as u64,
                    0,
                );
            }
        }
        return;
    }

    ensure_workers(threads.saturating_sub(1));

    unsafe fn call<F: Fn(Range<usize>) + Sync>(ctx: *const (), range: Range<usize>) {
        // SAFETY: `ctx` was produced from `&F` in this function below and
        // is still borrowed by the submitter, which has not returned.
        unsafe { (*ctx.cast::<F>())(range) }
    }

    let task = Arc::new(Task {
        run: call::<F>,
        ctx: (&raw const body).cast(),
        len,
        grain,
        chunks,
        submit_ns: noodle_profile::now_ns(),
        trace: noodle_trace::current(),
        next: AtomicUsize::new(0),
        remaining: Mutex::new(chunks),
        done: Condvar::new(),
        panicked: AtomicBool::new(false),
    });

    let p = pool();
    {
        let mut board = p.board.lock().unwrap_or_else(|e| e.into_inner());
        board.seq = board.seq.wrapping_add(1);
        board.task = Some(Arc::clone(&task));
        p.bell.notify_all();
    }

    // Participate, then wait for stragglers. The submitter never queues,
    // so it records busy time but no queue wait.
    let start_ns = noodle_profile::now_ns();
    REGION_DEPTH.with(|d| d.set(d.get() + 1));
    let ran = task.work();
    REGION_DEPTH.with(|d| d.set(d.get() - 1));
    if ran > 0 {
        let busy = noodle_profile::now_ns().saturating_sub(start_ns);
        BUSY_NS.fetch_add(busy, Ordering::Relaxed);
        if noodle_profile::enabled() {
            noodle_profile::record(
                noodle_profile::EventKind::PoolJob,
                start_ns,
                busy,
                ran as u64,
                0,
            );
        }
    }
    {
        let mut remaining = task.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = task.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }

    // Retire the task so idle workers do not keep the Arc (and thus the
    // erased pointer type) alive past this call.
    {
        let mut board = p.board.lock().unwrap_or_else(|e| e.into_inner());
        if board.task.as_ref().is_some_and(|t| Arc::ptr_eq(t, &task)) {
            board.task = None;
        }
    }

    if task.panicked.load(Ordering::SeqCst) {
        panic!("noodle-compute: a parallel chunk body panicked");
    }
}

/// Maps `0..len` through `map` in parallel and returns the results in
/// index order.
///
/// Each index is computed exactly once by exactly one thread, so the
/// result is identical at every thread count.
pub fn par_map_collect<T, F>(len: usize, grain: usize, map: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(len);
    out.resize_with(len, || None);
    let slots = SharedSlots(out.as_mut_ptr());
    par_for(len, grain, |range| {
        for i in range {
            // SAFETY: every index is claimed by exactly one chunk, chunks
            // are disjoint, and `out` outlives the region.
            unsafe { *slots.get(i) = Some(map(i)) };
        }
    });
    out.into_iter().map(|v| v.expect("par_for covered every index")).collect()
}

/// Splits `0..len` into fixed chunks of `grain`, maps every chunk to a
/// partial result in parallel, and folds the partials **in chunk order**.
///
/// Because the chunk boundaries and the fold order are independent of the
/// thread count, floating-point reductions built on this are bit-identical
/// at every thread count.
pub fn par_map_reduce<T, M, R>(len: usize, grain: usize, map: M, mut reduce: R) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: FnMut(T, T) -> T,
{
    let grain = grain.max(1);
    if len == 0 {
        return None;
    }
    let chunks = len.div_ceil(grain);
    let partials = par_map_collect(chunks, 1, |c| map(c * grain..len.min(c * grain + grain)));
    partials.into_iter().reduce(|acc, x| reduce(acc, x))
}

/// Splits `data` into `data.len() / chunk_len` consecutive chunks and
/// processes groups of `grain` chunks in parallel. `body` receives the
/// group's chunk-index range and the mutable sub-slice covering exactly
/// those chunks, so callers get safe disjoint `&mut` access (the layer
/// kernels use one chunk per batch sample).
///
/// # Panics
///
/// Panics if `chunk_len` is zero or does not divide `data.len()`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, grain: usize, body: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut requires a positive chunk length");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "par_chunks_mut: {} elements do not divide into chunks of {chunk_len}",
        data.len()
    );
    let chunks = data.len() / chunk_len;
    let ptr = SharedBuf(data.as_mut_ptr());
    par_for(chunks, grain, |range| {
        // SAFETY: `par_for` hands out disjoint chunk-index ranges, so the
        // derived element ranges are disjoint; the unique borrow of `data`
        // is held by this frame for the whole region.
        let slice = unsafe {
            std::slice::from_raw_parts_mut(
                ptr.get().add(range.start * chunk_len),
                range.len() * chunk_len,
            )
        };
        body(range, slice);
    });
}

/// A mutable buffer pointer shared across workers for disjoint-range
/// writes.
struct SharedBuf<T>(*mut T);

impl<T> SharedBuf<T> {
    /// Returns the base pointer. Going through a method (rather than the
    /// field) makes closures capture the whole `Sync` wrapper instead of
    /// the raw pointer under edition-2021 disjoint capture.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: workers only touch disjoint sub-ranges (one writer per range)
// while the owning slice is exclusively borrowed by `par_chunks_mut`.
unsafe impl<T: Send> Send for SharedBuf<T> {}
unsafe impl<T: Send> Sync for SharedBuf<T> {}

/// A raw pointer into a uniquely borrowed results buffer, shared with
/// worker threads for disjoint per-index writes.
struct SharedSlots<T>(*mut Option<T>);

// SAFETY: workers write disjoint indices (one writer per index) while the
// owning `Vec` is exclusively borrowed by `par_map_collect`.
unsafe impl<T: Send> Send for SharedSlots<T> {}
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and written by at most one thread.
    unsafe fn get(&self, i: usize) -> *mut Option<T> {
        unsafe { self.0.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Forces the parallel path even under `cfg(test)`.
    fn with_threads<Out>(n: usize, f: impl FnOnce() -> Out) -> Out {
        set_thread_override(Some(n));
        let out = f();
        set_thread_override(None);
        out
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_groups() {
        for threads in [1, 3] {
            with_threads(threads, || {
                let mut data = vec![0usize; 24];
                par_chunks_mut(&mut data, 4, 2, |range, slice| {
                    assert_eq!(slice.len(), range.len() * 4);
                    for (offset, cell) in slice.iter_mut().enumerate() {
                        *cell = range.start * 4 + offset;
                    }
                });
                let expect: Vec<usize> = (0..24).collect();
                assert_eq!(data, expect);
            });
        }
    }

    #[test]
    fn par_for_covers_every_index_once() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let hits: Vec<AtomicU32> = (0..103).map(|_| AtomicU32::new(0)).collect();
                par_for(103, 7, |range| {
                    for i in range {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_map_collect_is_in_order() {
        for threads in [1, 3, 8] {
            let squares = with_threads(threads, || par_map_collect(50, 4, |i| i * i));
            assert_eq!(squares, (0..50).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_reduce_is_thread_count_invariant() {
        // A deliberately non-associative float reduction: results must
        // nevertheless agree because chunking and fold order are fixed.
        let run = |threads| {
            with_threads(threads, || {
                par_map_reduce(
                    1000,
                    16,
                    |range| range.map(|i| (i as f32).sqrt() * 0.01).sum::<f32>(),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let serial = run(1);
        assert_eq!(serial.to_bits(), run(2).to_bits());
        assert_eq!(serial.to_bits(), run(5).to_bits());
    }

    #[test]
    fn empty_and_degenerate_lengths() {
        with_threads(4, || {
            par_for(0, 8, |_| panic!("must not run"));
            assert_eq!(par_map_collect(0, 8, |i| i), Vec::<usize>::new());
            assert_eq!(par_map_reduce(0, 8, |_| 0u32, |a, b| a + b), None);
            assert_eq!(par_map_reduce(1, 8, |r| r.len(), |a, b| a + b), Some(1));
        });
    }

    #[test]
    fn nested_regions_run_inline() {
        with_threads(4, || {
            let total = AtomicU32::new(0);
            par_for(4, 1, |outer| {
                for _ in outer {
                    par_for(10, 2, |inner| {
                        total.fetch_add(inner.len() as u32, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 40);
        });
    }

    #[test]
    fn child_chunks_inherit_the_submitters_trace_context() {
        let ctx = noodle_trace::TraceContext::mint();
        for threads in [1, 4] {
            with_threads(threads, || {
                let _guard = noodle_trace::set_current(ctx);
                let seen: Vec<_> = par_map_collect(16, 1, |_| noodle_trace::current());
                assert!(
                    seen.iter().all(|&c| c == Some(ctx)),
                    "every chunk sees the submitting job's context at {threads} threads"
                );
            });
        }
        // Workers restore their slot: a later traceless job must not leak
        // the previous job's context into its chunks.
        with_threads(4, || {
            let seen: Vec<_> = par_map_collect(16, 1, |_| noodle_trace::current());
            assert!(seen.iter().all(|&c| c.is_none()), "context must not leak across jobs");
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_for(64, 1, |range| {
                    if range.start == 13 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err());
        set_thread_override(None);
        // The pool must remain usable after a panic.
        with_threads(4, || {
            let v = par_map_collect(8, 1, |i| i + 1);
            assert_eq!(v.iter().sum::<usize>(), 36);
        });
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(3));
        assert_eq!(num_threads(), 3);
        set_thread_override(None);
        // Under cfg(test) with no override and no env var: serial.
        if std::env::var("NOODLE_THREADS").is_err() {
            assert_eq!(num_threads(), 1);
        }
    }

    #[test]
    fn flop_counter_accumulates() {
        let before = flops();
        add_flops(128);
        assert!(flops() >= before + 128);
    }

    #[test]
    fn busy_counter_accumulates_serial_and_parallel() {
        for threads in [1, 4] {
            let before = busy_ns();
            with_threads(threads, || {
                par_for(64, 1, |range| {
                    let mut acc = 0usize;
                    for i in range {
                        acc = acc.wrapping_add(i * i);
                    }
                    std::hint::black_box(acc);
                });
            });
            assert!(busy_ns() > before, "busy_ns must grow at {threads} threads");
        }
        // Queue wait only accrues when workers pick up announced tasks;
        // it may legitimately stay zero, but must never regress.
        let wait = queue_wait_ns();
        with_threads(4, || {
            par_for(32, 1, |r| {
                std::hint::black_box(r.len());
            });
        });
        assert!(queue_wait_ns() >= wait);
    }
}
