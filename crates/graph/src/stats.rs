//! Scalar graph statistics.

use serde::{Deserialize, Serialize};

use crate::graph::{CircuitGraph, EdgeKind, NodeKind};

/// Summary statistics of a circuit graph, usable as an auxiliary feature
/// vector or for corpus analysis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct GraphStats {
    pub nodes: f32,
    pub edges: f32,
    pub density: f32,
    pub data_edges: f32,
    pub control_edges: f32,
    pub inputs: f32,
    pub outputs: f32,
    pub regs: f32,
    pub max_in_degree: f32,
    pub max_out_degree: f32,
    pub mean_in_degree: f32,
    pub source_nodes: f32,
    pub sink_nodes: f32,
    pub max_depth_from_inputs: f32,
    pub unreachable_from_inputs: f32,
}

/// Names matching [`GraphStats::to_vec`] order.
pub const GRAPH_STAT_NAMES: [&str; 15] = [
    "nodes",
    "edges",
    "density",
    "data_edges",
    "control_edges",
    "inputs",
    "outputs",
    "regs",
    "max_in_degree",
    "max_out_degree",
    "mean_in_degree",
    "source_nodes",
    "sink_nodes",
    "max_depth_from_inputs",
    "unreachable_from_inputs",
];

impl GraphStats {
    /// The statistics as an ordered vector (see [`GRAPH_STAT_NAMES`]).
    pub fn to_vec(&self) -> Vec<f32> {
        vec![
            self.nodes,
            self.edges,
            self.density,
            self.data_edges,
            self.control_edges,
            self.inputs,
            self.outputs,
            self.regs,
            self.max_in_degree,
            self.max_out_degree,
            self.mean_in_degree,
            self.source_nodes,
            self.sink_nodes,
            self.max_depth_from_inputs,
            self.unreachable_from_inputs,
        ]
    }
}

/// Computes [`GraphStats`] for a graph.
pub fn graph_stats(graph: &CircuitGraph) -> GraphStats {
    let n = graph.node_count();
    let e = graph.edge_count();
    let mut s = GraphStats {
        nodes: n as f32,
        edges: e as f32,
        density: if n > 1 { e as f32 / (n as f32 * (n as f32 - 1.0)) } else { 0.0 },
        ..GraphStats::default()
    };
    for edge in graph.edges() {
        match edge.kind {
            EdgeKind::Data => s.data_edges += 1.0,
            EdgeKind::Control => s.control_edges += 1.0,
        }
    }
    for node in graph.nodes() {
        match node.kind {
            NodeKind::Input => s.inputs += 1.0,
            NodeKind::Output => s.outputs += 1.0,
            NodeKind::Reg => s.regs += 1.0,
            _ => {}
        }
    }
    let ins = graph.in_degrees();
    let outs = graph.out_degrees();
    s.max_in_degree = ins.iter().copied().max().unwrap_or(0) as f32;
    s.max_out_degree = outs.iter().copied().max().unwrap_or(0) as f32;
    s.mean_in_degree = if n > 0 { e as f32 / n as f32 } else { 0.0 };
    s.source_nodes = ins.iter().filter(|&&d| d == 0).count() as f32;
    s.sink_nodes = outs.iter().filter(|&&d| d == 0).count() as f32;

    // BFS from all input nodes for depth and reachability.
    let adj = graph.successors();
    let mut depth = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        if node.kind == NodeKind::Input {
            depth[i] = 0;
            queue.push_back(i);
        }
    }
    let mut max_depth = 0usize;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if depth[v] == usize::MAX {
                depth[v] = depth[u] + 1;
                max_depth = max_depth.max(depth[v]);
                queue.push_back(v);
            }
        }
    }
    s.max_depth_from_inputs = max_depth as f32;
    s.unreachable_from_inputs = depth
        .iter()
        .zip(graph.nodes())
        .filter(|(&d, node)| d == usize::MAX && node.kind != NodeKind::Input)
        .count() as f32;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use noodle_verilog::parse;

    fn stats_of(src: &str) -> GraphStats {
        let file = parse(src).unwrap();
        graph_stats(&build_graph(&file.modules[0]))
    }

    #[test]
    fn chain_depth() {
        let s = stats_of(
            "module m(input a, output y);
                wire t1, t2;
                assign t1 = ~a;
                assign t2 = ~t1;
                assign y = ~t2;
            endmodule",
        );
        assert_eq!(s.nodes, 4.0);
        assert_eq!(s.edges, 3.0);
        assert_eq!(s.max_depth_from_inputs, 3.0);
        assert_eq!(s.unreachable_from_inputs, 0.0);
        assert_eq!(s.source_nodes, 1.0);
        assert_eq!(s.sink_nodes, 1.0);
    }

    #[test]
    fn disconnected_counter_is_unreachable() {
        // A classic time-bomb: the counter is driven only by the clock's
        // control edge, so its *data* connectivity from inputs is nil — but
        // with control edges it is reachable from clk. Remove the clock to
        // test unreachability.
        let s = stats_of(
            "module m(input a, output y);
                reg [3:0] cnt;
                always @* cnt = cnt + 4'd1;
                assign y = a;
            endmodule",
        );
        assert!(s.unreachable_from_inputs >= 1.0);
    }

    #[test]
    fn density_bounds() {
        let s = stats_of("module m(input a, input b, output y); assign y = a & b; endmodule");
        assert!(s.density > 0.0 && s.density <= 1.0);
    }

    #[test]
    fn stat_vector_matches_names() {
        let s = stats_of("module m(input a, output y); assign y = a; endmodule");
        assert_eq!(s.to_vec().len(), GRAPH_STAT_NAMES.len());
    }

    #[test]
    fn control_vs_data_split() {
        let s = stats_of(
            "module m(input clk, input d, output reg q);
                always @(posedge clk) q <= d;
            endmodule",
        );
        assert_eq!(s.data_edges, 1.0);
        assert_eq!(s.control_edges, 1.0);
    }
}
