//! # noodle-graph
//!
//! The *graph* modality of the NOODLE pipeline: a signal-level dataflow and
//! control graph built from a Verilog AST (in the spirit of HW2VEC's RTL
//! graph extraction), scalar graph statistics, and a fixed-size
//! "graph image" embedding suitable for the CNN classifier.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_graph::{build_graph, graph_image, graph_stats};
//!
//! # fn main() -> Result<(), noodle_verilog::ParseError> {
//! let file = noodle_verilog::parse(
//!     "module m(input clk, input d, output reg q);
//!        always @(posedge clk) q <= d;
//!      endmodule",
//! )?;
//! let graph = build_graph(&file.modules[0]);
//! assert_eq!(graph.node_count(), 3);
//! let stats = graph_stats(&graph);
//! assert_eq!(stats.control_edges, 1.0);
//! let image = graph_image(&graph);
//! assert_eq!(image.len(), noodle_graph::IMAGE_CHANNELS * 12 * 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod image;
mod stats;

pub use graph::{build_graph, CircuitGraph, EdgeKind, EdgeRef, Node, NodeKind};
pub use image::{graph_image, graph_image_with_size, GraphImage, IMAGE_CHANNELS, IMAGE_SIZE};
pub use stats::{graph_stats, GraphStats, GRAPH_STAT_NAMES};
