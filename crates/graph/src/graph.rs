//! Signal-level dataflow/control graph construction from a Verilog AST.

use std::collections::HashMap;

use noodle_verilog::{EventControl, Expr, Item, LValue, Module, NetType, PortDirection, Stmt};
use serde::{Deserialize, Serialize};

/// The role of a node in the circuit graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Module input port.
    Input,
    /// Module output port.
    Output,
    /// Internal wire.
    Wire,
    /// Internal register (state).
    Reg,
    /// An instantiated submodule.
    Instance,
}

/// The reason an edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Source appears in an expression that drives the target.
    Data,
    /// Source appears in a branch condition guarding an assignment to the
    /// target.
    Control,
}

/// One node of the circuit graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Signal or instance name.
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
    /// Bit width (1 for instances).
    pub width: u64,
}

/// A directed edge `from -> to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// Edge flavour.
    pub kind: EdgeKind,
}

/// A directed signal graph of one module: nodes are ports, nets and
/// instances; data edges follow assignments; control edges follow branch
/// conditions (the paths Trojan triggers live on).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CircuitGraph {
    nodes: Vec<Node>,
    edges: Vec<EdgeRef>,
    index: HashMap<String, usize>,
}

impl CircuitGraph {
    /// The nodes in insertion order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The edges in insertion order (deduplicated).
    pub fn edges(&self) -> &[EdgeRef] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Index of a node by signal name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Out-degree of each node.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.nodes.len()];
        for e in &self.edges {
            d[e.from] += 1;
        }
        d
    }

    /// In-degree of each node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.nodes.len()];
        for e in &self.edges {
            d[e.to] += 1;
        }
        d
    }

    /// Adjacency list of successor node indices.
    pub fn successors(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            adj[e.from].push(e.to);
        }
        adj
    }

    fn intern(&mut self, name: &str, kind: NodeKind, width: u64) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(Node { name: name.to_string(), kind, width });
        self.index.insert(name.to_string(), i);
        i
    }

    fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        let e = EdgeRef { from, to, kind };
        if !self.edges.contains(&e) {
            self.edges.push(e);
        }
    }
}

/// Builds the circuit graph of one module.
///
/// Unknown identifiers referenced in expressions (e.g. parameters) become
/// [`NodeKind::Wire`] nodes so the graph is always closed.
pub fn build_graph(module: &Module) -> CircuitGraph {
    let _timer = noodle_telemetry::time_histogram("graph.build_us");
    noodle_telemetry::counter_add("graph.builds", 1);
    let mut g = CircuitGraph::default();

    // 1. Ports first: stable node order helps the embedding.
    for port in module.resolved_ports() {
        let kind = match port.direction {
            PortDirection::Input => NodeKind::Input,
            PortDirection::Output => NodeKind::Output,
            PortDirection::Inout | PortDirection::Unspecified => NodeKind::Wire,
        };
        g.intern(&port.name, kind, port.range.map(|r| r.width()).unwrap_or(1));
    }

    // 2. Declarations.
    for item in &module.items {
        if let Item::Decl { net, range, names } = item {
            let kind = match net {
                NetType::Wire => NodeKind::Wire,
                NetType::Reg | NetType::Integer => NodeKind::Reg,
            };
            for name in names {
                g.intern(name, kind, range.map(|r| r.width()).unwrap_or(1));
            }
        }
    }

    // 3. Edges.
    for item in &module.items {
        match item {
            Item::Assign { lhs, rhs } => {
                connect(&mut g, lhs, rhs, &[]);
            }
            Item::Always { body, event } => {
                // Edge-sensitive events (clock/reset) influence every write in
                // the block as control edges.
                let mut guards: Vec<String> = Vec::new();
                if let EventControl::Events(events) = event {
                    for e in events {
                        if e.edge.is_some() {
                            guards.push(e.signal.clone());
                        }
                    }
                }
                walk_proc(&mut g, body, &guards);
            }
            Item::Initial { body } => walk_proc(&mut g, body, &[]),
            Item::Instance { name, connections, .. } => {
                let inst = g.intern(name, NodeKind::Instance, 1);
                for c in connections {
                    let Some(expr) = &c.expr else { continue };
                    // Without the instantiated module's port directions we
                    // conservatively connect both ways; this matches how
                    // netlist-level graph tools treat black boxes.
                    for ident in expr.referenced_idents() {
                        let sig = g.intern(ident, NodeKind::Wire, 1);
                        g.add_edge(sig, inst, EdgeKind::Data);
                        g.add_edge(inst, sig, EdgeKind::Data);
                    }
                }
            }
            _ => {}
        }
    }
    g
}

fn walk_proc(g: &mut CircuitGraph, stmt: &Stmt, guards: &[String]) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                walk_proc(g, s, guards);
            }
        }
        Stmt::If { cond, then_branch, else_branch } => {
            let mut inner = guards.to_vec();
            inner.extend(cond.referenced_idents().iter().map(|s| s.to_string()));
            walk_proc(g, then_branch, &inner);
            if let Some(e) = else_branch {
                walk_proc(g, e, &inner);
            }
        }
        Stmt::Case { subject, arms, default, .. } => {
            let mut inner = guards.to_vec();
            inner.extend(subject.referenced_idents().iter().map(|s| s.to_string()));
            for arm in arms {
                walk_proc(g, &arm.body, &inner);
            }
            if let Some(d) = default {
                walk_proc(g, d, &inner);
            }
        }
        Stmt::Blocking { lhs, rhs } | Stmt::Nonblocking { lhs, rhs } => {
            connect(g, lhs, rhs, guards);
        }
        Stmt::For { init, cond, step, body } => {
            let mut inner = guards.to_vec();
            inner.extend(cond.referenced_idents().iter().map(|s| s.to_string()));
            walk_proc(g, init, guards);
            walk_proc(g, step, &inner);
            walk_proc(g, body, &inner);
        }
        Stmt::SystemCall { .. } | Stmt::Null => {}
    }
}

fn connect(g: &mut CircuitGraph, lhs: &LValue, rhs: &Expr, guards: &[String]) {
    for target in lhs.target_names() {
        let t = g.intern(target, NodeKind::Wire, 1);
        for source in rhs.referenced_idents() {
            let s = g.intern(source, NodeKind::Wire, 1);
            g.add_edge(s, t, EdgeKind::Data);
        }
        for guard in guards {
            let s = g.intern(guard, NodeKind::Wire, 1);
            g.add_edge(s, t, EdgeKind::Control);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::parse;

    fn graph_of(src: &str) -> CircuitGraph {
        let file = parse(src).unwrap();
        build_graph(&file.modules[0])
    }

    #[test]
    fn simple_assign_edges() {
        let g = graph_of("module m(input a, input b, output y); assign y = a & b; endmodule");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let y = g.node_index("y").unwrap();
        assert_eq!(g.in_degrees()[y], 2);
        assert_eq!(g.nodes()[y].kind, NodeKind::Output);
    }

    #[test]
    fn clocked_write_gets_control_edge_from_clock() {
        let g = graph_of(
            "module m(input clk, input d, output reg q);
                always @(posedge clk) q <= d;
            endmodule",
        );
        let clk = g.node_index("clk").unwrap();
        let q = g.node_index("q").unwrap();
        assert!(g
            .edges()
            .iter()
            .any(|e| e.from == clk && e.to == q && e.kind == EdgeKind::Control));
    }

    #[test]
    fn branch_condition_becomes_control_edge() {
        let g = graph_of(
            "module m(input s, input a, input b, output reg y);
                always @* if (s) y = a; else y = b;
            endmodule",
        );
        let s = g.node_index("s").unwrap();
        let y = g.node_index("y").unwrap();
        assert!(g.edges().iter().any(|e| e.from == s && e.to == y && e.kind == EdgeKind::Control));
        // a and b are data parents of y.
        assert_eq!(g.in_degrees()[y], 3);
    }

    #[test]
    fn case_subject_guards_all_arms() {
        let g = graph_of(
            "module m(input [1:0] s, input a, output reg y);
                always @* case (s)
                    2'd0: y = a;
                    default: y = 1'b0;
                endcase
            endmodule",
        );
        let s = g.node_index("s").unwrap();
        let y = g.node_index("y").unwrap();
        assert!(g.edges().iter().any(|e| e.from == s && e.to == y));
    }

    #[test]
    fn reg_kind_recorded_with_width() {
        let g = graph_of("module m; reg [7:0] r; wire w; endmodule");
        let r = g.node_index("r").unwrap();
        assert_eq!(g.nodes()[r].kind, NodeKind::Reg);
        assert_eq!(g.nodes()[r].width, 8);
        let w = g.node_index("w").unwrap();
        assert_eq!(g.nodes()[w].kind, NodeKind::Wire);
    }

    #[test]
    fn instance_connects_bidirectionally() {
        let g = graph_of(
            "module m(input a, output y); wire t; sub u0(.i(a), .o(t)); assign y = t; endmodule",
        );
        let u0 = g.node_index("u0").unwrap();
        assert_eq!(g.nodes()[u0].kind, NodeKind::Instance);
        let a = g.node_index("a").unwrap();
        assert!(g.edges().iter().any(|e| e.from == a && e.to == u0));
        assert!(g.edges().iter().any(|e| e.from == u0 && e.to == a));
    }

    #[test]
    fn edges_are_deduplicated() {
        let g = graph_of("module m(input a, output y); assign y = a & a; endmodule");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn degrees_are_consistent() {
        let g = graph_of(
            "module m(input clk, input [7:0] d, output [7:0] q);
                reg [7:0] r;
                always @(posedge clk) r <= d;
                assign q = r;
            endmodule",
        );
        let total_out: usize = g.out_degrees().iter().sum();
        let total_in: usize = g.in_degrees().iter().sum();
        assert_eq!(total_out, g.edge_count());
        assert_eq!(total_in, g.edge_count());
    }
}
