//! Fixed-size "graph image" embedding for CNN consumption.
//!
//! The paper feeds the graph modality to a CNN, which needs fixed-shape
//! input regardless of circuit size. We bucket nodes into a fixed number of
//! rows by a stable ordering (node kind, then degree) and accumulate edge
//! weights into a `buckets × buckets` heatmap with two channels: one for
//! data edges and one for control edges. The result is a coarse, permutation-
//! robust picture of the circuit's connectivity that preserves exactly the
//! patterns Trojans perturb (extra control fan-in onto outputs, isolated
//! counter cliques, rare comparator chains).

use serde::{Deserialize, Serialize};

use crate::graph::{CircuitGraph, EdgeKind, NodeKind};

/// Number of node buckets per image axis.
pub const IMAGE_SIZE: usize = 12;

/// Number of channels (data edges, control edges).
pub const IMAGE_CHANNELS: usize = 2;

/// A fixed-shape graph embedding: `IMAGE_CHANNELS` stacked
/// `size × size` heatmaps in row-major order (`size` is [`IMAGE_SIZE`] for
/// [`graph_image`], arbitrary for [`graph_image_with_size`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphImage {
    data: Vec<f32>,
    size: usize,
}

impl GraphImage {
    /// The flat image data, length `IMAGE_CHANNELS * size * size`, ordered
    /// `[channel][row][col]`.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Total number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image is empty (never true for [`graph_image`] output).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Buckets per axis.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Value at `(channel, row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn at(&self, channel: usize, row: usize, col: usize) -> f32 {
        assert!(channel < IMAGE_CHANNELS && row < self.size && col < self.size);
        self.data[(channel * self.size + row) * self.size + col]
    }
}

/// Stable bucket assignment: order nodes by (kind rank, in+out degree,
/// name) and spread them evenly over the buckets.
fn bucket_of(rank: usize, total: usize, size: usize) -> usize {
    if total <= 1 {
        return 0;
    }
    (rank * size / total).min(size - 1)
}

fn kind_rank(kind: NodeKind) -> usize {
    match kind {
        NodeKind::Input => 0,
        NodeKind::Reg => 1,
        NodeKind::Wire => 2,
        NodeKind::Instance => 3,
        NodeKind::Output => 4,
    }
}

/// Embeds a circuit graph as a fixed-size two-channel image.
///
/// Each cell `(r, c)` accumulates edges whose source falls in bucket `r`
/// and target in bucket `c`; the image is then normalized to `[0, 1]` by
/// its maximum cell (so circuits of different sizes are comparable).
pub fn graph_image(graph: &CircuitGraph) -> GraphImage {
    let _timer = noodle_telemetry::time_histogram("graph.image_us");
    graph_image_with_size(graph, IMAGE_SIZE)
}

/// Embeds a circuit graph at an arbitrary bucket resolution (used by the
/// embedding-resolution ablation; the pipeline's fixed default is
/// [`IMAGE_SIZE`]).
///
/// # Panics
///
/// Panics if `size` is zero.
pub fn graph_image_with_size(graph: &CircuitGraph, size: usize) -> GraphImage {
    assert!(size > 0, "image size must be positive");
    let n = graph.node_count();
    let mut data = vec![0.0f32; IMAGE_CHANNELS * size * size];
    if n == 0 {
        return GraphImage { data, size };
    }
    let ins = graph.in_degrees();
    let outs = graph.out_degrees();
    // Stable ordering of node indices.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let na = &graph.nodes()[a];
        let nb = &graph.nodes()[b];
        kind_rank(na.kind)
            .cmp(&kind_rank(nb.kind))
            .then((ins[a] + outs[a]).cmp(&(ins[b] + outs[b])))
            .then(na.name.cmp(&nb.name))
    });
    let mut bucket = vec![0usize; n];
    for (rank, &node) in order.iter().enumerate() {
        bucket[node] = bucket_of(rank, n, size);
    }
    for e in graph.edges() {
        let ch = match e.kind {
            EdgeKind::Data => 0,
            EdgeKind::Control => 1,
        };
        let idx = (ch * size + bucket[e.from]) * size + bucket[e.to];
        data[idx] += 1.0;
    }
    let max = data.iter().copied().fold(0.0f32, f32::max);
    if max > 0.0 {
        for v in &mut data {
            *v /= max;
        }
    }
    GraphImage { data, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::build_graph;
    use noodle_verilog::parse;

    fn image_of(src: &str) -> GraphImage {
        let file = parse(src).unwrap();
        graph_image(&build_graph(&file.modules[0]))
    }

    #[test]
    fn image_has_fixed_shape() {
        let img = image_of("module m(input a, output y); assign y = a; endmodule");
        assert_eq!(img.len(), IMAGE_CHANNELS * IMAGE_SIZE * IMAGE_SIZE);
    }

    #[test]
    fn image_is_normalized() {
        let img = image_of(
            "module m(input clk, input [7:0] d, output [7:0] q);
                reg [7:0] r;
                always @(posedge clk) r <= d;
                assign q = r;
            endmodule",
        );
        let max = img.data().iter().copied().fold(0.0f32, f32::max);
        assert!((max - 1.0).abs() < 1e-6);
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_graph_is_zero_image() {
        let img = image_of("module m; endmodule");
        assert!(img.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn control_edges_land_in_second_channel() {
        let img = image_of(
            "module m(input clk, input d, output reg q);
                always @(posedge clk) q <= d;
            endmodule",
        );
        let ch0: f32 = (0..IMAGE_SIZE)
            .flat_map(|r| (0..IMAGE_SIZE).map(move |c| (r, c)))
            .map(|(r, c)| img.at(0, r, c))
            .sum();
        let ch1: f32 = (0..IMAGE_SIZE)
            .flat_map(|r| (0..IMAGE_SIZE).map(move |c| (r, c)))
            .map(|(r, c)| img.at(1, r, c))
            .sum();
        assert!(ch0 > 0.0, "data channel empty");
        assert!(ch1 > 0.0, "control channel empty");
    }

    #[test]
    fn embedding_is_deterministic() {
        let src = "module m(input a, input b, output y); assign y = a ^ b; endmodule";
        assert_eq!(image_of(src), image_of(src));
    }

    #[test]
    fn trojaned_circuit_changes_image() {
        let clean = image_of(
            "module m(input clk, input [7:0] d, output [7:0] q);
                reg [7:0] r;
                always @(posedge clk) r <= d;
                assign q = r;
            endmodule",
        );
        let infected = image_of(
            "module m(input clk, input [7:0] d, output [7:0] q);
                reg [7:0] r;
                reg [15:0] cal_cnt;
                wire cfg_match;
                always @(posedge clk) r <= d;
                always @(posedge clk) cal_cnt <= cal_cnt + 16'd1;
                assign cfg_match = cal_cnt == 16'hBEEF;
                assign q = cfg_match ? r ^ 8'h80 : r;
            endmodule",
        );
        assert_ne!(clean, infected);
    }

    #[test]
    fn bucket_of_covers_range() {
        assert_eq!(bucket_of(0, 100, IMAGE_SIZE), 0);
        assert_eq!(bucket_of(99, 100, IMAGE_SIZE), IMAGE_SIZE - 1);
        assert_eq!(bucket_of(0, 1, IMAGE_SIZE), 0);
        for rank in 0..50 {
            assert!(bucket_of(rank, 50, IMAGE_SIZE) < IMAGE_SIZE);
        }
    }

    #[test]
    fn sized_embedding_scales() {
        let file =
            parse("module m(input a, input b, output y); assign y = a & b; endmodule").unwrap();
        let g = build_graph(&file.modules[0]);
        for size in [1usize, 4, 8, 24] {
            let img = graph_image_with_size(&g, size);
            assert_eq!(img.len(), IMAGE_CHANNELS * size * size);
            assert_eq!(img.size(), size);
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Size 1 collapses everything into one cell per channel.
        let tiny = graph_image_with_size(&g, 1);
        assert_eq!(tiny.at(0, 0, 0), 1.0);
    }
}
