//! Proves the simulators' allocation discipline: after warmup, a clock
//! `step()` performs zero heap allocations on either backend.
//!
//! The interpreter reuses its snapshot buffers and nonblocking queue
//! across cycles (they are fields, captured in place, never rebuilt);
//! the compiled engine runs its instruction tapes over preallocated
//! value regions and a reusable evaluation stack. Any per-cycle clone
//! or rebuild regressions show up here as a nonzero count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use noodle_verilog::{compile, parse, CompiledSim, Simulator};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// A design exercising every hot construct: continuous assigns, a comb
/// `always` with `if`/`case`, a clocked process with nonblocking
/// bit/part stores, and a for loop.
const DESIGN: &str = "module m(input clk, input rst, input [7:0] d,
                              output reg [7:0] acc, output [7:0] mix, output parity);
    reg [7:0] sum;
    wire [3:0] low;
    assign low = d[3:0];
    assign mix = {low, acc[7:4]};
    assign parity = ^acc;
    integer i;
    always @* begin
        sum = 8'd0;
        for (i = 0; i < 4; i = i + 1) sum = sum + {4'd0, low};
        case (acc[1:0])
            2'd0: sum = sum + 8'd1;
            2'd1: sum = sum ^ 8'h55;
            default: if (parity) sum = ~sum;
        endcase
    end
    always @(posedge clk) begin
        if (rst) acc <= 8'd0;
        else begin
            acc <= acc + sum;
            acc[0] <= d[7];
        end
    end
endmodule";

fn measure_warm_steps(step: &mut dyn FnMut()) -> usize {
    // Warmup: snapshot buffers, queues and stacks reach steady-state
    // capacity.
    for _ in 0..3 {
        step();
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..10 {
        step();
    }
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

#[test]
fn warm_interpreter_step_allocates_nothing() {
    let file = parse(DESIGN).unwrap();
    let mut sim = Simulator::new(&file.modules[0]).unwrap();
    sim.set("rst", 1).unwrap();
    sim.step("clk").unwrap();
    sim.set("rst", 0).unwrap();
    sim.set("d", 0xA5).unwrap();
    let allocs = measure_warm_steps(&mut || sim.step("clk").unwrap());
    assert_eq!(allocs, 0, "warm interpreter step must not touch the allocator");
}

#[test]
fn warm_compiled_step_allocates_nothing() {
    let file = parse(DESIGN).unwrap();
    let mut sim: CompiledSim = compile(&file.modules[0]).unwrap();
    sim.set("rst", 1).unwrap();
    sim.step("clk").unwrap();
    sim.set("rst", 0).unwrap();
    sim.set("d", 0xA5).unwrap();
    let allocs = measure_warm_steps(&mut || sim.step("clk").unwrap());
    assert_eq!(allocs, 0, "warm compiled step must not touch the allocator");
}
