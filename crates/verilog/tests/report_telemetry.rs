//! The simulation engines' telemetry lands in the run report without
//! changing its schema: the `sim.elaborate` / `sim.compile` / `sim.run`
//! spans become stages (tagged with their backend), the
//! `sim.cycles_per_sec` gauge is published, and the report still
//! round-trips through JSON losslessly at the current schema version.
//!
//! This file holds a single test because the telemetry registry is
//! process-global; an integration test binary gives it a process of its
//! own.

use noodle_telemetry as telemetry;
use noodle_verilog::{compile, parse, Simulator};

const DESIGN: &str = "module m(input clk, input rst, output reg [7:0] q);
    always @(posedge clk) begin
        if (rst) q <= 8'd0;
        else q <= q + 8'd1;
    end
endmodule";

#[test]
fn simulator_telemetry_lands_in_the_run_report() {
    telemetry::set_sink(Box::new(telemetry::NullSink));
    telemetry::set_enabled(true);
    telemetry::reset();

    let file = parse(DESIGN).unwrap();
    let module = &file.modules[0];
    let mut interp = Simulator::new(module).unwrap();
    interp.run("clk", 16).unwrap();
    let mut compiled = compile(module).unwrap();
    compiled.run("clk", 16).unwrap();

    let report = telemetry::RunReport::from_snapshot("simulate", telemetry::snapshot());

    // Both backends' spans arrive as root stages.
    let stage_names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
    for name in ["sim.elaborate", "sim.compile", "sim.run"] {
        assert!(stage_names.contains(&name), "missing stage `{name}` in {stage_names:?}");
    }
    let run_backends: Vec<&str> = report
        .stages
        .iter()
        .filter(|s| s.name == "sim.run")
        .flat_map(|s| s.attrs.iter())
        .filter(|(key, _)| key == "backend")
        .map(|(_, value)| value.as_str())
        .collect();
    assert!(
        run_backends.contains(&"interp") && run_backends.contains(&"compiled"),
        "expected a sim.run stage per backend, got {run_backends:?}"
    );

    // The throughput gauge carries the last run's rate.
    assert!(report.gauges["sim.cycles_per_sec"] > 0.0, "gauges: {:?}", report.gauges);

    // Schema-preserving: current version, lossless JSON round-trip.
    assert_eq!(report.schema_version, telemetry::SCHEMA_VERSION);
    let restored = telemetry::RunReport::from_json(&report.to_json().unwrap()).unwrap();
    assert_eq!(restored, report);
}
