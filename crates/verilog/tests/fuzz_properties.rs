//! Property-based robustness tests: the lexer and parser must never panic,
//! whatever bytes arrive, and must be total functions returning `Ok`/`Err`.

use noodle_verilog::{parse, print_source, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total over arbitrary strings.
    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = tokenize(&input);
    }

    /// The parser is total over arbitrary strings.
    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse(&input);
    }

    /// The parser is total over "Verilog-looking" token soup, which reaches
    /// much deeper into the grammar than uniformly random bytes.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "module", "endmodule", "input", "output", "wire", "reg",
                "assign", "always", "begin", "end", "if", "else", "case",
                "endcase", "posedge", "(", ")", "[", "]", "{", "}", ";",
                ",", ":", "=", "<=", "@", "*", "+", "8'hFF", "x", "clk",
            ]),
            0..60,
        )
    ) {
        let source = tokens.join(" ");
        let _ = parse(&source);
    }

    /// Anything that parses must print back to something that parses to the
    /// same tree (fixpoint through the printer).
    #[test]
    fn accepted_inputs_round_trip(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "module", "endmodule", "input", "output", "wire", "reg",
                "assign", "always", "begin", "end", "if", "else",
                "posedge", "(", ")", ";", ",", "=", "@", "a", "b", "clk",
                "1'b0", "1'b1", "&", "|", "~",
            ]),
            0..40,
        )
    ) {
        let source = tokens.join(" ");
        if let Ok(file) = parse(&source) {
            let printed = print_source(&file);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("printer output must parse: {e}\n{printed}"));
            prop_assert_eq!(file, reparsed);
        }
    }
}
