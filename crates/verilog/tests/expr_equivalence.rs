//! Seeded property test: the compiled engine and the interpreter agree
//! on randomly generated expression trees.
//!
//! Expressions are generated as source text over three input signals of
//! different widths plus sized literals, composed through every operator
//! class the subset supports (arithmetic, comparison, logical, bitwise,
//! shifts, reductions, ternary, concatenation, replication, bit and part
//! selects). Each expression is assigned to both a narrow and a wide
//! output so truncation and high bits are both observed, then evaluated
//! by both backends for random input vectors after a single settle.

use noodle_verilog::{compile, parse, Simulator};
use proptest::prelude::*;
use proptest::test_runner::{Config, RngAlgorithm, TestCaseError, TestRng, TestRunner};

/// Random expression source over signals `a[7:0]`, `b[3:0]`, `c`.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        (0u32..8).prop_map(|i| format!("a[{i}]")),
        (0u32..4).prop_map(|i| format!("b[{i}]")),
        Just("a[7:4]".to_string()),
        Just("a[5:2]".to_string()),
        Just("b[3:1]".to_string()),
        (0u128..256).prop_map(|v| format!("8'd{v}")),
        (0u128..16).prop_map(|v| format!("4'd{v}")),
        (0u128..2).prop_map(|v| format!("1'd{v}")),
    ];
    // Depth and replication are bounded so no single concat part exceeds
    // 128 bits (both engines would otherwise overflow the same shift).
    leaf.prop_recursive(3, 32, 3, |inner| {
        let binop = prop_oneof![
            Just("+"),
            Just("-"),
            Just("*"),
            Just("/"),
            Just("%"),
            Just("&"),
            Just("|"),
            Just("^"),
            Just("<<"),
            Just(">>"),
            Just("=="),
            Just("!="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">="),
            Just("&&"),
            Just("||"),
        ];
        let unop = prop_oneof![Just("~"), Just("-"), Just("!"), Just("&"), Just("|"), Just("^"),];
        prop_oneof![
            (inner.clone(), binop, inner.clone()).prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            (unop, inner.clone()).prop_map(|(op, e)| format!("({op}{e})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("({c} ? {t} : {e})")),
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|parts| format!("{{{}}}", parts.join(", "))),
            (1u32..3, inner).prop_map(|(n, e)| format!("{{{n}{{{e}}}}}")),
        ]
    })
}

/// Evaluates `expr` on both backends for one input vector and compares
/// the truncated and wide views.
fn check(expr: &str, a: u128, b: u128, c: u128) -> Result<(), TestCaseError> {
    let src = format!(
        "module m(input [7:0] a, input [3:0] b, input c,
                  output [7:0] y, output [63:0] w);
            assign y = {expr};
            assign w = {expr};
        endmodule"
    );
    let file = parse(&src).map_err(|e| TestCaseError::fail(format!("parse `{expr}`: {e}")))?;
    let module = &file.modules[0];
    let mut interp = Simulator::new(module)
        .map_err(|e| TestCaseError::fail(format!("interp build `{expr}`: {e}")))?;
    let mut compiled =
        compile(module).map_err(|e| TestCaseError::fail(format!("compile `{expr}`: {e}")))?;
    for (name, value) in [("a", a), ("b", b), ("c", c)] {
        interp
            .set(name, value)
            .map_err(|e| TestCaseError::fail(format!("interp set `{expr}`: {e}")))?;
        compiled
            .set(name, value)
            .map_err(|e| TestCaseError::fail(format!("compiled set `{expr}`: {e}")))?;
    }
    for out in ["y", "w"] {
        let i = interp.get(out);
        let k = compiled.get(out);
        if i != k {
            return Err(TestCaseError::fail(format!(
                "`{out} = {expr}` with a={a} b={b} c={c}: interp {i:?} vs compiled {k:?}"
            )));
        }
    }
    Ok(())
}

#[test]
fn compiled_matches_interpreter_on_random_expressions() {
    // A fixed RNG seed makes every run (and every failure) reproducible.
    let mut runner = TestRunner::new_with_rng(
        Config { cases: 128, ..Config::default() },
        TestRng::from_seed(RngAlgorithm::ChaCha, &[0x5E; 32]),
    );
    let inputs = (expr_strategy(), 0u128..256, 0u128..16, 0u128..2);
    runner
        .run(&inputs, |(expr, a, b, c)| check(&expr, a, b, c))
        .unwrap_or_else(|e| panic!("expression differential failed: {e}"));
}
