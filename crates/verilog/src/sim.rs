//! The backend-agnostic simulation surface.
//!
//! Both engines — the tree-walking [`Simulator`] and the compiled
//! [`CompiledSim`] — expose the same step/settle/peek/poke contract.
//! [`Simulate`] abstracts over them so harnesses (VCD recording,
//! dynamic feature extraction, differential testing) can be written
//! once and driven by either backend.

use crate::compile::CompiledSim;
use crate::interp::{SimError, Simulator};

/// The common two-state simulation contract of both engines.
///
/// Implementations must agree cycle-for-cycle: same width semantics
/// (values truncated to 128 bits at assignment), same nonblocking
/// commit order, same settle results. The differential test suite holds
/// them to that.
pub trait Simulate {
    /// Sets a signal to `value` (truncated to its width) and re-settles
    /// combinational logic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the signal does not exist or settling
    /// fails.
    fn set(&mut self, name: &str, value: u128) -> Result<(), SimError>;

    /// Current value of a signal, if it exists.
    fn get(&self, name: &str) -> Option<u128>;

    /// Width in bits of a signal, if it exists.
    fn width(&self, name: &str) -> Option<u32>;

    /// Input ports as `(name, width)` pairs, in declaration order.
    fn inputs(&self) -> &[(String, u32)];

    /// Output ports as `(name, width)` pairs, in declaration order.
    fn outputs(&self) -> &[(String, u32)];

    /// Names of every signal visible to [`Simulate::get`].
    fn signal_names(&self) -> Vec<String>;

    /// Performs one positive edge on `clock` and re-settles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or a combinational
    /// loop.
    fn step(&mut self, clock: &str) -> Result<(), SimError>;

    /// Propagates combinational logic to a fixed point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or a combinational
    /// loop.
    fn settle(&mut self) -> Result<(), SimError>;

    /// Fires clocked processes sensitive to an edge on `signal`
    /// (asynchronous set/reset modelling).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`Simulate::step`].
    fn async_reset(&mut self, signal: &str) -> Result<(), SimError>;

    /// Runs `cycles` clock cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`Simulate::step`].
    fn run(&mut self, clock: &str, cycles: usize) -> Result<(), SimError>;
}

impl Simulate for Simulator {
    fn set(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        Simulator::set(self, name, value)
    }

    fn get(&self, name: &str) -> Option<u128> {
        Simulator::get(self, name)
    }

    fn width(&self, name: &str) -> Option<u32> {
        Simulator::width(self, name)
    }

    fn inputs(&self) -> &[(String, u32)] {
        Simulator::inputs(self)
    }

    fn outputs(&self) -> &[(String, u32)] {
        Simulator::outputs(self)
    }

    fn signal_names(&self) -> Vec<String> {
        Simulator::signal_names(self)
    }

    fn step(&mut self, clock: &str) -> Result<(), SimError> {
        Simulator::step(self, clock)
    }

    fn settle(&mut self) -> Result<(), SimError> {
        Simulator::settle(self)
    }

    fn async_reset(&mut self, signal: &str) -> Result<(), SimError> {
        Simulator::async_reset(self, signal)
    }

    fn run(&mut self, clock: &str, cycles: usize) -> Result<(), SimError> {
        Simulator::run(self, clock, cycles)
    }
}

impl Simulate for CompiledSim {
    fn set(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        CompiledSim::set(self, name, value)
    }

    fn get(&self, name: &str) -> Option<u128> {
        CompiledSim::get(self, name)
    }

    fn width(&self, name: &str) -> Option<u32> {
        CompiledSim::width(self, name)
    }

    fn inputs(&self) -> &[(String, u32)] {
        CompiledSim::inputs(self)
    }

    fn outputs(&self) -> &[(String, u32)] {
        CompiledSim::outputs(self)
    }

    fn signal_names(&self) -> Vec<String> {
        CompiledSim::signal_names(self)
    }

    fn step(&mut self, clock: &str) -> Result<(), SimError> {
        CompiledSim::step(self, clock)
    }

    fn settle(&mut self) -> Result<(), SimError> {
        CompiledSim::settle(self)
    }

    fn async_reset(&mut self, signal: &str) -> Result<(), SimError> {
        CompiledSim::async_reset(self, signal)
    }

    fn run(&mut self, clock: &str, cycles: usize) -> Result<(), SimError> {
        CompiledSim::run(self, clock, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parse;

    const COUNTER: &str = "module m(input clk, input rst, output reg [3:0] q);
        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
    endmodule";

    fn drive(sim: &mut dyn Simulate) -> u128 {
        sim.set("rst", 1).unwrap();
        sim.step("clk").unwrap();
        sim.set("rst", 0).unwrap();
        sim.run("clk", 5).unwrap();
        sim.get("q").unwrap()
    }

    #[test]
    fn both_backends_drive_through_the_trait() {
        let file = parse(COUNTER).unwrap();
        let mut interp = Simulator::new(&file.modules[0]).unwrap();
        let mut compiled = compile(&file.modules[0]).unwrap();
        assert_eq!(drive(&mut interp), 5);
        assert_eq!(drive(&mut compiled), 5);
    }
}
