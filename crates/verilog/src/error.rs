//! Error type shared by the lexer and parser.

use std::fmt;

/// An error produced while lexing or parsing Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    line: usize,
}

impl ParseError {
    /// Creates an error attached to a 1-based source line.
    pub fn new(message: impl Into<String>, line: usize) -> Self {
        Self { message: message.into(), line }
    }

    /// The human-readable message (without location).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line the error refers to.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "line 17: unexpected token");
        assert_eq!(e.line(), 17);
        assert_eq!(e.message(), "unexpected token");
    }
}
