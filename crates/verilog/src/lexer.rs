//! Hand-written lexer for the Verilog-2001 subset.

use crate::error::ParseError;
use crate::token::{Keyword, NumberBase, NumberToken, Symbol, Token, TokenKind};

/// Tokenizes Verilog source text.
///
/// Line (`//`) and block (`/* */`) comments are skipped. Compiler directives
/// (`` `timescale `` and friends) are skipped to the end of their line, which
/// is sufficient for the synthetic corpus and for typical RTL headers.
///
/// # Errors
///
/// Returns a [`ParseError`] for unterminated comments or strings, malformed
/// number literals, or characters outside the supported subset.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self { chars: source.chars().collect(), pos: 0, line: 1, source }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.line)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let _ = self.source;
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(c) = self.peek() else {
                tokens.push(Token { kind: TokenKind::Eof, line });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' || c == '\\' || c == '$' {
                self.lex_ident()?
            } else if c.is_ascii_digit() || (c == '\'' && self.peek2().is_some()) {
                self.lex_number()?
            } else if c == '"' {
                self.lex_string()?
            } else {
                self.lex_symbol()?
            };
            tokens.push(Token { kind, line });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some('*') if self.peek() == Some('/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(ParseError::new("unterminated block comment", start))
                            }
                        }
                    }
                }
                Some('`') => {
                    // Compiler directive: skip to end of line.
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> Result<TokenKind, ParseError> {
        let mut name = String::new();
        if self.peek() == Some('\\') {
            // Escaped identifier: backslash to next whitespace.
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_whitespace() {
                    break;
                }
                name.push(c);
                self.bump();
            }
            if name.is_empty() {
                return Err(self.error("empty escaped identifier"));
            }
            return Ok(TokenKind::Ident(name));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::lookup(&name) {
            Some(kw) => Ok(TokenKind::Keyword(kw)),
            None => Ok(TokenKind::Ident(name)),
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, ParseError> {
        // Optional size prefix (decimal digits), then optional 'b/'o/'d/'h base.
        let mut prefix = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    prefix.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() != Some('\'') {
            if prefix.is_empty() {
                return Err(self.error("expected number"));
            }
            let value: u128 = prefix
                .parse()
                .map_err(|_| self.error(format!("integer literal `{prefix}` out of range")))?;
            return Ok(TokenKind::Number(NumberToken {
                width: None,
                value,
                base: NumberBase::Decimal,
            }));
        }
        self.bump(); // consume '
        let width = if prefix.is_empty() {
            None
        } else {
            Some(
                prefix
                    .parse::<u32>()
                    .map_err(|_| self.error(format!("bit width `{prefix}` out of range")))?,
            )
        };
        let base_char =
            self.bump().ok_or_else(|| self.error("unexpected end of input after `'`"))?;
        let base = match base_char.to_ascii_lowercase() {
            'b' => NumberBase::Binary,
            'o' => NumberBase::Octal,
            'd' => NumberBase::Decimal,
            'h' => NumberBase::Hex,
            other => return Err(self.error(format!("unknown number base `{other}`"))),
        };
        let radix = match base {
            NumberBase::Binary => 2,
            NumberBase::Octal => 8,
            NumberBase::Decimal => 10,
            NumberBase::Hex => 16,
        };
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c == '_' {
                self.bump();
                continue;
            }
            if c.is_ascii_alphanumeric() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(self.error("number literal has no digits"));
        }
        let mut value: u128 = 0;
        for d in digits.chars() {
            let dv = d
                .to_digit(radix)
                .ok_or_else(|| self.error(format!("invalid digit `{d}` for base {radix}")))?;
            value = value
                .checked_mul(radix as u128)
                .and_then(|v| v.checked_add(dv as u128))
                .ok_or_else(|| self.error("number literal exceeds 128 bits"))?;
        }
        Ok(TokenKind::Number(NumberToken { width, value, base }))
    }

    fn lex_string(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.line;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => {
                    let esc =
                        self.bump().ok_or_else(|| ParseError::new("unterminated string", start))?;
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                }
                Some(c) => s.push(c),
                None => return Err(ParseError::new("unterminated string", start)),
            }
        }
    }

    fn lex_symbol(&mut self) -> Result<TokenKind, ParseError> {
        use Symbol::*;
        let c = self.bump().expect("lex_symbol called at end of input");
        let sym = match c {
            '(' => LParen,
            ')' => RParen,
            '[' => LBracket,
            ']' => RBracket,
            '{' => LBrace,
            '}' => RBrace,
            ';' => Semicolon,
            ',' => Comma,
            ':' => Colon,
            '.' => Dot,
            '#' => Hash,
            '@' => At,
            '?' => Question,
            '+' => Plus,
            '-' => Minus,
            '*' => Star,
            '/' => Slash,
            '%' => Percent,
            '~' => {
                if self.peek() == Some('^') {
                    self.bump();
                    TildeCaret
                } else {
                    Tilde
                }
            }
            '^' => {
                if self.peek() == Some('~') {
                    self.bump();
                    TildeCaret
                } else {
                    Caret
                }
            }
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    AmpAmp
                } else {
                    Amp
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    PipePipe
                } else {
                    Pipe
                }
            }
            '!' => match (self.peek(), self.peek2()) {
                (Some('='), Some('=')) => {
                    self.bump();
                    self.bump();
                    BangEqEq
                }
                (Some('='), _) => {
                    self.bump();
                    BangEq
                }
                _ => Bang,
            },
            '=' => match (self.peek(), self.peek2()) {
                (Some('='), Some('=')) => {
                    self.bump();
                    self.bump();
                    EqEqEq
                }
                (Some('='), _) => {
                    self.bump();
                    EqEq
                }
                _ => Assign,
            },
            '<' => match self.peek() {
                Some('=') => {
                    self.bump();
                    LtEq
                }
                Some('<') => {
                    self.bump();
                    Shl
                }
                _ => Lt,
            },
            '>' => match self.peek() {
                Some('=') => {
                    self.bump();
                    GtEq
                }
                Some('>') => {
                    self.bump();
                    Shr
                }
                _ => Gt,
            },
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(TokenKind::Symbol(sym))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_module_header() {
        let toks = kinds("module top(clk);");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Module),
                TokenKind::Ident("top".into()),
                TokenKind::Symbol(Symbol::LParen),
                TokenKind::Ident("clk".into()),
                TokenKind::Symbol(Symbol::RParen),
                TokenKind::Symbol(Symbol::Semicolon),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_sized_numbers() {
        let toks = kinds("8'hFF 4'b1010 16'd255 'o17 42 1_000");
        let values: Vec<(Option<u32>, u128, NumberBase)> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Number(n) => Some((n.width, n.value, n.base)),
                _ => None,
            })
            .collect();
        assert_eq!(
            values,
            vec![
                (Some(8), 255, NumberBase::Hex),
                (Some(4), 10, NumberBase::Binary),
                (Some(16), 255, NumberBase::Decimal),
                (None, 15, NumberBase::Octal),
                (None, 42, NumberBase::Decimal),
                (None, 1000, NumberBase::Decimal),
            ]
        );
    }

    #[test]
    fn skips_comments_and_directives() {
        let toks = kinds("`timescale 1ns/1ps\n// line\n/* block\nspanning */ wire");
        assert_eq!(toks, vec![TokenKind::Keyword(Keyword::Wire), TokenKind::Eof]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn multi_char_operators() {
        let toks = kinds("<= < << >= > >> == != === !== && || ~^ ^~");
        let syms: Vec<Symbol> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Symbol::LtEq,
                Symbol::Lt,
                Symbol::Shl,
                Symbol::GtEq,
                Symbol::Gt,
                Symbol::Shr,
                Symbol::EqEq,
                Symbol::BangEq,
                Symbol::EqEqEq,
                Symbol::BangEqEq,
                Symbol::AmpAmp,
                Symbol::PipePipe,
                Symbol::TildeCaret,
                Symbol::TildeCaret,
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = tokenize("module\n\nwire").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn string_escapes() {
        let toks = kinds(r#""hi\n\"there\"""#);
        assert_eq!(toks[0], TokenKind::Str("hi\n\"there\"".into()));
    }

    #[test]
    fn escaped_identifier() {
        let toks = kinds("\\foo+bar rest");
        assert_eq!(toks[0], TokenKind::Ident("foo+bar".into()));
        assert_eq!(toks[1], TokenKind::Ident("rest".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("€").is_err());
    }

    #[test]
    fn number_overflow_detected() {
        assert!(tokenize("'hFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF").is_err());
    }

    #[test]
    fn dollar_in_identifier() {
        let toks = kinds("$display sig$x");
        assert_eq!(toks[0], TokenKind::Ident("$display".into()));
    }
}
