//! Abstract syntax tree for the Verilog-2001 subset.
//!
//! The tree is deliberately close to the concrete syntax: downstream crates
//! (`noodle-graph`, `noodle-tabular`) extract structural features from it,
//! and `noodle-bench-gen` constructs it programmatically before printing it
//! back to Verilog text.

use serde::{Deserialize, Serialize};

use crate::token::NumberBase;

/// A parsed source file: one or more module definitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceFile {
    /// The modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// A `module ... endmodule` definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// ANSI-style header ports. Non-ANSI headers produce ports with
    /// [`PortDirection::Unspecified`] that are resolved against body
    /// `input`/`output` declarations by [`Module::resolved_ports`].
    pub ports: Vec<Port>,
    /// Body items in declaration order.
    pub items: Vec<Item>,
}

impl Module {
    /// Ports with directions resolved against any non-ANSI body
    /// declarations.
    pub fn resolved_ports(&self) -> Vec<Port> {
        self.ports
            .iter()
            .map(|p| {
                if p.direction != PortDirection::Unspecified {
                    return p.clone();
                }
                for item in &self.items {
                    if let Item::PortDecl { direction, range, names } = item {
                        if names.iter().any(|n| n == &p.name) {
                            return Port {
                                direction: *direction,
                                name: p.name.clone(),
                                range: *range,
                                is_reg: false,
                            };
                        }
                    }
                }
                p.clone()
            })
            .collect()
    }
}

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDirection {
    /// `input`.
    Input,
    /// `output`.
    Output,
    /// `inout`.
    Inout,
    /// Old-style header port whose direction is declared in the body.
    Unspecified,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Port {
    /// Direction (or [`PortDirection::Unspecified`] for non-ANSI headers).
    pub direction: PortDirection,
    /// Port name.
    pub name: String,
    /// Bit range, if vectored.
    pub range: Option<Range>,
    /// Whether the port was declared `output reg`.
    pub is_reg: bool,
}

/// A constant `[msb:lsb]` bit range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Range {
    /// Most significant bit index.
    pub msb: i64,
    /// Least significant bit index.
    pub lsb: i64,
}

impl Range {
    /// Creates a `[msb:lsb]` range.
    pub fn new(msb: i64, lsb: i64) -> Self {
        Self { msb, lsb }
    }

    /// Width in bits (`|msb - lsb| + 1`).
    pub fn width(&self) -> u64 {
        self.msb.abs_diff(self.lsb) + 1
    }
}

/// Net or variable kind in a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetType {
    /// `wire`.
    Wire,
    /// `reg`.
    Reg,
    /// `integer`.
    Integer,
}

/// A top-level item inside a module body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// `wire`/`reg`/`integer` declaration of one or more names.
    Decl {
        /// Net kind.
        net: NetType,
        /// Optional vector range.
        range: Option<Range>,
        /// Declared names.
        names: Vec<String>,
    },
    /// Non-ANSI `input`/`output`/`inout` declaration in the module body.
    PortDecl {
        /// Declared direction.
        direction: PortDirection,
        /// Optional vector range.
        range: Option<Range>,
        /// Declared names.
        names: Vec<String>,
    },
    /// `parameter NAME = expr;`
    Parameter {
        /// Parameter name.
        name: String,
        /// Constant value expression.
        value: Expr,
    },
    /// `localparam NAME = expr;`
    Localparam {
        /// Parameter name.
        name: String,
        /// Constant value expression.
        value: Expr,
    },
    /// `assign lhs = rhs;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Driving expression.
        rhs: Expr,
    },
    /// `always @(...) stmt`
    Always {
        /// The sensitivity list.
        event: EventControl,
        /// The procedural body.
        body: Stmt,
    },
    /// `initial stmt`
    Initial {
        /// The procedural body.
        body: Stmt,
    },
    /// A module instantiation.
    Instance {
        /// Name of the instantiated module.
        module: String,
        /// Instance name.
        name: String,
        /// Port connections (named or positional).
        connections: Vec<Connection>,
    },
}

/// Sensitivity specification of an `always` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventControl {
    /// `@*` or `@(*)`: combinational.
    Star,
    /// `@(e1 or e2, ...)`: explicit event list.
    Events(Vec<EventExpr>),
}

/// One entry of an event list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventExpr {
    /// Optional edge qualifier.
    pub edge: Option<Edge>,
    /// The watched signal.
    pub signal: String,
}

/// Clock/reset edge qualifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edge {
    /// `posedge`.
    Pos,
    /// `negedge`.
    Neg,
}

/// One port connection of a module instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// The formal port name for named connections (`.port(expr)`), `None`
    /// for positional connections.
    pub port: Option<String>,
    /// The connected expression; `None` for an explicitly open port `.p()`.
    pub expr: Option<Expr>,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `begin ... end` (optionally named).
    Block {
        /// Optional block label.
        label: Option<String>,
        /// Statements in order.
        stmts: Vec<Stmt>,
    },
    /// `if (cond) then [else els]`.
    If {
        /// Branch condition.
        cond: Expr,
        /// Taken branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case`/`casex`/`casez`.
    Case {
        /// The case flavour.
        kind: CaseKind,
        /// The switched expression.
        subject: Expr,
        /// The labelled arms.
        arms: Vec<CaseArm>,
        /// The optional `default:` arm.
        default: Option<Box<Stmt>>,
    },
    /// Blocking assignment `lhs = rhs;`.
    Blocking {
        /// Target.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
    },
    /// Nonblocking assignment `lhs <= rhs;`.
    Nonblocking {
        /// Target.
        lhs: LValue,
        /// Source expression.
        rhs: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Loop variable initialisation (blocking assignment).
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Loop step (blocking assignment).
        step: Box<Stmt>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// A system-task call such as `$display(...)`.
    SystemCall {
        /// Task name including the `$`.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// The empty statement `;`.
    Null,
}

/// Flavour of a case statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseKind {
    /// `case`.
    Case,
    /// `casex`.
    Casex,
    /// `casez`.
    Casez,
}

/// One labelled arm of a case statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseArm {
    /// Comma-separated labels.
    pub labels: Vec<Expr>,
    /// The arm body.
    pub body: Stmt,
}

/// An assignable target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A whole signal.
    Ident(String),
    /// A single bit `name[expr]`.
    Bit {
        /// Signal name.
        name: String,
        /// Bit index expression.
        index: Box<Expr>,
    },
    /// A constant part select `name[msb:lsb]`.
    Part {
        /// Signal name.
        name: String,
        /// Most significant bit.
        msb: i64,
        /// Least significant bit.
        lsb: i64,
    },
    /// A concatenation of targets `{a, b}`.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Names of all signals written by this target.
    pub fn target_names(&self) -> Vec<&str> {
        match self {
            LValue::Ident(n) | LValue::Bit { name: n, .. } | LValue::Part { name: n, .. } => {
                vec![n.as_str()]
            }
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.target_names()).collect(),
        }
    }
}

/// An integer literal with optional width and base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Literal {
    /// Declared bit width, if sized.
    pub width: Option<u32>,
    /// The value.
    pub value: u128,
    /// The radix it was written in (used when printing).
    pub base: NumberBase,
}

impl Literal {
    /// An unsized decimal literal.
    pub fn dec(value: u128) -> Self {
        Self { width: None, value, base: NumberBase::Decimal }
    }

    /// A sized hexadecimal literal.
    pub fn hex(width: u32, value: u128) -> Self {
        Self { width: Some(width), value, base: NumberBase::Hex }
    }

    /// A sized binary literal.
    pub fn bin(width: u32, value: u128) -> Self {
        Self { width: Some(width), value, base: NumberBase::Binary }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical not `!`.
    Not,
    /// Bitwise not `~`.
    BitNot,
    /// Arithmetic negation `-`.
    Neg,
    /// Reduction and `&`.
    RedAnd,
    /// Reduction or `|`.
    RedOr,
    /// Reduction xor `^`.
    RedXor,
}

/// Binary operators in increasing precedence groups (see the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinaryOp {
    LogicOr,
    LogicAnd,
    BitOr,
    BitXor,
    BitXnor,
    BitAnd,
    Eq,
    Neq,
    CaseEq,
    CaseNeq,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A signal or parameter reference.
    Ident(String),
    /// An integer literal.
    Literal(Literal),
    /// A bit select `name[index]`.
    Bit {
        /// Signal name.
        name: String,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A constant part select `name[msb:lsb]`.
    Part {
        /// Signal name.
        name: String,
        /// Most significant bit.
        msb: i64,
        /// Least significant bit.
        lsb: i64,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// The conditional operator `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// A concatenation `{a, b, ...}`.
    Concat(Vec<Expr>),
    /// A replication `{count{expr}}`.
    Repeat {
        /// Replication count.
        count: u32,
        /// Replicated expression.
        expr: Box<Expr>,
    },
    /// A string literal (only valid as a system-task argument).
    Str(String),
}

impl Expr {
    /// Convenience constructor for an identifier expression.
    pub fn ident(name: impl Into<String>) -> Self {
        Expr::Ident(name.into())
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor for a unary expression.
    pub fn unary(op: UnaryOp, operand: Expr) -> Self {
        Expr::Unary { op, operand: Box::new(operand) }
    }

    /// Convenience constructor for the conditional operator.
    pub fn ternary(cond: Expr, then_expr: Expr, else_expr: Expr) -> Self {
        Expr::Ternary {
            cond: Box::new(cond),
            then_expr: Box::new(then_expr),
            else_expr: Box::new(else_expr),
        }
    }

    /// Collects the names of all identifiers read by this expression.
    pub fn referenced_idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Ident(n) => out.push(n),
            Expr::Literal(_) | Expr::Str(_) => {}
            Expr::Bit { name, index } => {
                out.push(name);
                index.collect_idents(out);
            }
            Expr::Part { name, .. } => out.push(name),
            Expr::Unary { operand, .. } => operand.collect_idents(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_idents(out);
                rhs.collect_idents(out);
            }
            Expr::Ternary { cond, then_expr, else_expr } => {
                cond.collect_idents(out);
                then_expr.collect_idents(out);
                else_expr.collect_idents(out);
            }
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_idents(out);
                }
            }
            Expr::Repeat { expr, .. } => expr.collect_idents(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_width() {
        assert_eq!(Range::new(7, 0).width(), 8);
        assert_eq!(Range::new(0, 0).width(), 1);
        assert_eq!(Range::new(0, 7).width(), 8);
    }

    #[test]
    fn lvalue_target_names() {
        let lv = LValue::Concat(vec![
            LValue::Ident("a".into()),
            LValue::Bit { name: "b".into(), index: Box::new(Expr::Literal(Literal::dec(0))) },
        ]);
        assert_eq!(lv.target_names(), vec!["a", "b"]);
    }

    #[test]
    fn referenced_idents_walks_everything() {
        let e = Expr::ternary(
            Expr::binary(BinaryOp::Eq, Expr::ident("sel"), Expr::Literal(Literal::dec(1))),
            Expr::Concat(vec![Expr::ident("a"), Expr::ident("b")]),
            Expr::unary(UnaryOp::BitNot, Expr::ident("c")),
        );
        assert_eq!(e.referenced_idents(), vec!["sel", "a", "b", "c"]);
    }

    #[test]
    fn resolved_ports_from_body_decls() {
        let m = Module {
            name: "m".into(),
            ports: vec![Port {
                direction: PortDirection::Unspecified,
                name: "x".into(),
                range: None,
                is_reg: false,
            }],
            items: vec![Item::PortDecl {
                direction: PortDirection::Input,
                range: Some(Range::new(3, 0)),
                names: vec!["x".into()],
            }],
        };
        let resolved = m.resolved_ports();
        assert_eq!(resolved[0].direction, PortDirection::Input);
        assert_eq!(resolved[0].range, Some(Range::new(3, 0)));
    }
}
